//! A miniature of the paper's §6.2 CPU-availability experiment, on the
//! RAM disk: run a CPU-bound test program alone, beside `cp`, and beside
//! `scp`. Slowdown factors come from wall clock (Table 1's definition);
//! the per-PID view comes from [`Kernel::profile`]'s tick accounting,
//! which shows *where* the lost CPU actually went.
//!
//! ```sh
//! cargo run --release --example cpu_availability
//! ```

use khw::DiskProfile;
use kproc::programs::{Cp, CpuBound, Scp, ScpMode};
use ksim::Dur;
use splice::{Kernel, KernelBuilder};

const MB: u64 = 1024 * 1024;

fn boot() -> Kernel {
    let mut k = KernelBuilder::new()
        .disk("d0", DiskProfile::ramdisk())
        .disk("d1", DiskProfile::ramdisk())
        .build();
    k.setup_file("/d0/src", 4 * MB, 5);
    k.cold_cache();
    k
}

struct Run {
    elapsed: f64,
    /// Test-program CPU share of the run, from the tick accounting.
    test_share: f64,
}

fn run(env: &str, copier: Option<Box<dyn kproc::Program>>) -> Run {
    let mut k = boot();
    let t0 = k.now();
    let test = k.spawn(Box::new(CpuBound::new(4_000, Dur::from_ms(1))));
    if let Some(c) = copier {
        k.spawn(c);
    }
    let horizon = k.horizon(600);
    let t1 = k.run_until_exit_of(test, horizon);
    let elapsed = t1.since(t0).as_secs_f64();

    // Per-PID accounting: the test program's CPU ticks over the window,
    // plus kernel time by class (charged to no PID — the asymmetry the
    // paper exploits).
    let prof = k.profile();
    let tp = prof.proc(test.0).expect("test program profiled");
    let test_share = tp.cpu_time().as_ns() as f64 / t1.since(t0).as_ns() as f64;
    println!(
        "  {env:<5} test finished in {elapsed:.3}s; accounted CPU: test {:.0}%, kernel {:.3}s",
        100.0 * test_share,
        prof.kernel_cpu.total().as_secs_f64(),
    );
    if let Some(p99) = prof.stages.end_to_end.p99() {
        println!(
            "        splice block latency p99 ~ {:.0} us over {} blocks",
            p99 as f64 / 1000.0,
            prof.stages.end_to_end.count(),
        );
    }
    Run {
        elapsed,
        test_share,
    }
}

fn main() {
    println!("CPU availability on the RAM disk (4s of test-program CPU):");
    let idle = run("IDLE", None);
    let cp = run(
        "CP",
        Some(Box::new(Cp::with_options(
            "/d0/src", "/d1/dst", 8192, true, 10_000,
        ))),
    );
    let scp = run(
        "SCP",
        Some(Box::new(Scp::with_options(
            "/d0/src",
            "/d1/dst",
            ScpMode::Async,
            10_000,
        ))),
    );
    println!();
    println!(
        "  F_cp  = {:.2}  (test at {:.0}% of idle speed; accounted share {:.0}%)",
        cp.elapsed / idle.elapsed,
        100.0 * idle.elapsed / cp.elapsed,
        100.0 * cp.test_share,
    );
    println!(
        "  F_scp = {:.2}  (test at {:.0}% of idle speed; accounted share {:.0}%)",
        scp.elapsed / idle.elapsed,
        100.0 * idle.elapsed / scp.elapsed,
        100.0 * scp.test_share,
    );
    println!("  improvement factor = {:.2}", cp.elapsed / scp.elapsed);
    println!();
    println!("paper (Table 1, RAM row): F_cp 2.00, F_scp 1.25, factor 1.6");
}
