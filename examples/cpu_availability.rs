//! A miniature of the paper's §6.2 CPU-availability experiment, on the
//! RAM disk: run a CPU-bound test program alone, beside `cp`, and beside
//! `scp`, and report the slowdown factors of Table 1.
//!
//! ```sh
//! cargo run --release --example cpu_availability
//! ```

use khw::DiskProfile;
use kproc::programs::{Cp, CpuBound, Scp, ScpMode};
use ksim::Dur;
use splice::{Kernel, KernelBuilder};

const MB: u64 = 1024 * 1024;

fn boot() -> Kernel {
    let mut k = KernelBuilder::new()
        .disk("d0", DiskProfile::ramdisk())
        .disk("d1", DiskProfile::ramdisk())
        .build();
    k.setup_file("/d0/src", 4 * MB, 5);
    k.cold_cache();
    k
}

fn run(env: &str, copier: Option<Box<dyn kproc::Program>>) -> f64 {
    let mut k = boot();
    let t0 = k.now();
    let test = k.spawn(Box::new(CpuBound::new(4_000, Dur::from_ms(1))));
    if let Some(c) = copier {
        k.spawn(c);
    }
    let horizon = k.horizon(600);
    let t1 = k.run_until_exit_of(test, horizon);
    let elapsed = t1.since(t0).as_secs_f64();
    println!("  {env:<5} environment: test program finished in {elapsed:.3}s");
    elapsed
}

fn main() {
    println!("CPU availability on the RAM disk (4s of test-program CPU):");
    let idle = run("IDLE", None);
    let cp = run(
        "CP",
        Some(Box::new(Cp::with_options(
            "/d0/src", "/d1/dst", 8192, true, 10_000,
        ))),
    );
    let scp = run(
        "SCP",
        Some(Box::new(Scp::with_options(
            "/d0/src",
            "/d1/dst",
            ScpMode::Async,
            10_000,
        ))),
    );
    println!();
    println!(
        "  F_cp  = {:.2}  (test at {:.0}% of idle speed)",
        cp / idle,
        100.0 * idle / cp
    );
    println!(
        "  F_scp = {:.2}  (test at {:.0}% of idle speed)",
        scp / idle,
        100.0 * idle / scp
    );
    println!("  improvement factor = {:.2}", cp / scp);
    println!();
    println!("paper (Table 1, RAM row): F_cp 2.00, F_scp 1.25, factor 1.6");
}
