//! Framebuffer-to-socket splice (§5.1): streaming screen contents over
//! UDP without any user-space copying.
//!
//! A receiver binds a UDP socket; a streamer opens `/dev/fb` and a
//! socket, connects it, and issues one `splice(fb, sock, BYTES)` that
//! packetises frames inside the kernel.
//!
//! ```sh
//! cargo run --release --example framebuffer_stream
//! ```

use kdev::Framebuffer;
use kproc::programs::UdpSink;
use kproc::{Fd, OpenFlags, Program, SockAddr, SpliceReq, Step, SyscallReq, SyscallRet, UserCtx};
use splice::KernelBuilder;

const FRAME: usize = 256 * 1024; // 256 KB frames (e.g. 512x512x8bit)
const FRAMES_TO_SEND: u64 = 8;
const PORT: u16 = 5900;

/// The streaming program: open fb + socket, connect, one splice.
struct FbStreamer {
    st: u32,
    fb_fd: Option<Fd>,
    sock_fd: Option<Fd>,
    sent: i64,
}

impl Program for FbStreamer {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Open {
                    path: "/dev/fb".into(),
                    flags: OpenFlags::RDONLY,
                })
            }
            1 => {
                self.fb_fd = ctx.take_ret().as_fd();
                self.st = 2;
                Step::Syscall(SyscallReq::Socket)
            }
            2 => {
                self.sock_fd = ctx.take_ret().as_fd();
                self.st = 3;
                Step::Syscall(SyscallReq::Connect {
                    fd: self.sock_fd.unwrap(),
                    addr: SockAddr {
                        host: 1,
                        port: PORT,
                    },
                })
            }
            3 => {
                ctx.take_ret();
                self.st = 4;
                Step::splice(
                    SpliceReq::new(self.fb_fd.unwrap(), self.sock_fd.unwrap())
                        .bytes(FRAMES_TO_SEND * FRAME as u64),
                )
            }
            4 => {
                if let SyscallRet::Val(n) = ctx.take_ret() {
                    self.sent = n;
                }
                Step::Exit(0)
            }
            _ => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "fb_streamer"
    }
}

fn main() {
    let mut k = KernelBuilder::new()
        .framebuffer("/dev/fb", Framebuffer::new(FRAME, 30))
        .build();

    let dgrams = FRAMES_TO_SEND * (FRAME as u64 / 8192);
    let sink = k.spawn(Box::new(UdpSink::new(PORT, dgrams)));
    k.spawn(Box::new(FbStreamer {
        st: 0,
        fb_fd: None,
        sock_fd: None,
        sent: 0,
    }));

    let t0 = k.now();
    let horizon = k.horizon(120);
    let t1 = k.run_to_exit(horizon);
    let elapsed = t1.since(t0).as_secs_f64();

    let stats = k.net().stats();
    println!(
        "streamed {} frames ({} KB) in {:.3}s simulated — {:.0} KB/s",
        FRAMES_TO_SEND,
        FRAMES_TO_SEND * FRAME as u64 / 1024,
        elapsed,
        (stats.bytes_delivered / 1024) as f64 / elapsed
    );
    println!(
        "datagrams: {} sent, {} delivered, {} dropped",
        stats.sent,
        stats.delivered,
        stats.dropped()
    );
    let m = k.metrics();
    println!(
        "user-space copies on the streaming path: {} bytes copyin, fb read {} bytes via splice",
        m.copy.copyin_bytes, m.copy.driver_bytes,
    );
    let _ = sink;
}
