//! The paper's §4 example: digitized movie playback with splice.
//!
//! The audio track goes to `/dev/speaker` in one asynchronous
//! `splice(audiofile, audio_dev, SPLICE_EOF)` — the DAC's own pacing
//! throttles the transfer. Video frames go to `/dev/video_dac` one
//! bounded synchronous splice per interval-timer tick.
//!
//! ```sh
//! cargo run --release --example movie_player
//! ```

use kdev::{AudioDac, VideoDac};
use khw::DiskProfile;
use kproc::programs::MoviePlayer;
use ksim::Dur;
use splice::objects::CharDev;
use splice::KernelBuilder;

fn main() {
    const FRAME: usize = 64 * 1024; // 64 KB video frames
    const FRAMES: u64 = 90; // 3 seconds at 30 fps
    const FPS: u64 = 30;
    const AUDIO_RATE: u64 = 8_000; // Sun /dev/audio: 8 kHz µ-law

    let mut k = KernelBuilder::new()
        .disk("d0", DiskProfile::rz58())
        .audio_dac("/dev/speaker", AudioDac::new(AUDIO_RATE, 64 * 1024))
        .video_dac("/dev/video_dac", VideoDac::new(FRAME))
        .build();

    // Three seconds of audio and ninety frames of video.
    let audio_len = AUDIO_RATE * FRAMES / FPS;
    k.setup_file("/d0/movie.audio", audio_len, 1);
    k.setup_file("/d0/movie.video", FRAMES * FRAME as u64, 2);
    k.cold_cache();

    let player = MoviePlayer::new(
        "/d0/movie.audio",
        "/d0/movie.video",
        "/dev/speaker",
        "/dev/video_dac",
        FRAME as u64,
        Dur::from_ms(1000 / FPS),
    );
    let t0 = k.now();
    k.spawn(Box::new(player));
    let horizon = k.horizon(60);
    let t1 = k.run_to_exit(horizon);

    println!(
        "playback finished in {:.2} simulated seconds (nominal {:.2})",
        t1.since(t0).as_secs_f64(),
        FRAMES as f64 / FPS as f64
    );

    for unit in k.cdevs() {
        match &unit.dev {
            CharDev::Audio(a) => {
                println!(
                    "{}: {} bytes played, {} underruns",
                    unit.path,
                    a.total_accepted(),
                    a.underruns()
                );
                assert_eq!(a.total_accepted(), audio_len);
                assert_eq!(a.underruns(), 0, "audio must not glitch");
            }
            CharDev::Video(v) => {
                let intervals = v.frame_intervals();
                let mean_ms = intervals.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>()
                    / intervals.len().max(1) as f64;
                let worst_ms = intervals
                    .iter()
                    .map(|d| d.as_secs_f64() * 1e3)
                    .fold(0.0f64, f64::max);
                println!(
                    "{}: {} frames, mean interval {:.1} ms, worst {:.1} ms",
                    unit.path,
                    v.frames(),
                    mean_ms,
                    worst_ms
                );
                assert_eq!(v.frames(), FRAMES);
            }
            CharDev::Fb(_) => {}
        }
    }
}
