//! Socket-to-socket splice (§5.1): a UDP relay, two ways.
//!
//! A source sends datagrams to a relay, which forwards them to a sink.
//! The conventional relay does `recv`/`send` through user space per
//! datagram; the splice relay cross-connects the two sockets in the
//! kernel. Both run beside a CPU-bound process, and the measurement is
//! the paper's: how much the relay slows that process down — plus the
//! UDP loss each approach suffers. (The sink and relay are given open
//! counts and run until the experiment window closes; UDP drops are
//! expected behaviour when buffers fill, not an error.)
//!
//! ```sh
//! cargo run --release --example network_relay
//! ```

use kproc::programs::{CpuBound, UdpRelayRw, UdpRelaySplice, UdpSink, UdpSource};
use kproc::SockAddr;
use ksim::Dur;
use splice::{Kernel, KernelBuilder};

const DGRAMS: u64 = 400;
const DGRAM_SIZE: usize = 4096;
const PORT_IN: u16 = 7000; // relay listens here
const PORT_OUT: u16 = 7001; // sink listens here

struct Outcome {
    test_elapsed: f64,
    delivered: u64,
    dropped: u64,
}

fn run(splice_relay: bool) -> Outcome {
    let mut k: Kernel = KernelBuilder::new().build();

    // A CPU-bound bystander, to measure what the relay costs it.
    let test = k.spawn(Box::new(CpuBound::new(3_000, Dur::from_ms(1))));

    // Sink and relay are given open-ended counts; the experiment ends when
    // the bystander finishes its fixed work.
    k.spawn(Box::new(UdpSink::new(PORT_OUT, u64::MAX)));
    if splice_relay {
        k.spawn(Box::new(UdpRelaySplice::new(
            PORT_IN,
            SockAddr {
                host: 1,
                port: PORT_OUT,
            },
            u64::MAX / 2,
        )));
    } else {
        k.spawn(Box::new(UdpRelayRw::new(
            PORT_IN,
            SockAddr {
                host: 1,
                port: PORT_OUT,
            },
            u64::MAX,
        )));
    }
    // ~0.8 MB/s offered load.
    k.spawn(Box::new(UdpSource::new(
        SockAddr {
            host: 1,
            port: PORT_IN,
        },
        DGRAM_SIZE,
        DGRAMS,
        Dur::from_ms(5),
        99,
    )));

    let t0 = k.now();
    let horizon = k.horizon(300);
    k.run_until_exit_of(test, horizon);
    let stats = k.net().stats();
    Outcome {
        test_elapsed: k.now().since(t0).as_secs_f64(),
        delivered: stats.delivered,
        dropped: stats.dropped(),
    }
}

fn main() {
    let rw = run(false);
    let sp = run(true);
    println!(
        "offered load: {DGRAMS} datagrams x {DGRAM_SIZE} B at 5 ms spacing; \
         bystander needs 3.0 s of CPU"
    );
    println!(
        "  read/write relay: bystander took {:.2}s; {} datagrams delivered, {} dropped",
        rw.test_elapsed, rw.delivered, rw.dropped
    );
    println!(
        "  splice relay    : bystander took {:.2}s; {} datagrams delivered, {} dropped",
        sp.test_elapsed, sp.delivered, sp.dropped
    );
    println!();
    println!("everything above 3.0 s was stolen by the relay path");
    assert!(
        sp.test_elapsed <= rw.test_elapsed,
        "the splice relay must cost the bystander no more CPU"
    );
}
