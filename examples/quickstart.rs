//! Quickstart: boot the simulated kernel, copy a file with `splice`, and
//! compare against a read/write copy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use khw::DiskProfile;
use kproc::programs::{Cp, Scp};
use splice::KernelBuilder;

const MB: u64 = 1024 * 1024;

fn main() {
    // A machine with two RZ58 SCSI disks and one RAM disk.
    let mut k = KernelBuilder::new()
        .disk("d0", DiskProfile::rz58())
        .disk("d1", DiskProfile::rz58())
        .disk("ram", DiskProfile::ramdisk())
        .build();

    // Put a 4 MB file on the first disk and cold-start the buffer cache.
    k.setup_file("/d0/data", 4 * MB, 7);
    k.cold_cache();

    // splice(2) it to the second disk.
    let t0 = k.now();
    k.spawn(Box::new(Scp::new("/d0/data", "/d1/copy")));
    let horizon = k.horizon(300);
    let t1 = k.run_to_exit(horizon);
    assert_eq!(k.verify_pattern_file("/d1/copy", 4 * MB, 7), None);
    let scp_s = t1.since(t0).as_secs_f64();
    println!("splice copy : 4 MB across RZ58s in {scp_s:.3} simulated seconds");
    let m = k.metrics();
    println!(
        "  user-space bytes copied: {} (that is the point)",
        m.copy.copyout_bytes + m.copy.copyin_bytes
    );

    // The same copy with read(2)/write(2).
    let t0 = k.now();
    k.spawn(Box::new(Cp::new("/d0/data", "/d1/copy2")));
    let horizon = k.horizon(300);
    let t1 = k.run_to_exit(horizon);
    assert_eq!(k.verify_pattern_file("/d1/copy2", 4 * MB, 7), None);
    let cp_s = t1.since(t0).as_secs_f64();
    println!("cp copy     : same file in {cp_s:.3} simulated seconds");
    let m = k.metrics();
    println!(
        "  user-space bytes copied: {}",
        m.copy.copyout_bytes + m.copy.copyin_bytes
    );

    // And on the RAM disk, where the CPU path is everything.
    k.setup_file("/ram/data", 4 * MB, 9);
    k.cold_cache();
    for (label, prog) in [
        (
            "splice",
            Box::new(Scp::new("/ram/data", "/ram/out")) as Box<dyn kproc::Program>,
        ),
        ("cp    ", Box::new(Cp::new("/ram/data", "/ram/out2"))),
    ] {
        let t0 = k.now();
        k.spawn(prog);
        let horizon = k.horizon(300);
        let t1 = k.run_to_exit(horizon);
        let s = t1.since(t0).as_secs_f64();
        let kbs = 4.0 * 1024.0 / s;
        println!("RAM disk {label}: {kbs:.0} KB/s");
    }

    assert!(k.fsck_all().is_empty(), "filesystems stayed consistent");
    println!("fsck: clean");
}
