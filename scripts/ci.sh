#!/usr/bin/env bash
# Tier-1 gate, run exactly as CI does: hermetic build + tests, lints as
# errors, and a smoke run of the table2 binary proving the BENCH JSON
# artifact is written and parseable.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: offline release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== clippy (workspace, warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== table2 smoke run =="
rm -f BENCH_table2.json
cargo run --release -p bench --bin table2
test -s BENCH_table2.json

# Parse the artifact with the same in-tree parser the snapshot uses.
cargo test -q --test observability snapshot_json_round_trips
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_table2.json"))
assert doc["table"] == "table2", doc.get("table")
rows = doc["rows"]
assert len(rows) == 3, len(rows)
for row in rows:
    scp = row["scp"]["metrics"]
    assert scp["copy"]["copyin_bytes"] == 0
    assert scp["copy"]["copyout_bytes"] == 0
    assert len(scp["splice"]["spans"]) >= 1
    assert row["cp"]["metrics"]["copy"]["copyin_bytes"] > 0
print("BENCH_table2.json: ok (%d rows)" % len(rows))
EOF

echo "ci.sh: all green"
