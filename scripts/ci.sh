#!/usr/bin/env bash
# Tier-1 gate, run exactly as CI does: hermetic build + tests, formatting
# and lints as errors, every example binary, and smoke runs of the bench
# binaries proving the BENCH JSON artifacts are written and parseable.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: offline release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== rustfmt (check only) =="
cargo fmt --all -- --check

echo "== clippy (workspace, warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== examples =="
for ex in quickstart movie_player network_relay framebuffer_stream cpu_availability; do
    echo "-- example: $ex"
    cargo run -q --release --example "$ex"
done

echo "== fault suite, fixed seeds =="
cargo test -q --test faults

echo "== fault suite, randomized seed =="
FAULT_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
echo "-- FAULT_SEED=$FAULT_SEED"
FAULT_SEED="$FAULT_SEED" cargo test -q --test faults any_seed_transient_faults_recover ||
    { echo "fault suite FAILED with FAULT_SEED=$FAULT_SEED (export it to reproduce)"; exit 1; }

echo "== table1 smoke run =="
rm -f BENCH_table1.json
cargo run --release -p bench --bin table1
test -s BENCH_table1.json

echo "== table2 smoke run =="
rm -f BENCH_table2.json
cargo run --release -p bench --bin table2
test -s BENCH_table2.json

echo "== endpoint matrix smoke run =="
rm -f BENCH_endpoints.json
cargo run --release -p bench --bin endpoint_matrix
test -s BENCH_endpoints.json

echo "== fault sweep smoke run =="
rm -f BENCH_faults.json
cargo run --release -p bench --bin faults
test -s BENCH_faults.json

echo "== tracedump smoke run =="
rm -f TRACE_scp_ram.json
cargo run --release -p bench --bin tracedump -- scp_ram
test -s TRACE_scp_ram.json

# Parse the artifacts with the same in-tree parser the snapshot uses.
cargo test -q --test observability snapshot_json_round_trips
python3 - <<'EOF'
import json

doc = json.load(open("BENCH_table1.json"))
assert doc["table"] == "table1", doc.get("table")
rows = doc["rows"]
assert len(rows) == 3, len(rows)
for row in rows:
    # The paper's availability ordering: splice leaves more CPU to the
    # test program than the copying environment does.
    assert row["scp"]["slowdown"] <= row["cp"]["slowdown"], row
print("BENCH_table1.json: ok (%d rows)" % len(rows))

doc = json.load(open("BENCH_table2.json"))
assert doc["table"] == "table2", doc.get("table")
rows = doc["rows"]
assert len(rows) == 3, len(rows)
for row in rows:
    scp = row["scp"]["metrics"]
    assert scp["copy"]["copyin_bytes"] == 0
    assert scp["copy"]["copyout_bytes"] == 0
    assert len(scp["splice"]["spans"]) >= 1
    for span in scp["splice"]["spans"]:
        # Span schema the dashboards key on: the sampled flow-control
        # series plus the truncation marker.
        assert isinstance(span["samples_truncated"], bool), span
        assert isinstance(span["flow_samples"], (int, float)), span
    assert row["cp"]["metrics"]["copy"]["copyin_bytes"] > 0
print("BENCH_table2.json: ok (%d rows)" % len(rows))

doc = json.load(open("BENCH_endpoints.json"))
assert doc["table"] == "endpoints", doc.get("table")
rows = doc["rows"]
# Every supported pair of the capability table: 3 sources x 4 sinks.
assert len(rows) == 12, len(rows)
for row in rows:
    assert row["kb_per_s"] > 0, row
print("BENCH_endpoints.json: ok (%d rows)" % len(rows))

doc = json.load(open("BENCH_faults.json"))
assert doc["table"] == "faults", doc.get("table")
rows = doc["rows"]
assert len(rows) == 5, len(rows)
base = rows[0]
assert base["rate"] == 0 and base["errors"] == 0 and base["retries"] == 0, base
for row in rows:
    # Transient faults always recover: no row may abort, and every
    # injected error must surface as a retry.
    assert row["aborted"] == 0, row
    assert row["retries"] == row["errors"], row
    if row["rate"] > 0:
        assert row["retries"] > 0, row
    # Recovery stays cheap: within 25% of fault-free throughput.
    assert row["kb_per_s"] >= 0.75 * base["kb_per_s"], row
print("BENCH_faults.json: ok (%d rows)" % len(rows))

# The Chrome trace export: structurally valid and per-track monotone,
# i.e. exactly what Perfetto / chrome://tracing require to load it.
doc = json.load(open("TRACE_scp_ram.json"))
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
last = {}
for ev in events:
    key = (ev["pid"], ev["tid"])
    ts = ev["ts"]
    assert ts >= last.get(key, ts), "ts regressed on track %r" % (key,)
    last[key] = ts
print("TRACE_scp_ram.json: ok (%d events, %d tracks)" % (len(events), len(last)))
EOF

echo "ci.sh: all green"
