#!/usr/bin/env bash
# Tier-1 gate, run exactly as CI does: hermetic build + tests, formatting
# and lints as errors, every example binary, and smoke runs of the bench
# binaries proving the BENCH JSON artifacts are written and parseable.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: offline release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== rustfmt (check only) =="
cargo fmt --all -- --check

echo "== clippy (workspace, warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== examples =="
for ex in quickstart movie_player network_relay framebuffer_stream cpu_availability; do
    echo "-- example: $ex"
    cargo run -q --release --example "$ex"
done

echo "== fault suite, fixed seeds =="
cargo test -q --test faults

echo "== fault suite, randomized seed =="
FAULT_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
echo "-- FAULT_SEED=$FAULT_SEED"
FAULT_SEED="$FAULT_SEED" cargo test -q --test faults any_seed_transient_faults_recover ||
    { echo "fault suite FAILED with FAULT_SEED=$FAULT_SEED (export it to reproduce)"; exit 1; }
FAULT_SEED="$FAULT_SEED" cargo test -q --test ring ring_runs_are_deterministic_under_fault_seed ||
    { echo "ring suite FAILED with FAULT_SEED=$FAULT_SEED (export it to reproduce)"; exit 1; }

echo "== server scenario suite =="
cargo test -q --test server

echo "== server scenario replay, randomized seed =="
SERVER_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
echo "-- SERVER_SEED=$SERVER_SEED"
SERVER_SEED="$SERVER_SEED" cargo test -q --test server server_scenario_replays_identically_under_seed ||
    { echo "server suite FAILED with SERVER_SEED=$SERVER_SEED (export it to reproduce)"; exit 1; }

echo "== table1 smoke run =="
rm -f BENCH_table1.json
cargo run --release -p bench --bin table1
test -s BENCH_table1.json

echo "== table2 smoke run =="
rm -f BENCH_table2.json
cargo run --release -p bench --bin table2
test -s BENCH_table2.json

echo "== endpoint matrix smoke run =="
rm -f BENCH_endpoints.json
cargo run --release -p bench --bin endpoint_matrix
test -s BENCH_endpoints.json

echo "== fault sweep smoke run =="
rm -f BENCH_faults.json
cargo run --release -p bench --bin faults
test -s BENCH_faults.json

echo "== splice ring smoke run =="
rm -f BENCH_ring.json
cargo run --release -p bench --bin ring
test -s BENCH_ring.json

echo "== server SLO determinism gate: two identical 10k-connection runs =="
SERVER_CONNS=10000 cargo run --release -p bench --bin server
BENCH_A=$(mktemp)
mv BENCH_server.json "$BENCH_A"
SERVER_CONNS=10000 cargo run --release -p bench --bin server
cmp "$BENCH_A" BENCH_server.json ||
    { echo "determinism gate FAILED: BENCH_server.json differs between identical seeded runs"; exit 1; }
rm -f "$BENCH_A"
echo "-- server bench bytes identical across runs"

echo "== server SLO sweep smoke run (scaled connection counts) =="
rm -f BENCH_server.json
cargo run --release -p bench --bin server
test -s BENCH_server.json

echo "== observability overhead bench + flight determinism gate =="
rm -f BENCH_obs.json FLIGHT_server.json
cargo run --release -p bench --bin obs
test -s BENCH_obs.json
test -s FLIGHT_server.json
OBS_A=$(mktemp); FLIGHT_A=$(mktemp)
mv BENCH_obs.json "$OBS_A"
mv FLIGHT_server.json "$FLIGHT_A"
cargo run --release -p bench --bin obs
cmp "$OBS_A" BENCH_obs.json ||
    { echo "determinism gate FAILED: BENCH_obs.json differs between identical seeded runs"; exit 1; }
cmp "$FLIGHT_A" FLIGHT_server.json ||
    { echo "determinism gate FAILED: FLIGHT_server.json differs between identical seeded runs"; exit 1; }
rm -f "$OBS_A" "$FLIGHT_A"
echo "-- obs bench and flight recorder bytes identical across runs"

echo "== tracedump smoke run =="
rm -f TRACE_scp_ram.json
cargo run --release -p bench --bin tracedump -- scp_ram
test -s TRACE_scp_ram.json

echo "== property suites (differential models, props feature) =="
cargo test -q -p ksim --features props --test props
cargo test -q -p kbuf --features props --test props
cargo test -q --features props --test props_kernel

echo "== simspeed smoke run =="
rm -f BENCH_simspeed.json
cargo run --release -p bench --bin simspeed
test -s BENCH_simspeed.json

echo "== determinism gate: two seeded runs must emit identical trace bytes =="
cargo run --release -p bench --bin tracedump -- scp_ram
TRACE_A=$(mktemp)
mv TRACE_scp_ram.json "$TRACE_A"
cargo run --release -p bench --bin tracedump -- scp_ram
cmp "$TRACE_A" TRACE_scp_ram.json ||
    { echo "determinism gate FAILED: TRACE_scp_ram.json differs between identical seeded runs"; exit 1; }
rm -f "$TRACE_A"
echo "-- trace bytes identical across runs"

echo "== tracedump server determinism gate =="
rm -f TRACE_server.json
cargo run --release -p bench --bin tracedump -- server
test -s TRACE_server.json
TRACE_B=$(mktemp)
mv TRACE_server.json "$TRACE_B"
cargo run --release -p bench --bin tracedump -- server
cmp "$TRACE_B" TRACE_server.json ||
    { echo "determinism gate FAILED: TRACE_server.json differs between identical seeded runs"; exit 1; }
rm -f "$TRACE_B"
echo "-- server trace bytes identical across runs"

echo "== profiler smoke run =="
rm -f BENCH_profile.json TS_scp_ram.json TS_spool.json TS_movie.json TS_ring.json TS_server.json
cargo run --release -p bench --bin profile
test -s BENCH_profile.json
test -s TS_scp_ram.json
test -s TS_ring.json
test -s TS_server.json

echo "== analysis engine: decomposition + queueing-law audits =="
rm -f REPORT_scp_ram.json REPORT_spool.json REPORT_movie.json REPORT_ring.json REPORT_server.json
cargo run --release -p bench --bin analyze
for wl in scp_ram spool movie ring server; do
    test -s "REPORT_$wl.json"
done

# Parse the artifacts with the same in-tree parser the snapshot uses.
cargo test -q --test observability snapshot_json_round_trips
python3 - <<'EOF'
import json

doc = json.load(open("BENCH_table1.json"))
assert doc["table"] == "table1", doc.get("table")
rows = doc["rows"]
assert len(rows) == 3, len(rows)
for row in rows:
    # The paper's availability ordering: splice leaves more CPU to the
    # test program than the copying environment does.
    assert row["scp"]["slowdown"] <= row["cp"]["slowdown"], row
print("BENCH_table1.json: ok (%d rows)" % len(rows))

doc = json.load(open("BENCH_table2.json"))
assert doc["table"] == "table2", doc.get("table")
rows = doc["rows"]
assert len(rows) == 3, len(rows)
for row in rows:
    scp = row["scp"]["metrics"]
    assert scp["copy"]["copyin_bytes"] == 0
    assert scp["copy"]["copyout_bytes"] == 0
    assert len(scp["splice"]["spans"]) >= 1
    for span in scp["splice"]["spans"]:
        # Span schema the dashboards key on: the sampled flow-control
        # series plus the truncation marker.
        assert isinstance(span["samples_truncated"], bool), span
        assert isinstance(span["flow_samples"], (int, float)), span
    assert row["cp"]["metrics"]["copy"]["copyin_bytes"] > 0
print("BENCH_table2.json: ok (%d rows)" % len(rows))

doc = json.load(open("BENCH_endpoints.json"))
assert doc["table"] == "endpoints", doc.get("table")
rows = doc["rows"]
# Every supported pair of the capability table: 3 sources x 4 sinks.
assert len(rows) == 12, len(rows)
for row in rows:
    assert row["kb_per_s"] > 0, row
print("BENCH_endpoints.json: ok (%d rows)" % len(rows))

doc = json.load(open("BENCH_faults.json"))
assert doc["table"] == "faults", doc.get("table")
rows = doc["rows"]
assert len(rows) == 5, len(rows)
base = rows[0]
assert base["rate"] == 0 and base["errors"] == 0 and base["retries"] == 0, base
for row in rows:
    # Transient faults always recover: no row may abort, and every
    # injected error must surface as a retry.
    assert row["aborted"] == 0, row
    assert row["retries"] == row["errors"], row
    if row["rate"] > 0:
        assert row["retries"] > 0, row
    # Recovery stays cheap: within 25% of fault-free throughput.
    assert row["kb_per_s"] >= 0.75 * base["kb_per_s"], row
print("BENCH_faults.json: ok (%d rows)" % len(rows))

# The connection-scale SLO sweep: four nominal counts x three serve
# modes, each row carrying the full latency digest and drop accounting.
# The paper's availability claim at scale: both in-kernel paths leave
# the compute program strictly more CPU than the user-space relay at
# 10k connections and beyond.
doc = json.load(open("BENCH_server.json"))
assert doc["table"] == "server", doc.get("table")
rows = doc["rows"]
assert len(rows) == 12, len(rows)
assert {r["mode"] for r in rows} == {"splice", "ring", "cp-relay"}
for row in rows:
    for key in ("nominal_conns", "conns", "mode", "p50_ms", "p99_ms",
                "p999_ms", "completed", "dropped_backlog", "dropped_rcv_full",
                "lost_link", "snd_blocked", "compute_cpu_share", "elapsed_s"):
        assert key in row, (key, row)
    assert row["completed"] == row["conns"], row
    assert row["p50_ms"] <= row["p99_ms"] <= row["p999_ms"], row
by = {(r["nominal_conns"], r["mode"]): r for r in rows}
for nominal in (10_000, 100_000, 1_000_000):
    relay = by[(nominal, "cp-relay")]["compute_cpu_share"]
    for mode in ("splice", "ring"):
        assert by[(nominal, mode)]["compute_cpu_share"] > relay, \
            (nominal, mode, by[(nominal, mode)]["compute_cpu_share"], relay)
print("BENCH_server.json: ok (%d rows, 10k shares splice %.3f ring %.3f"
      " cp-relay %.3f)"
      % (len(rows), by[(10_000, "splice")]["compute_cpu_share"],
         by[(10_000, "ring")]["compute_cpu_share"],
         by[(10_000, "cp-relay")]["compute_cpu_share"]))

doc = json.load(open("BENCH_ring.json"))
assert doc["table"] == "ring", doc.get("table")
rows = doc["rows"]
# The legacy baseline plus the measured ring depths.
assert [row["depth"] for row in rows] == [0, 1, 8, 64, 256], rows
legacy = rows[0]
ring = rows[1:]
for row in rows:
    for key in ("mode", "crossings", "bytes", "crossings_per_mb",
                "elapsed_s", "copier_cpu_s", "compute_cpu_share"):
        assert key in row, (key, row)
    assert row["crossings"] > 0 and row["bytes"] > 0, row
# Batching must amortise crossings: strictly monotone in ring depth.
per_mb = [row["crossings_per_mb"] for row in ring]
assert all(a > b for a, b in zip(per_mb, per_mb[1:])), per_mb
# Deep rings leave the compute program more CPU than one-at-a-time.
for row in ring:
    if row["depth"] >= 64:
        assert row["compute_cpu_share"] > legacy["compute_cpu_share"], row
# Depth-1 is the equivalence baseline: same protocol, one splice per
# wave, so its copier CPU cost must match legacy within tolerance.
ratio = doc["depth1_vs_legacy_cpu_ratio"]
assert 0.95 <= ratio <= 1.05, ratio
assert abs(ratio - ring[0]["copier_cpu_s"] / legacy["copier_cpu_s"]) < 1e-9, ratio
print("BENCH_ring.json: ok (%d rows, depth-1/legacy cpu ratio %.3f)"
      % (len(rows), ratio))

# The simulator-speed table: the three pinned loops plus the recorded
# pre-refactor baseline. The one hard gate is the timing wheel's live
# speedup over the retained BTreeMap reference — both are measured on
# this host in the same process, so the ratio is machine-independent.
doc = json.load(open("BENCH_simspeed.json"))
assert doc["table"] == "simspeed", doc.get("table")
rows = {r["bench"]: r for r in doc["rows"]}
assert set(rows) == {"callout_churn", "event_churn", "scp_ram_e2e"}, set(rows)
co = rows["callout_churn"]
assert co["ops_per_sec"] > 0 and co["reference_ops_per_sec"] > 0, co
assert co["speedup_vs_btree"] >= 10, co["speedup_vs_btree"]
assert rows["event_churn"]["ops_per_sec"] > 0, rows["event_churn"]
e2e = rows["scp_ram_e2e"]
assert e2e["blocks_per_sec"] > 0, e2e
assert e2e["blocks"] == e2e["runs"] * e2e["file_bytes"] / 8192, e2e
base = doc["meta"]["baseline"]
for key in ("commit", "callout_churn_ops_per_sec",
            "event_churn_ops_per_sec", "scp_ram_blocks_per_sec"):
    assert key in base, key
print("BENCH_simspeed.json: ok (wheel %.0fx over btree reference)"
      % co["speedup_vs_btree"])

# The Chrome trace export: structurally valid and per-track monotone,
# i.e. exactly what Perfetto / chrome://tracing require to load it.
# tracedump runs sampler-free, so the profiler must have left no
# counter ("C") events in it — sampling is a strict opt-in.
doc = json.load(open("TRACE_scp_ram.json"))
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
assert not any(ev.get("ph") == "C" for ev in events), \
    "sampler-free trace contains counter events"
last = {}
for ev in events:
    key = (ev["pid"], ev["tid"])
    ts = ev["ts"]
    assert ts >= last.get(key, ts), "ts regressed on track %r" % (key,)
    last[key] = ts
print("TRACE_scp_ram.json: ok (%d events, %d tracks)" % (len(events), len(last)))

# The profiler artifacts: per-stage digests for every workload, the
# accounting-derived contention ordering, and monotone gauge series.
doc = json.load(open("BENCH_profile.json"))
assert doc["table"] == "profile", doc.get("table")
wls = {w["workload"]: w for w in doc["workloads"]}
assert set(wls) == {"scp_ram", "spool", "movie", "ring", "server"}, set(wls)
for stage in ("sqe_wait", "read_queue_wait", "read_service", "read_to_write",
              "write_service", "retry_backoff", "end_to_end"):
    dig = wls["scp_ram"]["stages"][stage]
    for key in ("count", "p50", "p90", "p99"):
        assert key in dig, (stage, key)
    # retry_backoff needs injected faults, sqe_wait the batched ring
    # path — neither fires on the plain scp workload.
    if stage not in ("retry_backoff", "sqe_wait"):
        assert dig["count"] > 0, (stage, dig)
        assert dig["p50"] <= dig["p90"] <= dig["p99"], (stage, dig)
# The batched ring records one admission wait per submitted SQE.
assert wls["ring"]["stages"]["sqe_wait"]["count"] == 256, \
    wls["ring"]["stages"]["sqe_wait"]
cont = doc["contention"]
cp, scp = cont["cp"], cont["scp"]
assert scp["test_cpu_share"] >= cp["test_cpu_share"], cont
assert cont["share_improvement"] >= 1.0, cont
print("BENCH_profile.json: ok (%d workloads, share %.3f -> %.3f)"
      % (len(wls), cp["test_cpu_share"], scp["test_cpu_share"]))

# The observability overhead table: tracing off / head-sampled (the
# resident 1-in-64 default) / full, with the sampled-mode throughput
# cost gated against the budget the bench itself asserts in-binary.
doc = json.load(open("BENCH_obs.json"))
assert doc["table"] == "obs", doc.get("table")
budget = doc["overhead_budget_pct"]
rows = {r["mode"]: r for r in doc["rows"]}
assert set(rows) == {"off", "sampled", "full"}, set(rows)
for row in rows.values():
    for key in ("mode", "sample_period", "requests", "spans_committed",
                "trace_emitted", "events_per_request", "elapsed_s",
                "throughput_rps", "overhead_pct", "compute_cpu_share"):
        assert key in row, (key, row)
assert rows["off"]["spans_committed"] == 0, rows["off"]
assert rows["sampled"]["sample_period"] == 64, rows["sampled"]
assert rows["sampled"]["overhead_pct"] <= budget, \
    (rows["sampled"]["overhead_pct"], budget)
# Head sampling actually samples; full mode commits every request.
assert rows["sampled"]["spans_committed"] < rows["sampled"]["requests"] / 8
assert rows["full"]["spans_committed"] == rows["full"]["requests"]
# The audit rode along: sampled p99 vs the full hist, tail retention.
audit = doc["audit"]
assert audit["pass"], audit
assert {o["law"] for o in audit["outcomes"]} == \
    {"sampling.p99", "sampling.tail_retention"}, audit
print("BENCH_obs.json: ok (sampled overhead %.2f%% of %.0f%% budget)"
      % (rows["sampled"]["overhead_pct"], budget))

# The flight recorder artifact: the frozen trace window around the SLO
# alert, schema-versioned and per-record well-formed.
doc = json.load(open("FLIGHT_server.json"))
assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["workload"] == "server", doc.get("workload")
alert = doc["alert"]
assert alert["window_viol"] > 0 and alert["window_req"] >= alert["window_viol"]
assert alert["burn_milli"] > 0, alert
recs = doc["records"]
assert recs, "flight froze no records"
seqs = [r["seq"] for r in recs]
assert seqs == sorted(seqs), "flight records out of order"
for r in recs:
    for key in ("seq", "at_ns", "name", "args"):
        assert key in r, (key, r)
assert any(r["name"] == "slo.alert" for r in recs), \
    "the alert itself must be inside its own flight window"
print("FLIGHT_server.json: ok (%d records, burn %d milli)"
      % (len(recs), alert["burn_milli"]))

ts_doc = json.load(open("TS_scp_ram.json"))
samples = ts_doc["samples"]
assert samples, "sampler recorded nothing"
stamps = [s["t_ns"] for s in samples]
assert all(a < b for a, b in zip(stamps, stamps[1:])), "t_ns not monotone"
for s in samples:
    for key in ("inflight_reads", "inflight_writes", "cache_resident",
                "cache_dirty", "cpu_share"):
        assert key in s, (key, s)
print("TS_scp_ram.json: ok (%d samples, monotone)" % len(samples))

# The analysis reports: shared schema envelope, a gap-free decomposition
# whose non-informational components sum to the independently recorded
# end-to-end latency within 1%, and all three queueing-law audits
# passing within their stated tolerances.
for wl in ("scp_ram", "spool", "movie", "ring", "server"):
    doc = json.load(open("REPORT_%s.json" % wl))
    assert doc["schema_version"] == 1, doc.get("schema_version")
    assert doc["meta"]["workload"] == wl, doc.get("meta")
    assert doc["meta"]["expected_bytes"] > 0, doc["meta"]
    d = doc["decomposition"]
    assert d["blocks"] > 0 and d["partial_spans"] == 0, (wl, d)
    cl = d["closure"]
    assert cl["tolerance"] <= 0.01, (wl, cl)
    assert cl["pass"] and cl["rel_error"] <= cl["tolerance"], (wl, cl)
    comp = sum(r["total_ns"] for r in d["table"] if not r["informational"])
    assert comp == cl["components_ns"], (wl, comp, cl)
    laws = {a["law"] for a in doc["audits"]["outcomes"]}
    assert {"little.inflight_reads", "little.inflight_writes",
            "byte_conservation"} <= laws, (wl, laws)
    assert any(l.startswith("utilization.") for l in laws), (wl, laws)
    assert doc["audits"]["pass"], (wl, doc["audits"])
    for a in doc["audits"]["outcomes"]:
        assert a["pass"], (wl, a)
    print("REPORT_%s.json: ok (dominant %s, closure %.4f%%, %d audits)"
          % (wl, d["dominant"], cl["rel_error"] * 100,
             len(doc["audits"]["outcomes"])))
EOF

echo "== bench regression gate: artifacts vs committed baselines =="
cargo run --release -p bench --bin benchdiff

echo "ci.sh: all green"
