//! Workspace root: re-exports for the examples and integration tests.
//!
//! The implementation lives in the `crates/` workspace members; see the
//! `splice` crate for the kernel and the paper's contribution.

pub use kbuf;
pub use kdev;
pub use kfs;
pub use khw;
pub use knet;
pub use kproc;
pub use ksim;
pub use splice;
