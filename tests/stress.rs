//! Stress: many interleaved workloads on one kernel, then full
//! verification — the "does the whole machine stay coherent" test.

use khw::DiskProfile;
use kproc::programs::{Cp, CpuBound, Scp, ScpMode, Writer};
use kproc::ProcState;
use ksim::Dur;
use splice::KernelBuilder;

const MB: u64 = 1024 * 1024;

#[test]
fn mixed_workload_stays_coherent() {
    let mut k = KernelBuilder::new()
        .disk("d0", DiskProfile::rz58())
        .disk("d1", DiskProfile::rz56())
        .disk("ram", DiskProfile::ramdisk())
        .build();
    k.setup_file("/d0/a", 2 * MB, 1);
    k.setup_file("/d0/b", MB + 4097, 2);
    k.setup_file("/ram/c", MB, 3);
    k.cold_cache();

    // Two splices, two cps, a writer, and a compute hog — all at once,
    // across three disks.
    let pids = vec![
        k.spawn(Box::new(Scp::new("/d0/a", "/d1/a"))), // rz58 → rz56
        k.spawn(Box::new(Scp::with_options(
            "/ram/c",
            "/d0/c",
            ScpMode::Sync,
            2,
        ))), // ram → rz58, twice
        k.spawn(Box::new(Cp::new("/d0/b", "/ram/b"))), // rz58 → ram
        k.spawn(Box::new(Cp::new("/ram/c", "/d1/c"))), // ram → rz56
        k.spawn(Box::new(Writer::new("/d1/w", MB, 8192, 9))),
        k.spawn(Box::new(CpuBound::new(2_000, Dur::from_ms(1)))),
    ];

    let horizon = k.horizon(1200);
    k.run_to_exit(horizon);
    for pid in pids {
        assert!(
            matches!(k.procs().must(pid).state, ProcState::Exited(0)),
            "{:?} failed",
            k.procs().must(pid).program.name()
        );
    }

    assert_eq!(k.verify_pattern_file("/d1/a", 2 * MB, 1), None);
    assert_eq!(k.verify_pattern_file("/d0/c", MB, 3), None);
    assert_eq!(k.verify_pattern_file("/ram/b", MB + 4097, 2), None);
    assert_eq!(k.verify_pattern_file("/d1/c", MB, 3), None);
    // The writer flushes via fsync, so its file is fully durable too.
    assert_eq!(k.verify_pattern_file("/d1/w", MB, 9), None);

    let errors = k.fsck_all();
    assert!(errors.is_empty(), "{errors:?}");
    k.cache().check_invariants();
}

#[test]
fn repeated_mixed_copies_do_not_leak_buffers_or_blocks() {
    let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk()).build();
    k.setup_file("/d0/src", MB, 4);
    k.cold_cache();
    let free_before = k.disks()[1].fs.free_blocks();
    for round in 0..5 {
        let scp = k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
        let cp = k.spawn(Box::new(Cp::new("/d0/src", "/d1/dst2")));
        let horizon = k.horizon(600);
        k.run_to_exit(horizon);
        assert!(matches!(k.procs().must(scp).state, ProcState::Exited(0)));
        assert!(matches!(k.procs().must(cp).state, ProcState::Exited(0)));
        assert_eq!(
            k.verify_pattern_file("/d1/dst", MB, 4),
            None,
            "round {round}"
        );
        k.cache().check_invariants();
    }
    // Steady state: the same blocks get reused copy after copy.
    let used = free_before - k.disks()[1].fs.free_blocks();
    let expect = 2 * (MB / 8192) + 4; // two files + slack for spine blocks
    assert!(
        used <= expect,
        "block leak: {used} blocks used for two 1 MB files"
    );
    assert!(k.fsck_all().is_empty());
}
