//! Cross-crate integration: semantic equivalence of every copy path.
//!
//! Whatever the mechanism — read/write, synchronous splice, asynchronous
//! splice, handle passing, mmap — the destination must be byte-identical
//! to the source, the filesystems must check clean, and splice must do it
//! without user-space copies.

use khw::DiskProfile;
use kproc::programs::{Cp, Scp, ScpMode};
use kproc::{ProcState, Program};
use splice::baselines::{HandleCopy, MmapCopy};
use splice::{Kernel, KernelBuilder};

const MB: u64 = 1024 * 1024;

type ProgramMaker = Box<dyn Fn() -> Box<dyn Program>>;

fn machine(profile: DiskProfile) -> Kernel {
    KernelBuilder::paper_machine(profile).build()
}

fn run_copy(k: &mut Kernel, prog: Box<dyn Program>) {
    let pid = k.spawn(prog);
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "copy program failed"
    );
}

fn assert_copied(k: &mut Kernel, len: u64, seed: u64) {
    assert_eq!(k.verify_pattern_file("/d1/dst", len, seed), None);
    let errors = k.fsck_all();
    assert!(errors.is_empty(), "{errors:?}");
}

#[test]
fn all_methods_copy_identically_on_ram() {
    let len = 2 * MB + 12_345; // deliberately unaligned size
    let makers: Vec<(&str, ProgramMaker)> = vec![
        ("cp", Box::new(|| Box::new(Cp::new("/d0/src", "/d1/dst")))),
        (
            "scp-async",
            Box::new(|| Box::new(Scp::new("/d0/src", "/d1/dst"))),
        ),
        (
            "scp-sync",
            Box::new(|| Box::new(Scp::with_options("/d0/src", "/d1/dst", ScpMode::Sync, 1))),
        ),
        (
            "handle",
            Box::new(|| Box::new(HandleCopy::new("/d0/src", "/d1/dst"))),
        ),
        (
            "mmap",
            Box::new(|| {
                Box::new(MmapCopy::new(
                    "/d0/src",
                    "/d1/dst",
                    8192,
                    ksim::Dur::from_us(800),
                ))
            }),
        ),
    ];
    for (name, make) in makers {
        let mut k = machine(DiskProfile::ramdisk());
        k.setup_file("/d0/src", len, 42);
        k.cold_cache();
        run_copy(&mut k, make());
        assert_copied(&mut k, len, 42);
        println!("{name}: ok");
    }
}

#[test]
fn splice_moves_zero_user_bytes() {
    let mut k = machine(DiskProfile::rz58());
    k.setup_file("/d0/src", MB, 3);
    k.cold_cache();
    run_copy(&mut k, Box::new(Scp::new("/d0/src", "/d1/dst")));
    assert_copied(&mut k, MB, 3);
    let m = k.metrics();
    assert_eq!(m.copy.copyin_bytes, 0);
    assert_eq!(m.copy.copyout_bytes, 0);
    assert_eq!(m.copy.cache_bytes, 0, "shared header, no cache copy");
}

#[test]
fn repeated_splices_reuse_the_destination() {
    let mut k = machine(DiskProfile::ramdisk());
    k.setup_file("/d0/src", MB, 5);
    k.cold_cache();
    run_copy(
        &mut k,
        Box::new(Scp::with_options("/d0/src", "/d1/dst", ScpMode::Async, 4)),
    );
    assert_copied(&mut k, MB, 5);
    assert_eq!(k.metrics().splice.completed, 4);
}

#[test]
fn splice_of_empty_file_returns_zero() {
    let mut k = machine(DiskProfile::ramdisk());
    k.setup_file("/d0/src", 0, 1);
    k.cold_cache();
    run_copy(
        &mut k,
        Box::new(Scp::with_options("/d0/src", "/d1/dst", ScpMode::Sync, 1)),
    );
    assert_eq!(k.file_size("/d1/dst"), 0);
}

#[test]
fn concurrent_splices_on_separate_files() {
    let mut k = machine(DiskProfile::ramdisk());
    k.setup_file("/d0/a", MB, 11);
    k.setup_file("/d0/b", MB, 22);
    k.cold_cache();
    let p1 = k.spawn(Box::new(Scp::new("/d0/a", "/d1/a")));
    let p2 = k.spawn(Box::new(Scp::new("/d0/b", "/d1/b")));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(p1).state, ProcState::Exited(0)));
    assert!(matches!(k.procs().must(p2).state, ProcState::Exited(0)));
    assert_eq!(k.verify_pattern_file("/d1/a", MB, 11), None);
    assert_eq!(k.verify_pattern_file("/d1/b", MB, 22), None);
    assert!(k.fsck_all().is_empty());
}

#[test]
fn cp_and_scp_interleave_safely() {
    // A read/write copy and a splice of different files at once, sharing
    // the cache and both disks.
    let mut k = machine(DiskProfile::rz58());
    k.setup_file("/d0/a", MB, 31);
    k.setup_file("/d0/b", MB, 32);
    k.cold_cache();
    k.spawn(Box::new(Cp::new("/d0/a", "/d1/a")));
    k.spawn(Box::new(Scp::new("/d0/b", "/d1/b")));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert_eq!(k.verify_pattern_file("/d1/a", MB, 31), None);
    assert_eq!(k.verify_pattern_file("/d1/b", MB, 32), None);
    assert!(k.fsck_all().is_empty());
}

#[test]
fn warm_cache_splice_uses_read_hits() {
    let mut k = machine(DiskProfile::ramdisk());
    k.setup_file("/d0/src", MB, 17);
    k.cold_cache();
    // First copy warms the cache with the source blocks.
    run_copy(&mut k, Box::new(Cp::new("/d0/src", "/d1/w")));
    // The splice should now find them in the cache.
    run_copy(&mut k, Box::new(Scp::new("/d0/src", "/d1/dst")));
    assert_copied(&mut k, MB, 17);
    assert!(
        k.metrics().splice.read_hits > 0,
        "warm source blocks must be cache hits"
    );
}

#[test]
fn sync_and_async_splice_agree_on_bytes_moved() {
    for mode in [ScpMode::Sync, ScpMode::Async] {
        let mut k = machine(DiskProfile::ramdisk());
        k.setup_file("/d0/src", MB + 4096, 8);
        k.cold_cache();
        run_copy(
            &mut k,
            Box::new(Scp::with_options("/d0/src", "/d1/dst", mode, 1)),
        );
        assert_copied(&mut k, MB + 4096, 8);
    }
}

#[test]
fn large_file_through_indirect_blocks() {
    // 12 MB source: well past the direct pointers and into the single
    // indirect range on both source and destination.
    let mut k = KernelBuilder::paper_machine(DiskProfile::rz58()).build();
    k.setup_file("/d0/src", 12 * MB, 77);
    k.cold_cache();
    run_copy(&mut k, Box::new(Scp::new("/d0/src", "/d1/dst")));
    assert_copied(&mut k, 12 * MB, 77);
}
