//! Cross-crate integration: the trace-driven analysis engine.
//!
//! `kanalyze` has unit tests against synthetic spans; here the same
//! decomposition, auditors, and diff gate run against live kernels, so
//! the invariants they encode are checked end to end: the phase marks
//! in the trace partition measured latency exactly, the queueing laws
//! hold on the recorded telemetry, and the regression gate catches a
//! perturbed metric in a real report document.

use kanalyze::{
    byte_conservation, compare, decompose, littles_law, utilization_law, DescBytes,
    DeviceAccounting, DiffRules, Tolerance,
};
use kproc::programs::{RingScp, Scp};
use kproc::ProcState;
use ksim::{Dur, Json};
use splice::{Kernel, KernelBuilder, OutcomeStatus};

const MB: u64 = 1024 * 1024;

/// One cold-cache 2 MB disk→disk splice with trace and sampler on.
fn scp_kernel() -> Kernel {
    let mut k = KernelBuilder::paper_machine_ram()
        .trace(1 << 20)
        .sample(Dur::from_ms(10), 1 << 14)
        .build();
    k.setup_file("/d0/src", 2 * MB, 5);
    k.cold_cache();
    let pid = k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    k
}

/// A small batched-ring copy (8 one-block pairs, depth 4).
fn ring_kernel() -> Kernel {
    let mut k = KernelBuilder::paper_machine_ram()
        .trace(1 << 20)
        .sample(Dur::from_ms(10), 1 << 14)
        .build();
    for i in 0..8 {
        k.setup_file(&format!("/d0/f{i}"), 8 * 1024, 7 ^ i as u64);
    }
    k.cold_cache();
    let pid = k.spawn(Box::new(RingScp::new("/d0/f", "/d1/c", 8, 4)));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    k
}

/// Time-weighted mean of a gauge over `[0, window]` (trapezoids between
/// samples, last value held) — the same estimator `analyze` feeds to
/// the Little's-law auditor.
fn time_weighted_mean(points: &[(u64, u64)], window_ns: u64) -> f64 {
    let mut mass = 0.0;
    let (mut pt, mut po) = (0u64, 0.0f64);
    for &(t, occ) in points {
        let o = occ as f64;
        mass += 0.5 * (po + o) * t.saturating_sub(pt) as f64;
        (pt, po) = (t, o);
    }
    mass += po * window_ns.saturating_sub(pt) as f64;
    mass / window_ns as f64
}

#[test]
fn decomposition_closes_on_live_run() {
    let k = scp_kernel();
    let spans = k.trace().query().all_block_spans();
    assert_eq!(spans.len(), 256, "2 MB over 8 KB blocks");
    let d = decompose(
        &spans,
        &k.kstat().stages,
        kanalyze::decompose::CLOSURE_TOLERANCE,
    );

    // Every span survived the ring, and the trace-derived components
    // close against the independently recorded end-to-end histogram.
    assert_eq!(d.phases.blocks, 256);
    assert_eq!(d.phases.partial_spans, 0);
    assert_eq!(d.phases.unordered_spans, 0);
    assert!(d.closure_pass, "closure error {}", d.closure_error);
    assert_eq!(d.kstat_blocks, 256);

    // Gap-free by arithmetic: non-informational shares sum to 1.
    let share: f64 = d
        .table
        .iter()
        .filter(|r| !r.informational)
        .map(|r| r.share)
        .sum();
    assert!((share - 1.0).abs() < 1e-9, "shares sum to {share}");
    let dominant = d.table.iter().find(|r| r.stage == d.dominant).unwrap();
    assert!(!dominant.informational);
    assert!(dominant.total_ns > 0, "a 2 MB copy has a bottleneck");
}

#[test]
fn queueing_laws_hold_on_live_run() {
    let k = scp_kernel();
    let stages = &k.kstat().stages;
    let window_ns = k.now().as_ns();

    // Little's law on both pipeline sides, via the sampler gauges.
    let reads: Vec<(u64, u64)> = k
        .samples()
        .map(|s| (s.at.as_ns(), s.inflight_reads))
        .collect();
    let writes: Vec<(u64, u64)> = k
        .samples()
        .map(|s| (s.at.as_ns(), s.inflight_writes))
        .collect();
    assert!(!reads.is_empty(), "sampler never fired");
    let tol = Tolerance {
        rel: 0.25,
        abs: 0.5,
    };
    let n = reads.len() as u64;
    let little_r = littles_law(
        "inflight_reads",
        time_weighted_mean(&reads, window_ns),
        stages.read_service.sum(),
        stages.read_service.count(),
        n,
        window_ns,
        tol,
    );
    assert!(little_r.pass, "{}: {}", little_r.law, little_r.detail);
    let little_w = littles_law(
        "inflight_writes",
        time_weighted_mean(&writes, window_ns),
        stages.read_to_write.sum() + stages.write_service.sum(),
        stages.write_service.count(),
        n,
        window_ns,
        tol,
    );
    assert!(little_w.pass, "{}: {}", little_w.law, little_w.detail);

    // Utilization law: busy time vs the service digest, recorded side
    // by side per request through the unified accounting source.
    for du in k.disks() {
        let o = utilization_law(
            &DeviceAccounting {
                name: du.name.clone(),
                busy_ns: du.kind.busy_time().as_ns() as u128,
                service_sum_ns: du.kind.service_hist().sum(),
                requests: du.kind.requests(),
                service_count: du.kind.service_hist().count(),
            },
            Tolerance {
                rel: 0.01,
                abs: 0.0,
            },
        );
        assert!(o.pass, "{}: {}", o.law, o.detail);
    }

    // Byte conservation, exact: kstat spans vs engine outcomes vs the
    // 2 MB the workload wrote.
    let descs: Vec<DescBytes> = k
        .kstat()
        .spans
        .iter()
        .map(|s| DescBytes {
            desc: s.id,
            span_bytes: s.bytes_moved,
            outcome_bytes: match k.splice_outcome(s.id) {
                OutcomeStatus::Done(o) => o.bytes_moved,
                OutcomeStatus::Pending | OutcomeStatus::Unknown => 0,
            },
            blocks_done: s.blocks_done,
            reads_issued: s.reads_issued,
            read_hits: s.read_hits,
            writes_issued: s.writes_issued,
        })
        .collect();
    let o = byte_conservation(&descs, 2 * MB);
    assert!(o.pass, "{}: {}", o.law, o.detail);
}

#[test]
fn sqe_wait_is_informational_and_ring_only() {
    // The legacy splice(2) path records no submission-queue wait…
    let scp = scp_kernel();
    assert_eq!(scp.kstat().stages.sqe_wait.count(), 0);

    // …while the batched ring records one sample per admitted SQE, and
    // the decomposition attaches it as an informational row that never
    // breaks closure.
    let ring = ring_kernel();
    assert_eq!(ring.kstat().stages.sqe_wait.count(), 8);
    let spans = ring.trace().query().all_block_spans();
    let d = decompose(
        &spans,
        &ring.kstat().stages,
        kanalyze::decompose::CLOSURE_TOLERANCE,
    );
    assert!(d.closure_pass, "closure error {}", d.closure_error);
    let row = d.table.iter().find(|r| r.stage == "sqe_wait").unwrap();
    assert!(row.informational);
    assert_eq!(row.count, 8);
    assert!(row.total_ns > 0);
}

#[test]
fn diff_gate_catches_drift_in_live_report() {
    let k = scp_kernel();
    let spans = k.trace().query().all_block_spans();
    let d = decompose(
        &spans,
        &k.kstat().stages,
        kanalyze::decompose::CLOSURE_TOLERANCE,
    );
    let doc = Json::obj()
        .with("schema_version", Json::Num(1.0))
        .with("decomposition", d.to_json())
        .with("stages", k.kstat().stages.to_json());

    // Self-comparison passes; the simulator is deterministic, so an
    // identical rerun serializes the identical document.
    let r = compare(&doc, &doc.clone(), &DiffRules::default()).unwrap();
    assert!(r.pass(), "{:?}", r.failures);

    // Perturb one integral metric (a block count) in the rendered
    // document: the gate must name it.
    let text = doc.render_pretty();
    let drifted = text.replacen("\"blocks\": 256", "\"blocks\": 255", 1);
    assert_ne!(text, drifted, "perturbation must hit");
    let bad = Json::parse(&drifted).unwrap();
    let r = compare(&doc, &bad, &DiffRules::default()).unwrap();
    assert!(!r.pass(), "integer drift must fail");
    assert!(
        r.failures.iter().any(|f| f.contains("blocks")),
        "{:?}",
        r.failures
    );
}
