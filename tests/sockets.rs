//! Cross-crate integration: UDP datagram flow through the kernel.

use kproc::programs::{UdpRelayRw, UdpRelaySplice, UdpSink, UdpSource};
use kproc::{ProcState, SockAddr};
use ksim::Dur;
use splice::KernelBuilder;

#[test]
fn source_to_sink_direct() {
    let mut k = KernelBuilder::new().build();
    let sink = k.spawn(Box::new(UdpSink::new(9000, 10)));
    let src = k.spawn(Box::new(UdpSource::new(
        SockAddr {
            host: 1,
            port: 9000,
        },
        1024,
        10,
        Dur::from_ms(1),
        7,
    )));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(sink).state, ProcState::Exited(0)));
    assert!(matches!(k.procs().must(src).state, ProcState::Exited(0)));
    assert_eq!(k.net().stats().delivered, 10);
    assert_eq!(k.net().stats().bytes_delivered, 10 * 1024);
}

#[test]
fn rw_relay_forwards_everything() {
    let mut k = KernelBuilder::new().build();
    let sink = k.spawn(Box::new(UdpSink::new(9001, 20)));
    let relay = k.spawn(Box::new(UdpRelayRw::new(
        9000,
        SockAddr {
            host: 1,
            port: 9001,
        },
        20,
    )));
    k.spawn(Box::new(UdpSource::new(
        SockAddr {
            host: 1,
            port: 9000,
        },
        2048,
        20,
        Dur::from_ms(1),
        7,
    )));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(sink).state, ProcState::Exited(0)));
    assert!(matches!(k.procs().must(relay).state, ProcState::Exited(0)));
}

#[test]
fn splice_relay_forwards_in_kernel() {
    let mut k = KernelBuilder::new().build();
    let total = 20u64 * 2048;
    let sink = k.spawn(Box::new(UdpSink::new(9001, 20)));
    let relay = k.spawn(Box::new(UdpRelaySplice::new(
        9000,
        SockAddr {
            host: 1,
            port: 9001,
        },
        total,
    )));
    k.spawn(Box::new(UdpSource::new(
        SockAddr {
            host: 1,
            port: 9000,
        },
        2048,
        20,
        Dur::from_ms(1),
        7,
    )));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(sink).state, ProcState::Exited(0)));
    assert!(matches!(k.procs().must(relay).state, ProcState::Exited(0)));
    // The relay path never copies to user space.
    assert_eq!(k.metrics().splice.started, 1);
}

/// The drop counter is split by cause: sends to a port nobody bound
/// count as `dropped_no_listener`, arrivals past the receive-buffer
/// limit count as `dropped_rcv_full`, and the legacy aggregate is
/// exactly the sum of the split.
#[test]
fn dropped_counters_split_by_cause() {
    let mut k = KernelBuilder::new().build();
    // A bound-but-undrained receiver with a 2 KB buffer: the first two
    // 1 KB datagrams queue, the rest bounce off the full buffer.
    k.net_mut().set_rcv_limit(2048);
    let parked = k.net_mut().socket(1);
    k.net_mut().bind(parked, 9100).expect("port free");
    k.spawn(Box::new(UdpSource::new(
        SockAddr {
            host: 1,
            port: 9100,
        },
        1024,
        4,
        Dur::from_ms(1),
        7,
    )));
    // Nothing listens on 9200: every send is a no-listener drop.
    k.spawn(Box::new(UdpSource::new(
        SockAddr {
            host: 1,
            port: 9200,
        },
        512,
        3,
        Dur::from_ms(1),
        7,
    )));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);

    let m = k.metrics().net;
    assert_eq!(m.dropped_no_listener, 3);
    assert_eq!(m.dropped_rcv_full, 2);
    assert_eq!(m.dropped_backlog, 0);
    assert_eq!(
        k.net().stats().dropped(),
        m.dropped_no_listener + m.dropped_rcv_full + m.dropped_backlog,
        "aggregate drop count must equal the sum of its causes"
    );
    assert_eq!(k.net().rcv_used(parked), 2048, "survivors fill the buffer");
}

#[test]
fn rw_relay_with_cpu_contention() {
    let mut k = KernelBuilder::new().build();
    let test = k.spawn(Box::new(kproc::programs::CpuBound::new(
        500,
        Dur::from_ms(1),
    )));
    let sink = k.spawn(Box::new(UdpSink::new(9001, 20)));
    let relay = k.spawn(Box::new(UdpRelayRw::new(
        9000,
        SockAddr {
            host: 1,
            port: 9001,
        },
        20,
    )));
    k.spawn(Box::new(UdpSource::new(
        SockAddr {
            host: 1,
            port: 9000,
        },
        2048,
        20,
        Dur::from_ms(2),
        7,
    )));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(test).state, ProcState::Exited(0)));
    assert!(matches!(k.procs().must(sink).state, ProcState::Exited(0)));
    assert!(matches!(k.procs().must(relay).state, ProcState::Exited(0)));
}
