//! Cross-crate integration: the resource-accounting profiler.
//!
//! The histogram algebra must be exact where it claims exactness
//! (bucket boundaries, merge), monotone where it estimates
//! (percentiles), and safe at the extremes (top-bucket saturation).
//! The gauge sampler must be deterministic — identical runs produce
//! identical `TS_*.json` bytes — bounded at its configured capacity,
//! and completely absent (down to the trace-export bytes) when not
//! opted into.

use kproc::programs::Scp;
use kproc::ProcState;
use ksim::{Dur, Hist, Json};
use splice::{Kernel, KernelBuilder};

const MB: u64 = 1024 * 1024;

// ----- Hist ---------------------------------------------------------------

#[test]
fn hist_bucket_boundaries_are_exact() {
    let mut h = Hist::new();
    // Straddle the bucket edge at 2^4: 15 is the top of bucket 3,
    // 16 the bottom of bucket 4.
    for v in [15u64, 16, 31, 32] {
        h.record(v);
    }
    assert_eq!(h.buckets()[3], 1); // [8, 16): 15
    assert_eq!(h.buckets()[4], 2); // [16, 32): 16, 31
    assert_eq!(h.buckets()[5], 1); // [32, 64): 32
                                   // 0 and 1 both fold into bucket 0.
    let mut z = Hist::new();
    z.record(0);
    z.record(1);
    assert_eq!(z.buckets()[0], 2);
    // A percentile never reports past the exact extrema, and
    // out-of-range fractions are rejected.
    assert_eq!(h.percentile(1.0), Some(32));
    assert_eq!(h.percentile(-0.1), None);
    assert_eq!(h.percentile(1.1), None);
}

#[test]
fn hist_percentiles_are_monotone() {
    let mut h = Hist::new();
    // Deterministic spread over five decades.
    for i in 1..=4096u64 {
        h.record(i * i % 100_000 + 1);
    }
    let ps: Vec<u64> = [0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0]
        .iter()
        .map(|p| h.percentile(*p).unwrap())
        .collect();
    for w in ps.windows(2) {
        assert!(w[0] <= w[1], "percentiles must be monotone: {ps:?}");
    }
    assert!(ps[0] >= h.min().unwrap());
    assert_eq!(*ps.last().unwrap(), h.max().unwrap());
}

#[test]
fn hist_merge_is_associative() {
    let shard = |seed: u64| {
        let mut h = Hist::new();
        for i in 0..100u64 {
            h.record(seed.wrapping_mul(2654435761).wrapping_add(i * 97) % 1_000_000);
        }
        h
    };
    let (a, b, c) = (shard(1), shard(2), shard(3));

    // (a ∪ b) ∪ c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    // a ∪ (b ∪ c)
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);

    assert_eq!(left.buckets(), right.buckets());
    assert_eq!(left.count(), right.count());
    assert_eq!(left.sum(), right.sum());
    assert_eq!(left.min(), right.min());
    assert_eq!(left.max(), right.max());
    assert_eq!(left.to_json().render(), right.to_json().render());
}

#[test]
fn hist_saturates_at_top_bucket() {
    let mut h = Hist::new();
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    h.record(1u64 << 63);
    assert_eq!(h.buckets()[63], 3);
    // The estimate clamps into the exact [min, max] range instead of
    // overflowing the bucket upper bound.
    assert_eq!(h.percentile(0.99), Some(u64::MAX));
    assert_eq!(h.min(), Some(1u64 << 63));
}

// ----- sampler ------------------------------------------------------------

fn sampled_kernel(period: Dur, capacity: usize) -> Kernel {
    let mut k = KernelBuilder::paper_machine_ram()
        .trace(1 << 20)
        .sample(period, capacity)
        .build();
    k.setup_file("/d0/src", 2 * MB, 5);
    k.cold_cache();
    let pid = k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    k
}

#[test]
fn sampler_time_series_is_deterministic() {
    let a = sampled_kernel(Dur::from_ms(5), 4096);
    let b = sampled_kernel(Dur::from_ms(5), 4096);
    let ta = a.timeseries_json("scp").render_pretty();
    let tb = b.timeseries_json("scp").render_pretty();
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "identical runs must serialize identical TS bytes");
    assert!(a.samples().count() > 0, "sampler never fired");
    // Timestamps strictly increase (one sample per callout period).
    let ts: Vec<u64> = a.samples().map(|s| s.at.as_ns()).collect();
    for w in ts.windows(2) {
        assert!(w[0] < w[1], "sample times must increase: {ts:?}");
    }
}

#[test]
fn sampler_ring_saturates_at_capacity() {
    let k = sampled_kernel(Dur::from_ms(1), 4);
    assert_eq!(k.samples().count(), 4, "ring must cap at capacity");
    let doc = k.timeseries_json("scp");
    let dropped = doc.get("dropped").and_then(Json::as_u64).unwrap();
    assert!(dropped > 0, "overflow must be counted, not silent");
    assert_eq!(doc.get("samples").and_then(Json::as_arr).unwrap().len(), 4);
}

#[test]
fn sampler_records_cpu_share_gauges() {
    let k = sampled_kernel(Dur::from_ms(2), 4096);
    // The copier (pid 1) must show nonzero CPU share in some interval.
    let any_share = k
        .samples()
        .any(|s| s.cpu_share.iter().any(|(_, f)| *f > 0.0));
    assert!(any_share, "no interval recorded any CPU use");
    // Shares are fractions of a wall interval on a uniprocessor
    // (quantum charges that straddle a boundary are clamped).
    for s in k.samples() {
        for (pid, f) in &s.cpu_share {
            assert!((0.0..=1.0).contains(f), "pid {pid} share {f} out of range");
        }
    }
}

#[test]
fn chrome_counters_only_with_sampling() {
    let count_c = |k: &Kernel| {
        let doc = Json::parse(&k.trace().to_chrome_json().render()).expect("chrome json parses");
        doc.get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .count()
    };

    // Without the opt-in: no counter events at all.
    let mut plain = KernelBuilder::paper_machine_ram().trace(1 << 20).build();
    plain.setup_file("/d0/src", 2 * MB, 5);
    plain.cold_cache();
    let pid = plain.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
    let horizon = plain.horizon(300);
    plain.run_to_exit(horizon);
    assert!(matches!(
        plain.procs().must(pid).state,
        ProcState::Exited(0)
    ));
    assert_eq!(
        count_c(&plain),
        0,
        "sampler-free trace must have no C events"
    );

    // With it: every sample mirrors its gauges as counter events.
    let sampled = sampled_kernel(Dur::from_ms(5), 4096);
    let n = count_c(&sampled);
    assert!(n > 0, "sampled trace must contain counter events");
    assert!(
        n >= sampled.samples().count(),
        "each sample should emit at least one counter event"
    );
}

// ----- profile snapshot ---------------------------------------------------

#[test]
fn profile_accounts_stages_and_devices() {
    let k = sampled_kernel(Dur::from_ms(5), 4096);
    let prof = k.profile();

    // Per-stage histograms: a RAM-disk splice exercises the whole
    // pipeline except retries.
    let stages = &prof.stages;
    assert!(stages.read_queue_wait.count() > 0, "no queue-wait samples");
    assert!(stages.read_service.count() > 0, "no read-service samples");
    assert!(stages.read_to_write.count() > 0, "no gap samples");
    assert!(stages.write_service.count() > 0, "no write-service samples");
    assert_eq!(stages.retry_backoff.count(), 0, "phantom retries");
    assert!(stages.end_to_end.count() > 0, "no end-to-end samples");
    // Stage ordering: a block's read service can never exceed its
    // end-to-end latency.
    assert!(stages.read_service.max() <= stages.end_to_end.max());

    // Devices: both RAM disks moved blocks and accumulated busy time.
    assert_eq!(prof.devices.len(), 2);
    for d in &prof.devices {
        assert!(d.requests > 0, "device {} unused", d.name);
        assert!(!d.busy_time.is_zero(), "device {} no busy time", d.name);
        assert_eq!(d.service.count, d.requests);
    }

    // Processes: the copier exists, exited, and was charged CPU.
    let scp = prof.procs.iter().find(|p| p.name == "scp").expect("scp");
    assert!(scp.exited);
    assert!(!scp.cpu_time().is_zero());
    assert!(scp.syscalls > 0);

    // JSON form carries the stage digests with quantiles.
    let doc = prof.to_json();
    let e2e = doc.get("stages").and_then(|s| s.get("end_to_end")).unwrap();
    for key in ["count", "p50", "p90", "p99"] {
        assert!(e2e.get(key).is_some(), "stage digest missing {key}");
    }
}
