//! Connection-layer scenario battery: the splice server programs from
//! `kproc::programs::server` driven end to end through the kernel —
//! backlog overflow accounting, connection lifecycle reclaim, byte-exact
//! service at depth 1 vs a depth-64 ring, tail-latency monotonicity in
//! connection count, and seeded replay determinism (`SERVER_SEED` is
//! randomized by `scripts/ci.sh`).

use std::rc::Rc;

use knet::LinkModel;
use kproc::programs::{open_loop_delays, scenario_stats, ServeMode, ServerClient, SpliceServer};
use kproc::{ProcState, SockAddr};
use ksim::{Dur, ObsConfig, ReqSpan, SloConfig};
use splice::{Kernel, KernelBuilder};

const FILE_BYTES: u64 = 8 * 1024;
const PORT: u16 = 80;
const SEED: u64 = 0x5e12;

fn addr() -> SockAddr {
    SockAddr {
        host: 1,
        port: PORT,
    }
}

/// Builds a kernel with the bench link model and the seeded file.
fn server_kernel(seed: u64, trace: usize) -> Kernel {
    server_kernel_obs(seed, trace, None)
}

/// [`server_kernel`] with an observability override (e.g. an unmeetable
/// SLO to provoke the flight recorder).
fn server_kernel_obs(seed: u64, trace: usize, obs: Option<ObsConfig>) -> Kernel {
    let b = KernelBuilder::paper_machine_ram();
    let b = if trace > 0 { b.trace(trace) } else { b };
    let b = if let Some(cfg) = obs {
        b.observe(cfg)
    } else {
        b
    };
    let mut k = b.build();
    k.net_mut().set_link_model(
        1,
        LinkModel {
            bps: 125_000_000,
            base_latency: Dur::from_us(200),
            jitter: Dur::from_us(100),
            loss_ppm: 0,
            seed,
        },
    );
    k.setup_file("/d0/file", FILE_BYTES, seed);
    k.cold_cache();
    k
}

/// Arrivals beyond the listen backlog while the server naps are dropped
/// and *counted* — and the drops allocate nothing: no server-side
/// connection socket, no receive-buffer bytes. The accepted fleet is
/// served in full.
#[test]
fn backlog_overflow_drops_are_counted_without_leaked_sockets() {
    let backlog = 8usize;
    let clients = 16usize;
    let mut k = server_kernel(SEED, 0);
    let stats = scenario_stats();
    let server = k.spawn(Box::new(
        SpliceServer::new(
            PORT,
            "/d0/file",
            FILE_BYTES,
            backlog,
            backlog as u32,
            ServeMode::Splice,
            Rc::clone(&stats),
        )
        // Listen, then nap: every arrival lands on the backlog.
        .warmup(Dur::from_ms(50)),
    ));
    for delay in open_loop_delays(clients, Dur::from_ms(10), SEED) {
        k.spawn(Box::new(ServerClient::new(
            addr(),
            FILE_BYTES,
            SEED,
            // Past the server's own socket/bind/listen syscalls.
            delay + Dur::from_ms(1),
            Rc::clone(&stats),
        )));
    }
    // The dropped clients hang in recv forever, so run by exit count,
    // not `run_to_exit`: the server plus every accepted client.
    let horizon = k.horizon(600);
    k.run_until(horizon, |k| {
        k.procs().iter().filter(|p| p.exited()).count() == 1 + backlog
    });

    assert!(matches!(k.procs().must(server).state, ProcState::Exited(0)));
    let s = stats.borrow();
    assert_eq!(s.served, backlog as u64, "server must serve the backlog");
    assert_eq!(s.completed, backlog as u64);
    assert_eq!(s.mismatches, 0);
    assert_eq!(s.bytes_received, backlog as u64 * FILE_BYTES);

    let m = k.metrics().net;
    assert_eq!(
        m.dropped_backlog,
        (clients - backlog) as u64,
        "every overflow arrival is accounted as a backlog drop"
    );
    assert_eq!(m.conns_opened, backlog as u64, "drops never carve a conn");
    // The only open sockets left belong to the hung clients themselves;
    // the listener, every accepted conn, and every served client socket
    // are gone, and no receive buffer holds bytes.
    assert_eq!(k.net().open_socks(), clients - backlog);
    assert_eq!(k.net().total_rcv_used(), 0);
}

/// A full serve-and-close cycle returns the kernel to its baseline:
/// no sockets, no receive-buffer bytes, and the listening port is
/// immediately rebindable.
#[test]
fn connection_lifecycle_frees_port_and_buffers() {
    let mut k = server_kernel(SEED, 0);
    let stats = scenario_stats();
    let server = k.spawn(Box::new(SpliceServer::new(
        PORT,
        "/d0/file",
        FILE_BYTES,
        1,
        4,
        ServeMode::Splice,
        Rc::clone(&stats),
    )));
    k.spawn(Box::new(ServerClient::new(
        addr(),
        FILE_BYTES,
        SEED,
        Dur::from_ms(1),
        Rc::clone(&stats),
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    assert!(matches!(k.procs().must(server).state, ProcState::Exited(0)));
    assert_eq!(stats.borrow().completed, 1);
    assert_eq!(stats.borrow().mismatches, 0);
    assert_eq!(k.net().open_socks(), 0, "lifecycle leaked a socket");
    assert_eq!(k.net().total_rcv_used(), 0, "lifecycle leaked rcv bytes");
    // The port is free again: a fresh socket can bind it.
    let again = k.net_mut().socket(1);
    assert!(
        k.net_mut().bind(again, PORT).is_ok(),
        "port {PORT} still held after the listener closed"
    );
}

/// Runs `conns` clients against one server in `mode`; returns
/// (completed, bytes_received, splices started).
fn serve_fleet(conns: usize, mode: ServeMode, seed: u64) -> (u64, u64, u64) {
    let mut k = server_kernel(seed, 0);
    let stats = scenario_stats();
    let server = k.spawn(Box::new(SpliceServer::new(
        PORT,
        "/d0/file",
        FILE_BYTES,
        conns,
        conns as u32,
        mode,
        Rc::clone(&stats),
    )));
    // Constant offered rate (10k/s), as in the bench.
    let window = Dur::from_ns(conns as u64 * 100_000);
    for delay in open_loop_delays(conns, window, seed) {
        k.spawn(Box::new(ServerClient::new(
            addr(),
            FILE_BYTES,
            seed,
            delay,
            Rc::clone(&stats),
        )));
    }
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(server).state, ProcState::Exited(0)),
        "{mode:?}: server failed"
    );
    let s = stats.borrow();
    assert_eq!(s.mismatches, 0, "{mode:?}: payload corruption");
    (s.completed, s.bytes_received, k.metrics().splice.started)
}

/// One-at-a-time `splice(2)` service and depth-64 ring service deliver
/// the identical bytes to the identical fleet — the batching machinery
/// changes scheduling, never data.
#[test]
fn depth1_splice_and_ring64_serve_byte_exact() {
    let conns = 128usize;
    let (sync_done, sync_bytes, sync_splices) = serve_fleet(conns, ServeMode::Splice, SEED);
    let (ring_done, ring_bytes, ring_splices) =
        serve_fleet(conns, ServeMode::Ring { depth: 64 }, SEED);
    assert_eq!(sync_done, conns as u64);
    assert_eq!(ring_done, conns as u64);
    assert_eq!(sync_bytes, conns as u64 * FILE_BYTES);
    assert_eq!(ring_bytes, sync_bytes, "ring served different bytes");
    // Both in-kernel paths run exactly one splice per connection.
    assert_eq!(sync_splices, conns as u64);
    assert_eq!(ring_splices, conns as u64);
}

/// Runs a ring-served open-loop fleet and reports the p99 of the
/// request→last-byte latency histogram.
fn p99_at(conns: usize) -> u64 {
    let mut k = server_kernel(SEED, 0);
    let stats = scenario_stats();
    k.spawn(Box::new(SpliceServer::new(
        PORT,
        "/d0/file",
        FILE_BYTES,
        conns,
        conns as u32,
        ServeMode::Ring { depth: 64 },
        Rc::clone(&stats),
    )));
    let window = Dur::from_ns(conns as u64 * 100_000);
    for delay in open_loop_delays(conns, window, SEED) {
        k.spawn(Box::new(ServerClient::new(
            addr(),
            FILE_BYTES,
            SEED,
            delay,
            Rc::clone(&stats),
        )));
    }
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    let s = stats.borrow();
    assert_eq!(s.completed, conns as u64);
    s.latency.p99().unwrap()
}

/// Under a constant offered rate, adding connections never *improves*
/// the tail: p99 at 1000 connections is at least p99 at 100.
#[test]
fn p99_is_monotone_in_connection_count() {
    let small = p99_at(100);
    let large = p99_at(1000);
    assert!(
        large >= small,
        "p99 fell from {small}ns at 100 conns to {large}ns at 1000 conns"
    );
}

/// The whole connection-scale scenario replays identically for a given
/// seed: sim end time, every net/sched counter, the latency histogram,
/// and the trace bytes. `scripts/ci.sh` randomizes `SERVER_SEED`; any
/// failure prints the seed to reproduce.
#[test]
fn server_scenario_replays_identically_under_seed() {
    let seed: u64 = std::env::var("SERVER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED);
    let conns = 400usize;
    let run = || {
        let mut k = server_kernel(seed, 1 << 16);
        let stats = scenario_stats();
        let server = k.spawn(Box::new(SpliceServer::new(
            PORT,
            "/d0/file",
            FILE_BYTES,
            conns,
            conns as u32,
            ServeMode::Ring { depth: 64 },
            Rc::clone(&stats),
        )));
        let window = Dur::from_ns(conns as u64 * 100_000);
        for delay in open_loop_delays(conns, window, seed) {
            k.spawn(Box::new(ServerClient::new(
                addr(),
                FILE_BYTES,
                seed,
                delay,
                Rc::clone(&stats),
            )));
        }
        let horizon = k.horizon(600);
        let end = k.run_to_exit(horizon);
        assert!(
            matches!(k.procs().must(server).state, ProcState::Exited(0)),
            "SERVER_SEED={seed}: server failed"
        );
        let s = stats.borrow();
        assert_eq!(s.completed, conns as u64, "SERVER_SEED={seed}: short");
        assert_eq!(s.mismatches, 0, "SERVER_SEED={seed}: corruption");
        let m = k.metrics();
        (
            end.as_ns(),
            m.net.sent,
            m.net.delivered,
            m.net.conns_opened,
            m.net.snd_blocked,
            m.sched.ctx_switches,
            s.latency.sum(),
            (s.latency.min(), s.latency.max()),
            k.trace_dump(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "SERVER_SEED={seed}: replay diverged");
}

/// The flight recorder and the committed-span set replay byte-identically
/// for a given seed: an unmeetable SLO target turns every request into a
/// violation, the burn-rate monitor alerts at the same close on both
/// runs, the frozen trace window renders to the same JSON bytes, and
/// the committed spans match span for span.
#[test]
fn flight_dump_and_committed_spans_replay_identically() {
    let seed: u64 = std::env::var("SERVER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED);
    let conns = 256usize;
    let cfg = ObsConfig {
        slo: SloConfig {
            latency_target: Dur::from_us(1),
            ..SloConfig::default()
        },
        ..ObsConfig::on()
    };
    let run = || {
        let mut k = server_kernel_obs(seed, 1 << 16, Some(cfg));
        let stats = scenario_stats();
        let server = k.spawn(Box::new(SpliceServer::new(
            PORT,
            "/d0/file",
            FILE_BYTES,
            conns,
            conns as u32,
            ServeMode::Splice,
            Rc::clone(&stats),
        )));
        let window = Dur::from_ns(conns as u64 * 100_000);
        for delay in open_loop_delays(conns, window, seed) {
            k.spawn(Box::new(ServerClient::new(
                addr(),
                FILE_BYTES,
                seed,
                delay,
                Rc::clone(&stats),
            )));
        }
        let horizon = k.horizon(600);
        k.run_to_exit(horizon);
        assert!(
            matches!(k.procs().must(server).state, ProcState::Exited(0)),
            "SERVER_SEED={seed}: server failed"
        );
        let c = k.obs().counters();
        assert_eq!(
            c.violations, c.requests,
            "SERVER_SEED={seed}: a 1 µs target must make every request violate"
        );
        assert_eq!(
            c.committed, c.requests,
            "SERVER_SEED={seed}: every violation must commit a span"
        );
        assert!(c.alerts >= 1, "SERVER_SEED={seed}: no alert fired");
        let flight = k
            .flight_json("server")
            .expect("alert froze no flight dump")
            .render_pretty();
        let spans: Vec<ReqSpan> = k.obs().committed_spans().copied().collect();
        (flight, spans)
    };
    let (flight_a, spans_a) = run();
    let (flight_b, spans_b) = run();
    assert_eq!(
        flight_a, flight_b,
        "SERVER_SEED={seed}: flight dump bytes diverged"
    );
    assert_eq!(
        spans_a, spans_b,
        "SERVER_SEED={seed}: committed spans diverged"
    );
}
