//! Failure-mode suite for the splice data path: deterministic fault
//! injection ([`khw::FaultPlan`]) driven through the whole stack —
//! device error at `biodone` (`B_ERROR`), bounded engine retries with
//! exponential backoff on the callout list, watermark-aware abort with
//! a typed errno and exact partial-transfer accounting, and no leaked
//! buffers or callouts afterwards.

use khw::{DiskProfile, FaultOp, FaultPlan, SECTOR_SIZE};
use kproc::programs::{EndSpec, EndpointPair, Scp, ScpMode};
use kproc::{Errno, ProcState, SpliceLen, SyscallRet};
use ksim::Dur;
use splice::{Kernel, KernelBuilder, MAX_SPLICE_RETRIES};

const MB: u64 = 1024 * 1024;

/// A two-RAM-disk machine with the `update` daemon off, so the armed
/// callout count quiesces to zero and leak assertions are exact.
fn quiet_machine() -> Kernel {
    KernelBuilder::paper_machine_ram()
        .tune(|cfg| cfg.update_interval = None)
        .build()
}

/// First device sector of logical block `lblk` of a file.
fn sector_of(k: &Kernel, disk: usize, path: &str, lblk: u64) -> u64 {
    let ino = k.disks()[disk].fs.lookup(path).expect("file exists");
    let pblk = k.disks()[disk].fs.bmap(ino, lblk).expect("mapped block");
    pblk * (8192 / SECTOR_SIZE as u64)
}

/// Runs the sim a little longer so backoff callouts and soft work fully
/// drain before leak assertions.
fn settle(k: &mut Kernel) {
    let horizon = k.horizon(2);
    k.run_until(horizon, |k| k.pending_callouts() == 0);
}

#[test]
fn transient_read_eio_recovers_byte_exact() {
    let len = MB;
    let mut k = quiet_machine();
    k.setup_file("/d0/src", len, 7);
    k.cold_cache();
    // 1% of read requests fail once; retries draw fresh occurrences.
    k.set_fault_plan(0, FaultPlan::new(42).transient_eio(FaultOp::Read, 0.01));

    let pid = k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(k.verify_pattern_file("/d1/dst", len, 7), None);
    let m = k.metrics();
    assert!(m.io.errors > 0, "the plan injected nothing");
    assert!(
        m.splice.retries > 0,
        "errors must surface as engine retries"
    );
    assert_eq!(m.splice.aborted, 0, "transient errors must not abort");
    assert_eq!(k.splice_outcome(1).done().unwrap().error, None);
    assert_eq!(k.splice_outcome(1).done().unwrap().bytes_moved, len);
    assert!(k.fsck_all().is_empty());
}

#[test]
fn transient_eio_at_specific_block_retries_then_succeeds() {
    let len = 16 * 8192;
    let mut k = quiet_machine();
    k.setup_file("/d0/src", len as u64, 3);
    k.cold_cache();
    let sector = sector_of(&k, 0, "/src", 4);
    // Block 4 fails exactly twice, then reads clean.
    k.set_fault_plan(
        0,
        FaultPlan::new(9).transient_eio_at(FaultOp::Read, sector, 2),
    );

    let pid = k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(k.verify_pattern_file("/d1/dst", len as u64, 3), None);
    let m = k.metrics();
    assert_eq!(m.io.errors, 2);
    assert_eq!(m.splice.retries, 2);
    assert_eq!(m.splice.aborted, 0);
}

#[test]
fn permanent_bad_block_aborts_with_typed_errno_and_exact_partial_count() {
    let nblocks = 16u64;
    let len = nblocks * 8192;
    let mut k = quiet_machine();
    k.setup_file("/d0/src", len, 5);
    k.cold_cache();
    let free_baseline = k.cache().free_count();
    let sector = sector_of(&k, 0, "/src", 4);
    k.set_fault_plan(0, FaultPlan::new(1).bad_block(FaultOp::Read, sector));

    let (pair, result) = EndpointPair::new(
        EndSpec::read("/d0/src"),
        EndSpec::create("/d1/dst"),
        SpliceLen::Eof,
    );
    let pid = k.spawn(Box::new(pair));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    settle(&mut k);

    // The syscall reports the typed errno, never a success count.
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(*result.borrow(), Some(SyscallRet::Err(Errno::Eio)));

    // Retries are bounded, then exactly one abort.
    let m = k.metrics();
    assert_eq!(m.splice.retries, MAX_SPLICE_RETRIES as u64);
    assert_eq!(m.io.errors, MAX_SPLICE_RETRIES as u64 + 1);
    assert_eq!(m.splice.aborted, 1);
    assert_eq!(m.splice.completed, 0);

    // Exact partial accounting: every block except the bad one drained
    // (the engine keeps moving the rest while one block retries), and
    // the recorded outcome matches the span's byte counter.
    let out = k.splice_outcome(1).done().expect("outcome recorded");
    assert_eq!(out.error, Some(Errno::Eio));
    assert_eq!(out.bytes_moved, (nblocks - 1) * 8192);
    assert_eq!(m.splice[1].bytes_moved, out.bytes_moved);

    // Nothing leaked: all cache buffers back on the free list, no
    // pending callouts, filesystems structurally clean.
    assert_eq!(k.cache().free_count(), free_baseline);
    assert_eq!(k.pending_callouts(), 0);
    k.cache().check_invariants();
    assert!(k.fsck_all().is_empty());
}

#[test]
fn permanent_write_fault_aborts_and_dst_fs_stays_consistent() {
    let len = 12 * 8192u64;
    let mut k = quiet_machine();
    k.setup_file("/d0/src", len, 11);
    k.cold_cache();
    let free_baseline = k.cache().free_count();
    // Every write to the destination disk fails, with a torn prefix on
    // one victim sector range for extra spice: crash-consistency check.
    k.set_fault_plan(
        1,
        FaultPlan::new(77)
            .transient_eio(FaultOp::Write, 1.0)
            .torn_write(0, 4),
    );

    let (pair, result) = EndpointPair::new(
        EndSpec::read("/d0/src"),
        EndSpec::create("/d1/dst"),
        SpliceLen::Eof,
    );
    let pid = k.spawn(Box::new(pair));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    settle(&mut k);

    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(*result.borrow(), Some(SyscallRet::Err(Errno::Eio)));
    let m = k.metrics();
    assert_eq!(m.splice.aborted, 1);
    assert!(m.splice.retries >= MAX_SPLICE_RETRIES as u64);
    let out = k.splice_outcome(1).done().expect("outcome recorded");
    assert_eq!(out.error, Some(Errno::Eio));
    assert!(out.bytes_moved < len, "no write ever completed");

    // Crash consistency: a permanent mid-copy write fault (including a
    // torn sector prefix) must not corrupt filesystem structure.
    assert!(k.fsck_all().is_empty());
    assert_eq!(k.cache().free_count(), free_baseline);
    assert_eq!(k.pending_callouts(), 0);
}

/// Regression for the silent-`EIO` gap: `splice(2)` must never report a
/// success value when its descriptor saw unrecovered device errors.
#[test]
fn splice_never_reports_success_after_unrecovered_errors() {
    let mut k = quiet_machine();
    k.setup_file("/d0/src", 8 * 8192, 2);
    k.cold_cache();
    let sector = sector_of(&k, 0, "/src", 0);
    k.set_fault_plan(0, FaultPlan::new(3).bad_block(FaultOp::Read, sector));

    let (pair, result) = EndpointPair::new(
        EndSpec::read("/d0/src"),
        EndSpec::create("/d1/dst"),
        SpliceLen::Eof,
    );
    k.spawn(Box::new(pair));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    let m = k.metrics();
    assert!(m.io.errors > 0);
    let got = result.borrow().clone();
    match got {
        Some(SyscallRet::Err(Errno::Eio)) => {}
        other => panic!("splice must fail with EIO, got {other:?}"),
    }
}

#[test]
fn device_sink_write_failure_aborts_with_eio() {
    let len = 8 * 8192u64;
    let mut k = KernelBuilder::new()
        .disk("d0", DiskProfile::ramdisk())
        .audio_dac("/dev/speaker", kdev::AudioDac::new(64 * 1024, 256 * 1024))
        .tune(|cfg| cfg.update_interval = None)
        .build();
    k.setup_file("/d0/src", len, 13);
    k.cold_cache();
    // The DAC accepts two blocks, then its write path fails.
    k.set_cdev_write_failure(0, 2 * 8192);

    let (pair, result) = EndpointPair::new(
        EndSpec::read("/d0/src"),
        EndSpec::write("/dev/speaker"),
        SpliceLen::Eof,
    );
    let pid = k.spawn(Box::new(pair));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    settle(&mut k);

    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(*result.borrow(), Some(SyscallRet::Err(Errno::Eio)));
    let m = k.metrics();
    assert_eq!(m.splice.aborted, 1);
    assert!(m.io.errors > 0);
    let out = k.splice_outcome(1).done().expect("outcome recorded");
    assert_eq!(out.error, Some(Errno::Eio));
    assert_eq!(out.bytes_moved, 2 * 8192);
    assert_eq!(k.pending_callouts(), 0);
}

#[test]
fn latency_spikes_delay_but_never_corrupt() {
    let len = MB / 2;
    let mut k = quiet_machine();
    k.setup_file("/d0/src", len, 17);
    k.cold_cache();
    // Every read stalls 5 ms extra; no errors are injected.
    k.set_fault_plan(
        0,
        FaultPlan::new(5).latency_spike(FaultOp::Read, 1.0, Dur::from_ms(5)),
    );

    let pid = k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(k.verify_pattern_file("/d1/dst", len, 17), None);
    let m = k.metrics();
    assert_eq!(m.io.errors, 0);
    assert_eq!(m.splice.retries, 0);
    assert_eq!(m.splice.aborted, 0);
}

#[test]
fn fault_runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut k = quiet_machine();
        k.setup_file("/d0/src", MB, 7);
        k.cold_cache();
        k.set_fault_plan(0, FaultPlan::new(seed).transient_eio(FaultOp::Read, 0.02));
        k.spawn(Box::new(Scp::with_options(
            "/d0/src",
            "/d1/dst",
            ScpMode::Sync,
            1,
        )));
        let horizon = k.horizon(600);
        let end = k.run_to_exit(horizon);
        let m = k.metrics();
        (end.as_ns(), m.io.errors, m.splice.retries)
    };
    let a = run(1234);
    assert_eq!(a, run(1234), "same seed must replay identically");
    assert_ne!(
        (a.1, a.2),
        (0, 0),
        "rate 2% over 128 blocks should inject at least once"
    );
}

/// The seed comes from `FAULT_SEED` when set — `scripts/ci.sh` runs the
/// suite a second time with a randomized seed (printed on failure) — and
/// defaults to a fixed one. The contract is seed-independent: transient
/// faults recover byte-exact for *every* plan seed, because each retry
/// draws a fresh occurrence.
#[test]
fn any_seed_transient_faults_recover() {
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15C);
    let len = MB;
    let mut k = quiet_machine();
    k.setup_file("/d0/src", len, 7);
    k.cold_cache();
    k.set_fault_plan(0, FaultPlan::new(seed).transient_eio(FaultOp::Read, 0.02));

    let pid = k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "FAULT_SEED={seed}: copy did not finish"
    );
    assert_eq!(
        k.verify_pattern_file("/d1/dst", len, 7),
        None,
        "FAULT_SEED={seed}: corrupted copy"
    );
    let m = k.metrics();
    assert_eq!(
        m.splice.aborted, 0,
        "FAULT_SEED={seed}: transient faults must never abort"
    );
    assert!(k.fsck_all().is_empty(), "FAULT_SEED={seed}: fsck dirty");
}

#[test]
fn fault_events_appear_in_trace_and_kstat() {
    let mut k = KernelBuilder::paper_machine_ram()
        .tune(|cfg| cfg.update_interval = None)
        .trace(100_000)
        .build();
    k.setup_file("/d0/src", 16 * 8192, 3);
    k.cold_cache();
    let sector = sector_of(&k, 0, "/src", 2);
    k.set_fault_plan(
        0,
        FaultPlan::new(8).transient_eio_at(FaultOp::Read, sector, 1),
    );
    k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    let q = k.trace().query();
    assert_eq!(q.named("disk.error").len(), 1);
    assert_eq!(q.named("splice.retry").len(), 1);
    assert_eq!(q.named("splice.abort").len(), 0);
    // The retried block still closes its span: read -> write -> done.
    let spans = q.block_spans(1);
    assert!(spans.iter().all(|s| s.complete()), "incomplete block span");
}
