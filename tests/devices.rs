//! Cross-crate integration: splices to and from character devices (§4,
//! §5.1) — the movie player, audio pacing, and framebuffer streaming.

use kdev::{AudioDac, Framebuffer, VideoDac};
use khw::DiskProfile;
use kproc::programs::{MoviePlayer, UdpSink};
use kproc::{
    Fd, OpenFlags, ProcState, Program, SockAddr, SpliceLen, SpliceReq, Step, SyscallReq, UserCtx,
};
use ksim::Dur;
use splice::objects::CharDev;
use splice::KernelBuilder;

/// A minimal program that splices one file to one device and exits.
struct SpliceOnce {
    src: String,
    dst: String,
    len: SpliceLen,
    st: u32,
    src_fd: Option<Fd>,
    dst_fd: Option<Fd>,
}

impl SpliceOnce {
    fn new(src: &str, dst: &str, len: SpliceLen) -> SpliceOnce {
        SpliceOnce {
            src: src.into(),
            dst: dst.into(),
            len,
            st: 0,
            src_fd: None,
            dst_fd: None,
        }
    }
}

impl Program for SpliceOnce {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Open {
                    path: self.src.clone(),
                    flags: OpenFlags::RDONLY,
                })
            }
            1 => {
                self.src_fd = ctx.take_ret().as_fd();
                self.st = 2;
                Step::Syscall(SyscallReq::Open {
                    path: self.dst.clone(),
                    flags: OpenFlags::WRONLY,
                })
            }
            2 => {
                self.dst_fd = ctx.take_ret().as_fd();
                self.st = 3;
                Step::splice(
                    SpliceReq::new(self.src_fd.unwrap(), self.dst_fd.unwrap()).len(self.len),
                )
            }
            3 => {
                let ret = ctx.take_ret();
                Step::Exit(if ret.as_val() >= 0 { 0 } else { 1 })
            }
            _ => Step::Exit(0),
        }
    }
}

#[test]
fn audio_splice_is_paced_by_the_dac() {
    // 16 KB of 8 kHz audio takes 2 seconds of playback; the splice is
    // synchronous, so the caller finishes when the DAC has accepted
    // everything (the last buffer-full still draining).
    let mut k = KernelBuilder::new()
        .disk("d0", DiskProfile::ramdisk())
        .audio_dac("/dev/speaker", AudioDac::new(8_000, 4_096))
        .build();
    k.setup_file("/d0/audio", 16 * 1024, 1);
    k.cold_cache();
    let t0 = k.now();
    let pid = k.spawn(Box::new(SpliceOnce::new(
        "/d0/audio",
        "/dev/speaker",
        SpliceLen::Eof,
    )));
    let horizon = k.horizon(60);
    let t1 = k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    let elapsed = t1.since(t0).as_secs_f64();
    // With a 4 KB device buffer the splice must wait for drain: at least
    // (16 KB - buffer) / 8 KB/s of paced time.
    assert!(
        elapsed > 1.4,
        "splice must be paced by the DAC, took {elapsed:.2}s"
    );
    let CharDev::Audio(dac) = &k.cdevs()[0].dev else {
        panic!()
    };
    assert_eq!(dac.total_accepted(), 16 * 1024);
    assert_eq!(dac.underruns(), 0);
}

#[test]
fn movie_player_hits_every_frame_without_audio_glitches() {
    const FRAME: usize = 32 * 1024;
    const FRAMES: u64 = 30;
    let mut k = KernelBuilder::new()
        .disk("d0", DiskProfile::rz58())
        .audio_dac("/dev/speaker", AudioDac::new(8_000, 64 * 1024))
        .video_dac("/dev/video_dac", VideoDac::new(FRAME))
        .build();
    k.setup_file("/d0/movie.audio", 8_000, 1); // 1 s of audio
    k.setup_file("/d0/movie.video", FRAMES * FRAME as u64, 2);
    k.cold_cache();
    let pid = k.spawn(Box::new(MoviePlayer::new(
        "/d0/movie.audio",
        "/d0/movie.video",
        "/dev/speaker",
        "/dev/video_dac",
        FRAME as u64,
        Dur::from_ms(33),
    )));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    for unit in k.cdevs() {
        match &unit.dev {
            CharDev::Audio(a) => {
                assert_eq!(a.total_accepted(), 8_000);
                assert_eq!(a.underruns(), 0);
            }
            CharDev::Video(v) => {
                assert_eq!(v.frames(), FRAMES);
                // Pacing: intervals should cluster around the 33 ms timer.
                let worst = v
                    .frame_intervals()
                    .iter()
                    .map(|d| d.as_secs_f64())
                    .fold(0.0f64, f64::max);
                assert!(worst < 0.08, "worst frame gap {worst:.3}s");
            }
            CharDev::Fb(_) => {}
        }
    }
}

#[test]
fn framebuffer_to_socket_splice_delivers_datagrams() {
    const FRAME: usize = 64 * 1024;
    let mut k = KernelBuilder::new()
        .framebuffer("/dev/fb", Framebuffer::new(FRAME, 30))
        .build();
    let total = 4 * FRAME as u64;
    let dgrams = total / 8192;
    let sink = k.spawn(Box::new(UdpSink::new(6000, dgrams)));

    struct FbToSock;
    // Reuse SpliceOnce for the fb→socket case via a socket set up by a
    // custom program would be longer; instead open fb + socket inline.
    struct Streamer {
        st: u32,
        fb: Option<Fd>,
        sock: Option<Fd>,
        total: u64,
    }
    impl Program for Streamer {
        fn step(&mut self, ctx: &mut UserCtx) -> Step {
            match self.st {
                0 => {
                    self.st = 1;
                    Step::Syscall(SyscallReq::Open {
                        path: "/dev/fb".into(),
                        flags: OpenFlags::RDONLY,
                    })
                }
                1 => {
                    self.fb = ctx.take_ret().as_fd();
                    self.st = 2;
                    Step::Syscall(SyscallReq::Socket)
                }
                2 => {
                    self.sock = ctx.take_ret().as_fd();
                    self.st = 3;
                    Step::Syscall(SyscallReq::Connect {
                        fd: self.sock.unwrap(),
                        addr: SockAddr {
                            host: 1,
                            port: 6000,
                        },
                    })
                }
                3 => {
                    ctx.take_ret();
                    self.st = 4;
                    Step::splice(
                        SpliceReq::new(self.fb.unwrap(), self.sock.unwrap()).bytes(self.total),
                    )
                }
                4 => {
                    let ret = ctx.take_ret();
                    Step::Exit(if ret.as_val() >= 0 { 0 } else { 1 })
                }
                _ => Step::Exit(0),
            }
        }
    }
    let _ = FbToSock;
    k.spawn(Box::new(Streamer {
        st: 0,
        fb: None,
        sock: None,
        total,
    }));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(sink).state, ProcState::Exited(0)));
    assert_eq!(k.net().stats().bytes_delivered, total);
    // No user-space copies on the streaming side (the sink's recv copies
    // are its own).
    assert_eq!(k.metrics().copy.copyin_bytes, 0);
}
