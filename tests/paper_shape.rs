//! The reproduction's headline claims, as assertions: `cargo test`
//! itself checks that the paper's shape holds. (Scaled down from the 8 MB
//! tables to keep the suite fast; the full-size numbers live in
//! EXPERIMENTS.md and regenerate via the bench binaries.)

use khw::DiskProfile;
use kproc::programs::{Cp, CpuBound, Scp, ScpMode};
use ksim::Dur;
use splice::{Kernel, KernelBuilder};

const MB: u64 = 1024 * 1024;

fn boot(profile: DiskProfile, len: u64) -> Kernel {
    let mut k = KernelBuilder::paper_machine(profile).build();
    k.setup_file("/d0/src", len, 1);
    k.cold_cache();
    k
}

fn throughput(profile: DiskProfile, len: u64, splice: bool) -> f64 {
    let mut k = boot(profile, len);
    let t0 = k.now();
    if splice {
        k.spawn(Box::new(Scp::with_options(
            "/d0/src",
            "/d1/dst",
            ScpMode::Async,
            1,
        )));
    } else {
        k.spawn(Box::new(Cp::new("/d0/src", "/d1/dst")));
    }
    let horizon = k.horizon(600);
    let t1 = k.run_to_exit(horizon);
    assert_eq!(k.verify_pattern_file("/d1/dst", len, 1), None);
    len as f64 / t1.since(t0).as_secs_f64()
}

fn slowdown(profile: DiskProfile, len: u64, splice: bool) -> f64 {
    let idle = {
        let mut k = boot(profile.clone(), len);
        let t0 = k.now();
        let test = k.spawn(Box::new(CpuBound::new(3_000, Dur::from_ms(1))));
        let horizon = k.horizon(600);
        let t1 = k.run_until_exit_of(test, horizon);
        t1.since(t0).as_secs_f64()
    };
    let mut k = boot(profile, len);
    let t0 = k.now();
    let test = k.spawn(Box::new(CpuBound::new(3_000, Dur::from_ms(1))));
    if splice {
        k.spawn(Box::new(Scp::with_options(
            "/d0/src",
            "/d1/dst",
            ScpMode::Async,
            10_000,
        )));
    } else {
        k.spawn(Box::new(Cp::with_options(
            "/d0/src", "/d1/dst", 8192, true, 10_000,
        )));
    }
    let horizon = k.horizon(600);
    let t1 = k.run_until_exit_of(test, horizon);
    t1.since(t0).as_secs_f64() / idle
}

#[test]
fn table2_shape_ram_splice_is_much_faster() {
    // Paper: SCP 3343 vs CP 1884 KB/s on the RAM disk (+77 %).
    let scp = throughput(DiskProfile::ramdisk(), 2 * MB, true);
    let cp = throughput(DiskProfile::ramdisk(), 2 * MB, false);
    let gain = scp / cp;
    assert!(
        (1.5..2.3).contains(&gain),
        "RAM splice gain {gain:.2} outside the paper's band (~1.8)"
    );
}

#[test]
fn table2_shape_real_disk_benefit_is_minor() {
    // Paper: "for real disks the disk transfer time dominates … the
    // benefit of splice is minor."
    let scp = throughput(DiskProfile::rz58(), 2 * MB, true);
    let cp = throughput(DiskProfile::rz58(), 2 * MB, false);
    let gain = scp / cp;
    assert!(
        (0.95..1.25).contains(&gain),
        "RZ58 splice gain {gain:.2} should be minor"
    );
}

#[test]
fn table1_shape_ram_availability() {
    // Paper: test program at 50 % of idle under CP, 80 % under SCP.
    let f_cp = slowdown(DiskProfile::ramdisk(), 2 * MB, false);
    let f_scp = slowdown(DiskProfile::ramdisk(), 2 * MB, true);
    assert!(
        (1.85..2.2).contains(&f_cp),
        "F_cp {f_cp:.2} should be ~2.0 on the RAM disk"
    );
    assert!(
        (1.15..1.45).contains(&f_scp),
        "F_scp {f_scp:.2} should be ~1.25 on the RAM disk"
    );
    assert!(f_cp / f_scp > 1.4, "improvement factor should be ~1.6");
}

#[test]
fn table1_shape_scsi_availability() {
    // Paper: splice leaves the test program more CPU on the real disks
    // too (60 % → 70-80 %).
    let f_cp = slowdown(DiskProfile::rz58(), 2 * MB, false);
    let f_scp = slowdown(DiskProfile::rz58(), 2 * MB, true);
    assert!(
        f_cp > f_scp * 1.1,
        "splice must improve availability on the RZ58: F_cp {f_cp:.2} vs F_scp {f_scp:.2}"
    );
    assert!(
        (1.1..1.6).contains(&f_scp),
        "F_scp {f_scp:.2} out of band on the RZ58"
    );
}
