//! Whole-kernel property tests: arbitrary file sizes and configurations
//! through the full splice path, with data integrity and filesystem
//! consistency as the properties — plus determinism of the simulation.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use kdev::{AudioDac, VideoDac};
use khw::{DiskProfile, FaultOp, FaultPlan};
use kproc::programs::{Cp, EndSpec, EndpointPair, Scp, ScpMode};
use kproc::{Errno, ProcState, SpliceLen, SyscallRet};
use proptest::prelude::*;
use splice::{FlowControl, KernelBuilder};

fn splice_copy_roundtrip(len: u64, seed: u64, flow: FlowControl, block_size: u32) {
    let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk())
        .tune(|cfg| {
            cfg.flow = flow;
            cfg.block_size = block_size;
        })
        .build();
    k.setup_file("/d0/src", len, seed);
    k.cold_cache();
    let pid = k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(
        k.verify_pattern_file("/d1/dst", len, seed),
        None,
        "splice corrupted {len} bytes (bs={block_size}, flow={flow:?})"
    );
    let errors = k.fsck_all();
    assert!(errors.is_empty(), "{errors:?}");
}

proptest! {
    // Each case boots a whole kernel; keep the counts moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn splice_copies_arbitrary_sizes(len in 1u64..600_000, seed in any::<u64>()) {
        splice_copy_roundtrip(len, seed, FlowControl::default(), 8192);
    }

    #[test]
    fn splice_copies_under_arbitrary_flow_control(
        len in 1u64..300_000,
        lo_reads in 1u32..8,
        lo_writes in 1u32..8,
        batch in 1u32..10,
    ) {
        splice_copy_roundtrip(
            len,
            7,
            FlowControl { lo_reads, lo_writes, batch },
            8192,
        );
    }

    #[test]
    fn splice_copies_with_other_block_sizes(
        len in 1u64..300_000,
        bs_shift in 12u32..15, // 4 KB, 8 KB, 16 KB
    ) {
        splice_copy_roundtrip(len, 11, FlowControl::default(), 1 << bs_shift);
    }

    /// Failure-semantics contract under arbitrary seeded fault plans,
    /// across the endpoint matrix rows that touch a disk: every splice
    /// either completes byte-exact or returns the documented `EIO` with
    /// `bytes_moved <= requested` — and every block span in the trace is
    /// well-formed (no half-open read/write pairs left behind).
    #[test]
    fn faulty_splices_complete_or_fail_with_documented_errno(
        len_blocks in 1u64..32,
        plan_seed in any::<u64>(),
        read_permille in 0u32..100,
        write_permille in 0u32..50,
        dst_pick in 0usize..3,
    ) {
        let read_rate = f64::from(read_permille) / 1000.0;
        let write_rate = f64::from(write_permille) / 1000.0;
        let total = len_blocks * 8192;
        let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk())
            .audio_dac("/dev/speaker", AudioDac::new(2_000_000, 256 * 1024))
            .video_dac("/dev/video_dac", VideoDac::new(8192))
            .tune(|cfg| cfg.update_interval = None)
            .trace(1 << 18)
            .build();
        k.setup_file("/d0/src", total, 23);
        k.cold_cache();
        k.set_fault_plan(
            0,
            FaultPlan::new(plan_seed).transient_eio(FaultOp::Read, read_rate),
        );
        k.set_fault_plan(
            1,
            FaultPlan::new(plan_seed ^ 0x9e37).transient_eio(FaultOp::Write, write_rate),
        );

        let dst_spec = match dst_pick {
            0 => EndSpec::create("/d1/dst"),
            1 => EndSpec::write("/dev/speaker"),
            _ => EndSpec::write("/dev/video_dac"),
        };
        let (pair, result) = EndpointPair::new(
            EndSpec::read("/d0/src"),
            dst_spec,
            SpliceLen::Bytes(total),
        );
        let pid = k.spawn(Box::new(pair));
        let horizon = k.horizon(600);
        k.run_to_exit(horizon);

        prop_assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
        let got = result.borrow().clone().expect("splice returned");
        let out = k.splice_outcome(1).done().expect("outcome recorded");
        let q = k.trace().query();
        match got {
            SyscallRet::Val(n) => {
                prop_assert_eq!(n as u64, total, "short success is forbidden");
                prop_assert_eq!(out.bytes_moved, total);
                prop_assert_eq!(out.error, None);
                prop_assert_eq!(k.metrics().splice.aborted, 0);
                if dst_pick == 0 {
                    prop_assert_eq!(k.verify_pattern_file("/d1/dst", total, 23), None);
                }
                prop_assert!(q.block_spans(1).iter().all(|s| s.complete()));
            }
            SyscallRet::Err(e) => {
                prop_assert_eq!(e, Errno::Eio, "only the documented errno");
                prop_assert_eq!(out.error, Some(Errno::Eio));
                prop_assert!(out.bytes_moved <= total);
                prop_assert_eq!(k.metrics().splice.aborted, 1);
            }
            other => prop_assert!(false, "unexpected splice return {other:?}"),
        }
        // Either way: every observed span is well-ordered (an aborted
        // block may stop early, but never runs phases out of order) and
        // the filesystems survive structurally.
        prop_assert!(q.block_spans(1).iter().all(|s| s.ordered()));
        prop_assert!(k.fsck_all().is_empty());
    }

    #[test]
    fn cp_and_splice_produce_identical_files(len in 1u64..400_000, seed in any::<u64>()) {
        let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk()).build();
        k.setup_file("/d0/src", len, seed);
        k.cold_cache();
        k.spawn(Box::new(Cp::new("/d0/src", "/d1/via_cp")));
        k.spawn(Box::new(Scp::new("/d0/src", "/d1/via_scp")));
        let horizon = k.horizon(600);
        k.run_to_exit(horizon);
        let a = k.dump_file("/d1/via_cp");
        let b = k.dump_file("/d1/via_scp");
        prop_assert_eq!(a, b);
        prop_assert!(k.fsck_all().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Connection-scenario byte conservation: for arbitrary fleet sizes,
    /// file sizes, link loss rates, and receive-buffer limits, either
    /// every client completes byte-exact or the kernel's counters
    /// account the shortfall *exactly* — nothing leaks, nothing is
    /// double-counted. Every splice the server ran left complete,
    /// causally ordered block spans.
    #[test]
    fn lossy_connection_scenarios_account_every_byte(
        clients in 1usize..10,
        file_bytes in 1u64..40_000,
        loss_ppm in 0u32..200_000,
        rcv_limit in 2048usize..131_072,
        seed in any::<u64>(),
    ) {
        use std::rc::Rc;
        use knet::LinkModel;
        use kproc::SockAddr;
        use kproc::programs::{open_loop_delays, scenario_stats, ServeMode, ServerClient, SpliceServer};
        use ksim::Dur;

        let mut k = KernelBuilder::paper_machine_ram().trace(1 << 16).build();
        // The limit applies to sockets created after this point — i.e.
        // every socket of the scenario.
        k.net_mut().set_rcv_limit(rcv_limit);
        k.net_mut().set_link_model(
            1,
            LinkModel {
                bps: 125_000_000,
                base_latency: Dur::from_us(200),
                jitter: Dur::from_us(100),
                loss_ppm,
                seed,
            },
        );
        k.setup_file("/d0/file", file_bytes, seed);
        k.cold_cache();
        let stats = scenario_stats();
        let server = k.spawn(Box::new(SpliceServer::new(
            80,
            "/d0/file",
            file_bytes,
            clients,
            clients as u32,
            ServeMode::Splice,
            Rc::clone(&stats),
        )));
        for delay in open_loop_delays(clients, Dur::from_ms(20), seed) {
            k.spawn(Box::new(ServerClient::new(
                SockAddr { host: 1, port: 80 },
                file_bytes,
                seed,
                delay + Dur::from_ms(1),
                Rc::clone(&stats),
            )));
        }
        // Lost requests or dropped data leave clients (and the server's
        // accept loop) hung forever: run to quiescence at a fixed
        // horizon, not to exit.
        let horizon = k.horizon(30);
        k.run_until(horizon, |k| k.procs().all_exited());

        let s = stats.borrow();
        let st = k.net().stats();
        let total = clients as u64 * file_bytes;
        let queued = k.net().total_rcv_used() as u64;

        // Only the server moves payload bytes (requests are empty), and
        // every accepted connection it served went out in full.
        prop_assert_eq!(st.bytes_sent, s.served * file_bytes);
        // Wire conservation: sent = delivered + lost + dropped.
        prop_assert_eq!(st.sent, st.delivered + st.lost_link + st.dropped());
        prop_assert_eq!(
            st.bytes_sent,
            st.bytes_delivered
                + st.bytes_lost_link
                + st.bytes_dropped_rcv_full
                + st.bytes_dropped_no_listener
                + st.bytes_dropped_backlog
        );
        // Delivery conservation: delivered = read + still queued +
        // thrown away when a (mismatched) client's socket closed.
        prop_assert_eq!(
            st.bytes_delivered,
            s.bytes_received + queued + st.bytes_discarded_close
        );
        // The headline: byte-exact service, or an exact shortfall audit.
        prop_assert_eq!(
            total,
            s.bytes_received
                + (clients as u64 - s.served) * file_bytes
                + st.bytes_lost_link
                + st.bytes_dropped_rcv_full
                + st.bytes_dropped_no_listener
                + st.bytes_dropped_backlog
                + queued
                + st.bytes_discarded_close,
            "shortfall not accounted (loss_ppm={}, rcv_limit={})",
            loss_ppm,
            rcv_limit
        );

        // A lossless link with roomy client buffers must serve everyone.
        if loss_ppm == 0 && rcv_limit as u64 >= 65_536 {
            prop_assert!(k.procs().all_exited(), "clean run left hung processes");
            prop_assert!(matches!(k.procs().must(server).state, ProcState::Exited(0)));
            prop_assert_eq!(s.completed, clients as u64);
            prop_assert_eq!(s.mismatches, 0);
            prop_assert_eq!(s.bytes_received, total);
        }

        // The server serves strictly one splice per accepted conn, and
        // each left complete, causally ordered block spans.
        prop_assert_eq!(k.metrics().splice.started, s.served);
        let q = k.trace().query();
        for desc in 1..=s.served {
            let spans = q.block_spans(desc);
            prop_assert!(!spans.is_empty(), "desc {} left no spans", desc);
            for sp in spans {
                prop_assert!(sp.complete(), "desc {} incomplete span", desc);
                prop_assert!(sp.ordered(), "desc {} out-of-order span", desc);
            }
        }
    }
}

proptest! {
    // Each case boots a server fleet; keep the counts moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tail retention is lossless at *any* head-sampling rate: with an
    /// unmeetable SLO target every request is a violation, and every
    /// violation must have a committed span — whether or not the
    /// deterministic 1-in-N draw would have kept its connection. A
    /// sampler that let an errored or over-SLO request slip away
    /// unrecorded would defeat the point of tail-based sampling.
    #[test]
    fn error_and_over_slo_requests_always_commit_spans(
        period in 1u32..512,
        clients in 8usize..64,
        seed in any::<u64>(),
    ) {
        use std::rc::Rc;
        use knet::LinkModel;
        use kproc::SockAddr;
        use kproc::programs::{open_loop_delays, scenario_stats, ServeMode, ServerClient, SpliceServer};
        use ksim::{Dur, ObsConfig, SloConfig};

        let file_bytes = 8 * 1024u64;
        let cfg = ObsConfig {
            sample_period: period,
            slo: SloConfig {
                latency_target: Dur::from_us(1),
                ..SloConfig::default()
            },
            ..ObsConfig::on()
        };
        let mut k = KernelBuilder::paper_machine_ram().observe(cfg).build();
        k.net_mut().set_link_model(
            1,
            LinkModel {
                bps: 125_000_000,
                base_latency: Dur::from_us(200),
                jitter: Dur::from_us(100),
                loss_ppm: 0,
                seed,
            },
        );
        k.setup_file("/d0/file", file_bytes, seed);
        k.cold_cache();
        let stats = scenario_stats();
        let server = k.spawn(Box::new(SpliceServer::new(
            80,
            "/d0/file",
            file_bytes,
            clients,
            clients as u32,
            ServeMode::Splice,
            Rc::clone(&stats),
        )));
        for delay in open_loop_delays(clients, Dur::from_ms(20), seed) {
            k.spawn(Box::new(ServerClient::new(
                SockAddr { host: 1, port: 80 },
                file_bytes,
                seed,
                delay + Dur::from_ms(1),
                Rc::clone(&stats),
            )));
        }
        let horizon = k.horizon(600);
        k.run_to_exit(horizon);
        prop_assert!(matches!(k.procs().must(server).state, ProcState::Exited(0)));

        let c = k.obs().counters();
        prop_assert_eq!(c.requests, clients as u64);
        prop_assert_eq!(
            c.violations, c.requests,
            "a 1 µs target must make every request violate"
        );
        // The property: 100% of violating requests testify, at any rate.
        let tail_spans = k
            .obs()
            .committed_spans()
            .filter(|s| s.over_slo || s.error.is_some())
            .count() as u64;
        prop_assert_eq!(
            tail_spans, c.violations,
            "period={}: a violating request closed without a span", period
        );
        prop_assert_eq!(c.committed, c.head_sampled + c.tail_retained);
    }
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut k = KernelBuilder::paper_machine(DiskProfile::rz58()).build();
        k.setup_file("/d0/src", 2 * 1024 * 1024, 3);
        k.cold_cache();
        k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
        k.spawn(Box::new(Cp::new("/d0/src", "/d1/dst2")));
        let horizon = k.horizon(600);
        let end = k.run_to_exit(horizon);
        let ctx = k.metrics().sched.ctx_switches;
        (end.as_ns(), ctx)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical inputs must give identical simulations");
}
