//! Whole-kernel property tests: arbitrary file sizes and configurations
//! through the full splice path, with data integrity and filesystem
//! consistency as the properties — plus determinism of the simulation.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use khw::DiskProfile;
use kproc::programs::{Cp, Scp, ScpMode};
use kproc::ProcState;
use proptest::prelude::*;
use splice::{FlowControl, KernelBuilder};

fn splice_copy_roundtrip(len: u64, seed: u64, flow: FlowControl, block_size: u32) {
    let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk())
        .tune(|cfg| {
            cfg.flow = flow;
            cfg.block_size = block_size;
        })
        .build();
    k.setup_file("/d0/src", len, seed);
    k.cold_cache();
    let pid = k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(
        k.verify_pattern_file("/d1/dst", len, seed),
        None,
        "splice corrupted {len} bytes (bs={block_size}, flow={flow:?})"
    );
    let errors = k.fsck_all();
    assert!(errors.is_empty(), "{errors:?}");
}

proptest! {
    // Each case boots a whole kernel; keep the counts moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn splice_copies_arbitrary_sizes(len in 1u64..600_000, seed in any::<u64>()) {
        splice_copy_roundtrip(len, seed, FlowControl::default(), 8192);
    }

    #[test]
    fn splice_copies_under_arbitrary_flow_control(
        len in 1u64..300_000,
        lo_reads in 1u32..8,
        lo_writes in 1u32..8,
        batch in 1u32..10,
    ) {
        splice_copy_roundtrip(
            len,
            7,
            FlowControl { lo_reads, lo_writes, batch },
            8192,
        );
    }

    #[test]
    fn splice_copies_with_other_block_sizes(
        len in 1u64..300_000,
        bs_shift in 12u32..15, // 4 KB, 8 KB, 16 KB
    ) {
        splice_copy_roundtrip(len, 11, FlowControl::default(), 1 << bs_shift);
    }

    #[test]
    fn cp_and_splice_produce_identical_files(len in 1u64..400_000, seed in any::<u64>()) {
        let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk()).build();
        k.setup_file("/d0/src", len, seed);
        k.cold_cache();
        k.spawn(Box::new(Cp::new("/d0/src", "/d1/via_cp")));
        k.spawn(Box::new(Scp::new("/d0/src", "/d1/via_scp")));
        let horizon = k.horizon(600);
        k.run_to_exit(horizon);
        let a = k.dump_file("/d1/via_cp");
        let b = k.dump_file("/d1/via_scp");
        prop_assert_eq!(a, b);
        prop_assert!(k.fsck_all().is_empty());
    }
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut k = KernelBuilder::paper_machine(DiskProfile::rz58()).build();
        k.setup_file("/d0/src", 2 * 1024 * 1024, 3);
        k.cold_cache();
        k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
        k.spawn(Box::new(Cp::new("/d0/src", "/d1/dst2")));
        let horizon = k.horizon(600);
        let end = k.run_to_exit(horizon);
        let ctx = k.metrics().sched.ctx_switches;
        (end.as_ns(), ctx)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical inputs must give identical simulations");
}
