//! Splice-ring suite: the batched submission/completion API end to end —
//! depth-1 equivalence with the legacy sync path, bounded-SQ
//! backpressure (`EAGAIN`), completion-order reaping with causally
//! ordered block spans, fault-plan interaction (aborted entries latch
//! their errno in the CQE), and seeded determinism.

use std::cell::RefCell;
use std::rc::Rc;

use khw::{FaultOp, FaultPlan, SECTOR_SIZE};
use kproc::programs::RingScp;
use kproc::{
    Errno, Fd, OpenFlags, ProcState, Program, SpliceCqe, SpliceReq, Step, SyscallReq, SyscallRet,
    UserCtx,
};
use splice::{Kernel, KernelBuilder};

const BLK: u64 = 8192;

/// First device sector of logical block `lblk` of a file (fs-local path).
fn sector_of(k: &Kernel, disk: usize, path: &str, lblk: u64) -> u64 {
    let ino = k.disks()[disk].fs.lookup(path).expect("file exists");
    let pblk = k.disks()[disk].fs.bmap(ino, lblk).expect("mapped block");
    pblk * (BLK / SECTOR_SIZE as u64)
}

/// Everything the driver observed, for assertions after exit.
#[derive(Default)]
struct RingLog {
    /// Raw return of every `ring_submit` crossing, in order.
    submits: Vec<SyscallRet>,
    /// Every CQE reaped, in the order the kernel handed them over.
    cqes: Vec<SpliceCqe>,
}

type LogCell = Rc<RefCell<RingLog>>;

#[derive(Clone, Copy)]
enum St {
    Start,
    OpenSrc(usize),
    OpenDst(usize),
    Create,
    Submit,
    Probe,
    Reap,
    Done,
}

/// Scripted ring user: opens all pairs, creates one ring, submits every
/// pair in as few crossings as the SQ allows (`user_data` = pair index),
/// and reaps until all complete — recording raw returns and CQEs. With
/// `probe_full` it re-submits the leftovers while the SQ is known full,
/// to capture the backpressure errno.
struct RingDriver {
    pairs: Vec<(String, String)>,
    depth: u32,
    probe_full: bool,
    st: St,
    ring: u64,
    src_fds: Vec<Fd>,
    dst_fds: Vec<Fd>,
    submitted: usize,
    outstanding: u32,
    log: LogCell,
}

impl RingDriver {
    fn new(pairs: &[(&str, &str)], depth: u32, probe_full: bool) -> (RingDriver, LogCell) {
        let log: LogCell = Rc::new(RefCell::new(RingLog::default()));
        (
            RingDriver {
                pairs: pairs
                    .iter()
                    .map(|(s, d)| (s.to_string(), d.to_string()))
                    .collect(),
                depth,
                probe_full,
                st: St::Start,
                ring: 0,
                src_fds: Vec::new(),
                dst_fds: Vec::new(),
                submitted: 0,
                outstanding: 0,
                log: log.clone(),
            },
            log,
        )
    }

    fn open(&self, src: bool, i: usize) -> Step {
        let (path, flags) = if src {
            (&self.pairs[i].0, OpenFlags::RDONLY)
        } else {
            (&self.pairs[i].1, OpenFlags::CREATE)
        };
        Step::Syscall(SyscallReq::Open {
            path: path.clone(),
            flags,
        })
    }

    /// One crossing carrying every not-yet-accepted pair.
    fn submit_rest(&self) -> Step {
        let sqes = (self.submitted..self.pairs.len())
            .map(|i| SpliceReq::new(self.src_fds[i], self.dst_fds[i]).sqe(i as u64))
            .collect();
        Step::Syscall(SyscallReq::RingSubmit {
            ring: self.ring,
            sqes,
        })
    }
}

impl Program for RingDriver {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            St::Start => {
                self.st = St::OpenSrc(0);
                self.open(true, 0)
            }
            St::OpenSrc(i) => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.src_fds.push(fd),
                    _ => return Step::Exit(2),
                }
                self.st = St::OpenDst(i);
                self.open(false, i)
            }
            St::OpenDst(i) => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.dst_fds.push(fd),
                    _ => return Step::Exit(2),
                }
                if i + 1 < self.pairs.len() {
                    self.st = St::OpenSrc(i + 1);
                    return self.open(true, i + 1);
                }
                self.st = St::Create;
                Step::Syscall(SyscallReq::RingCreate {
                    depth: self.depth,
                    sigio: false,
                })
            }
            St::Create => {
                match ctx.take_ret() {
                    SyscallRet::Val(id) if id > 0 => self.ring = id as u64,
                    _ => return Step::Exit(2),
                }
                self.st = St::Submit;
                self.submit_rest()
            }
            St::Submit => {
                let ret = ctx.take_ret();
                if let SyscallRet::Val(a) = ret {
                    self.submitted += a as usize;
                    self.outstanding = a as u32;
                }
                self.log.borrow_mut().submits.push(ret);
                if self.probe_full && self.submitted < self.pairs.len() {
                    // The SQ is full right now: this crossing must bounce.
                    self.st = St::Probe;
                    return self.submit_rest();
                }
                self.st = St::Reap;
                Step::Syscall(SyscallReq::RingReap {
                    ring: self.ring,
                    min: self.outstanding,
                })
            }
            St::Probe => {
                let ret = ctx.take_ret();
                self.log.borrow_mut().submits.push(ret);
                self.st = St::Reap;
                Step::Syscall(SyscallReq::RingReap {
                    ring: self.ring,
                    min: self.outstanding,
                })
            }
            St::Reap => {
                match ctx.take_ret() {
                    SyscallRet::Cqes(cqes) => self.log.borrow_mut().cqes.extend(cqes),
                    _ => return Step::Exit(3),
                }
                if self.submitted < self.pairs.len() {
                    self.st = St::Submit;
                    return self.submit_rest();
                }
                self.st = St::Done;
                Step::Exit(0)
            }
            St::Done => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "ring_driver"
    }
}

/// A depth-1 ring performs the same copies, byte-exact, as the legacy
/// one-at-a-time `splice(2)` path over the identical seeded file set.
#[test]
fn depth1_ring_matches_legacy_sync_byte_exact() {
    let run = |depth: u32| {
        let n = 16usize;
        let len = 4 * BLK;
        let mut k = KernelBuilder::paper_machine_ram().build();
        for i in 0..n {
            k.setup_file(&format!("/d0/f{i}"), len, 0x51ce ^ i as u64);
        }
        k.cold_cache();
        let pid = k.spawn(Box::new(RingScp::new("/d0/f", "/d1/c", n, depth)));
        let horizon = k.horizon(600);
        k.run_to_exit(horizon);
        assert!(
            matches!(k.procs().must(pid).state, ProcState::Exited(0)),
            "depth {depth}: copier failed"
        );
        for i in 0..n {
            assert_eq!(
                k.verify_pattern_file(&format!("/d1/c{i}"), len, 0x51ce ^ i as u64),
                None,
                "depth {depth}: copy {i} corrupt"
            );
        }
        k.metrics().splice.completed
    };
    // Same number of completed splices, and both runs byte-exact.
    assert_eq!(run(1), run(0));
}

/// A bounded SQ accepts what fits (partial count), bounces a submission
/// to a full ring with `EAGAIN`, and accepts the leftovers after a reap
/// frees entries.
#[test]
fn sq_full_backpressure_partial_accept_then_eagain() {
    let len = 4 * BLK;
    let mut k = KernelBuilder::paper_machine_ram().build();
    for i in 0..3 {
        k.setup_file(&format!("/d0/f{i}"), len, 10 + i);
    }
    k.cold_cache();
    let (driver, log) = RingDriver::new(
        &[
            ("/d0/f0", "/d1/c0"),
            ("/d0/f1", "/d1/c1"),
            ("/d0/f2", "/d1/c2"),
        ],
        2,
        true,
    );
    let pid = k.spawn(Box::new(driver));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    let log = log.borrow();
    assert_eq!(
        log.submits,
        vec![
            SyscallRet::Val(2),
            SyscallRet::Err(Errno::Eagain),
            SyscallRet::Val(1),
        ],
        "expected partial accept, EAGAIN while full, then the leftover"
    );
    assert_eq!(log.cqes.len(), 3);
    assert!(log.cqes.iter().all(|c| c.outcome.error.is_none()));
    for i in 0..3u64 {
        assert_eq!(
            k.verify_pattern_file(&format!("/d1/c{i}"), len, 10 + i),
            None
        );
    }
}

/// CQEs come back in completion order, not submission order: a small
/// transfer submitted second overtakes a large one submitted first. The
/// per-block trace spans of both stay causally ordered.
#[test]
fn reap_order_is_completion_order_with_ordered_spans() {
    let mut k = KernelBuilder::paper_machine_ram().trace(100_000).build();
    k.setup_file("/d0/big", 16 * BLK, 21);
    k.setup_file("/d0/small", BLK, 22);
    k.cold_cache();
    let (driver, log) = RingDriver::new(
        &[("/d0/big", "/d1/big"), ("/d0/small", "/d1/small")],
        8,
        false,
    );
    let pid = k.spawn(Box::new(driver));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    let log = log.borrow();
    let order: Vec<u64> = log.cqes.iter().map(|c| c.user_data).collect();
    assert_eq!(
        order,
        vec![1, 0],
        "the 1-block splice must complete (and reap) before the 16-block one"
    );
    assert_eq!(log.cqes[0].outcome.bytes_moved, BLK);
    assert_eq!(log.cqes[1].outcome.bytes_moved, 16 * BLK);

    // One submit crossing carried both SQEs; one reap drained both CQEs.
    let q = k.trace().query();
    assert_eq!(q.named("ring.submit").len(), 1);
    assert_eq!(q.named("ring.reap").len(), 1);
    // Out-of-order reaping never reorders the data path itself: every
    // block span of both descriptors is complete and causally ordered.
    for desc in [1, 2] {
        let spans = q.block_spans(desc);
        assert!(!spans.is_empty(), "desc {desc} left no spans");
        for s in spans {
            assert!(s.complete(), "desc {desc} incomplete span");
            assert!(s.ordered(), "desc {desc} out-of-order span");
        }
    }
}

/// A permanent device fault aborts only the entry it hits: that CQE
/// latches the typed errno and the exact partial byte count, while the
/// other entries in the same batch complete untouched.
#[test]
fn aborted_entry_latches_errno_in_cqe() {
    let nblocks = 16u64;
    let len = nblocks * BLK;
    let mut k = KernelBuilder::paper_machine_ram()
        .tune(|cfg| cfg.update_interval = None)
        .build();
    for i in 0..3 {
        k.setup_file(&format!("/d0/g{i}"), len, 30 + i);
    }
    k.cold_cache();
    let sector = sector_of(&k, 0, "/g1", 4);
    k.set_fault_plan(0, FaultPlan::new(1).bad_block(FaultOp::Read, sector));

    let (driver, log) = RingDriver::new(
        &[
            ("/d0/g0", "/d1/h0"),
            ("/d0/g1", "/d1/h1"),
            ("/d0/g2", "/d1/h2"),
        ],
        8,
        false,
    );
    let pid = k.spawn(Box::new(driver));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);

    // The driver itself exits cleanly: errors surface in CQEs, not as
    // syscall failures on the batch.
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    let log = log.borrow();
    assert_eq!(log.cqes.len(), 3);
    let by_ud = |ud: u64| log.cqes.iter().find(|c| c.user_data == ud).unwrap();
    assert_eq!(by_ud(1).outcome.error, Some(Errno::Eio));
    assert_eq!(
        by_ud(1).outcome.bytes_moved,
        (nblocks - 1) * BLK,
        "every block but the bad one drains before the abort"
    );
    for ud in [0, 2] {
        assert_eq!(by_ud(ud).outcome.error, None);
        assert_eq!(by_ud(ud).outcome.bytes_moved, len);
    }
    assert_eq!(k.metrics().splice.aborted, 1);
    assert_eq!(
        k.verify_pattern_file("/d1/h0", len, 30),
        None,
        "sibling entry corrupt"
    );
    assert_eq!(k.verify_pattern_file("/d1/h2", len, 32), None);
}

/// Ring runs replay identically for a given fault seed, and transient
/// faults recover byte-exact through the ring path for *any* seed
/// (`FAULT_SEED` is randomized by `scripts/ci.sh`).
#[test]
fn ring_runs_are_deterministic_under_fault_seed() {
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15C);
    let n = 8usize;
    let len = 8 * BLK;
    let run = || {
        let mut k = KernelBuilder::paper_machine_ram()
            .tune(|cfg| cfg.update_interval = None)
            .build();
        for i in 0..n {
            k.setup_file(&format!("/d0/f{i}"), len, 40 + i as u64);
        }
        k.cold_cache();
        k.set_fault_plan(0, FaultPlan::new(seed).transient_eio(FaultOp::Read, 0.02));
        let pid = k.spawn(Box::new(RingScp::new("/d0/f", "/d1/c", n, 4)));
        let horizon = k.horizon(600);
        let end = k.run_to_exit(horizon);
        assert!(
            matches!(k.procs().must(pid).state, ProcState::Exited(0)),
            "FAULT_SEED={seed}: ring copy failed"
        );
        for i in 0..n {
            assert_eq!(
                k.verify_pattern_file(&format!("/d1/c{i}"), len, 40 + i as u64),
                None,
                "FAULT_SEED={seed}: copy {i} corrupt"
            );
        }
        let m = k.metrics();
        assert_eq!(
            m.splice.aborted, 0,
            "FAULT_SEED={seed}: transient faults must never abort"
        );
        (
            end.as_ns(),
            m.io.errors,
            m.splice.retries,
            m.splice.completed,
        )
    };
    assert_eq!(run(), run(), "FAULT_SEED={seed}: replay diverged");
}
