//! Cross-crate integration: the observability layer.
//!
//! A full splice run must leave a well-formed [`splice::MetricsSnapshot`]
//! behind — span lifecycle timestamps in order, flow-control gauges
//! within the configured watermarks, cumulative counters consistent at
//! every sampled instant — and the hand-rolled JSON emitter must
//! round-trip the snapshot through its own parser.

use kproc::programs::{Cp, Scp};
use kproc::ProcState;
use ksim::Json;
use splice::{Kernel, KernelBuilder, KernelConfig};

const MB: u64 = 1024 * 1024;

fn spliced_kernel() -> Kernel {
    let mut k = KernelBuilder::paper_machine_ram().build();
    k.setup_file("/d0/src", 2 * MB, 5);
    k.cold_cache();
    let pid = k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    k
}

#[test]
fn splice_span_lifecycle_is_monotonic() {
    let k = spliced_kernel();
    let m = k.metrics();
    assert_eq!(m.splice.started, 1);
    assert_eq!(m.splice.completed, 1);
    assert_eq!(m.splice.spans.len(), 1);

    let span = &m.splice[1];
    let created = span.created.expect("created");
    let first_read = span.first_read.expect("first_read");
    let first_write = span.first_write.expect("first_write");
    let drained = span.drained.expect("drained");
    let completed = span.completed.expect("completed");
    assert!(created <= first_read, "created after first read");
    assert!(first_read <= first_write, "read side must lead the writes");
    assert!(first_write <= drained, "drained before any write");
    assert!(drained <= completed, "completion delivered before drain");

    assert_eq!(span.bytes_moved, 2 * MB);
    assert_eq!(span.blocks_done, span.writes_issued);
    assert!(span.samples_truncated || !span.samples.is_empty());
}

#[test]
fn flow_gauges_respect_the_configured_watermarks() {
    let flow = KernelConfig::default().flow;
    let k = spliced_kernel();
    let span = &k.kstat().spans[1];

    // The read side never exceeds one refill batch in flight; the write
    // side is bounded by the drain watermark plus one batch arriving.
    assert!(span.max_pending_reads <= flow.batch, "reads over watermark");
    assert!(
        span.max_pending_writes <= flow.lo_writes + flow.batch,
        "writes over watermark"
    );

    let mut last_at = None;
    for s in &span.samples {
        // Sampled time series is in event order.
        if let Some(prev) = last_at {
            assert!(s.at >= prev, "samples out of order");
        }
        last_at = Some(s.at);
        // A write is only issued once its block's read has finished, so
        // cumulatively reads always lead writes.
        assert!(
            s.reads_started() >= s.writes_issued,
            "writes ahead of reads at {:?}",
            s.at
        );
        assert!(s.pending_reads <= flow.batch);
        assert!(s.pending_writes <= flow.lo_writes + flow.batch);
    }
}

#[test]
fn cp_runs_leave_no_spans_but_count_copies() {
    let mut k = KernelBuilder::paper_machine_ram().build();
    k.setup_file("/d0/src", MB, 9);
    k.cold_cache();
    let pid = k.spawn(Box::new(Cp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    let m = k.metrics();
    assert!(m.splice.spans.is_empty(), "cp must not open splice spans");
    assert_eq!(m.copy.copyin_bytes, MB);
    assert_eq!(m.copy.copyout_bytes, MB);
}

#[test]
fn snapshot_json_round_trips() {
    let k = spliced_kernel();
    let doc = k.metrics().to_json();

    let compact = Json::parse(&doc.render()).expect("compact form parses");
    assert_eq!(compact, doc);
    let pretty = Json::parse(&doc.render_pretty()).expect("pretty form parses");
    assert_eq!(pretty, doc);

    // Spot-check the schema the BENCH_*.json artifacts rely on.
    let splice_obj = doc.get("splice").expect("splice section");
    let spans = splice_obj
        .get("spans")
        .and_then(Json::as_arr)
        .expect("spans array");
    assert_eq!(spans.len(), 1);
    assert_eq!(
        spans[0].get("bytes_moved").and_then(Json::as_u64),
        Some(2 * MB)
    );
    assert_eq!(
        doc.get("copy")
            .and_then(|c| c.get("copyout_bytes"))
            .and_then(Json::as_u64),
        Some(0)
    );
}
