//! Cross-crate integration: the observability layer.
//!
//! A full splice run must leave a well-formed [`splice::MetricsSnapshot`]
//! behind — span lifecycle timestamps in order, flow-control gauges
//! within the configured watermarks, cumulative counters consistent at
//! every sampled instant — and the hand-rolled JSON emitter must
//! round-trip the snapshot through its own parser. The typed trace ring
//! must tell the same story event by event: every block walks the
//! read-issue → biodone → write → done pipeline in order, completions
//! fire exactly once, cold caches miss before they hit, and rejections
//! surface as typed events.

use std::collections::HashMap;

use kdev::Framebuffer;
use kproc::programs::{Cp, EndSpec, EndpointPair, Scp};
use kproc::{Errno, ProcState, SpliceLen, SyscallRet};
use ksim::Json;
use splice::{Kernel, KernelBuilder, KernelConfig, TraceEvent};

const MB: u64 = 1024 * 1024;

fn spliced_kernel() -> Kernel {
    spliced_kernel_inner(KernelBuilder::paper_machine_ram())
}

/// [`spliced_kernel`] with the typed trace ring installed.
fn traced_kernel() -> Kernel {
    spliced_kernel_inner(KernelBuilder::paper_machine_ram().trace(1 << 20))
}

fn spliced_kernel_inner(b: KernelBuilder) -> Kernel {
    let mut k = b.build();
    k.setup_file("/d0/src", 2 * MB, 5);
    k.cold_cache();
    let pid = k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    k
}

#[test]
fn splice_span_lifecycle_is_monotonic() {
    let k = spliced_kernel();
    let m = k.metrics();
    assert_eq!(m.splice.started, 1);
    assert_eq!(m.splice.completed, 1);
    assert_eq!(m.splice.spans.len(), 1);

    let span = &m.splice[1];
    let created = span.created.expect("created");
    let first_read = span.first_read.expect("first_read");
    let first_write = span.first_write.expect("first_write");
    let drained = span.drained.expect("drained");
    let completed = span.completed.expect("completed");
    assert!(created <= first_read, "created after first read");
    assert!(first_read <= first_write, "read side must lead the writes");
    assert!(first_write <= drained, "drained before any write");
    assert!(drained <= completed, "completion delivered before drain");

    assert_eq!(span.bytes_moved, 2 * MB);
    assert_eq!(span.blocks_done, span.writes_issued);
    assert!(span.samples_truncated || !span.samples.is_empty());
}

#[test]
fn flow_gauges_respect_the_configured_watermarks() {
    let flow = KernelConfig::default().flow;
    let k = spliced_kernel();
    let span = &k.kstat().spans[1];

    // The read side never exceeds one refill batch in flight; the write
    // side is bounded by the drain watermark plus one batch arriving.
    assert!(span.max_pending_reads <= flow.batch, "reads over watermark");
    assert!(
        span.max_pending_writes <= flow.lo_writes + flow.batch,
        "writes over watermark"
    );

    let mut last_at = None;
    for s in &span.samples {
        // Sampled time series is in event order.
        if let Some(prev) = last_at {
            assert!(s.at >= prev, "samples out of order");
        }
        last_at = Some(s.at);
        // A write is only issued once its block's read has finished, so
        // cumulatively reads always lead writes.
        assert!(
            s.reads_started() >= s.writes_issued,
            "writes ahead of reads at {:?}",
            s.at
        );
        assert!(s.pending_reads <= flow.batch);
        assert!(s.pending_writes <= flow.lo_writes + flow.batch);
    }
}

#[test]
fn cp_runs_leave_no_spans_but_count_copies() {
    let mut k = KernelBuilder::paper_machine_ram().build();
    k.setup_file("/d0/src", MB, 9);
    k.cold_cache();
    let pid = k.spawn(Box::new(Cp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    let m = k.metrics();
    assert!(m.splice.spans.is_empty(), "cp must not open splice spans");
    assert_eq!(m.copy.copyin_bytes, MB);
    assert_eq!(m.copy.copyout_bytes, MB);
}

#[test]
fn snapshot_json_round_trips() {
    let k = spliced_kernel();
    let doc = k.metrics().to_json();

    let compact = Json::parse(&doc.render()).expect("compact form parses");
    assert_eq!(compact, doc);
    let pretty = Json::parse(&doc.render_pretty()).expect("pretty form parses");
    assert_eq!(pretty, doc);

    // Spot-check the schema the BENCH_*.json artifacts rely on.
    let splice_obj = doc.get("splice").expect("splice section");
    let spans = splice_obj
        .get("spans")
        .and_then(Json::as_arr)
        .expect("spans array");
    assert_eq!(spans.len(), 1);
    assert_eq!(
        spans[0].get("bytes_moved").and_then(Json::as_u64),
        Some(2 * MB)
    );
    assert_eq!(
        doc.get("copy")
            .and_then(|c| c.get("copyout_bytes"))
            .and_then(Json::as_u64),
        Some(0)
    );
}

// ---------------------------------------------------------------------------
// Request observability (spans, sampling, SLO counters)
// ---------------------------------------------------------------------------

#[test]
fn trace_wrap_is_counted_in_the_obs_section() {
    // A ring far smaller than the event stream must wrap — and the loss
    // must be *visible*: `trace.dropped` in the snapshot, with
    // `emitted = dropped + retained` exactly.
    let k = spliced_kernel_inner(KernelBuilder::paper_machine_ram().trace(64));
    let m = k.metrics();
    assert!(
        m.obs.trace_dropped > 0,
        "64-record ring cannot hold a 2 MB splice"
    );
    assert_eq!(
        m.obs.trace_emitted,
        m.obs.trace_dropped + k.trace().len() as u64
    );

    let doc = m.to_json();
    let obs = doc.get("obs").expect("obs section");
    assert_eq!(
        obs.get("trace.dropped").and_then(Json::as_u64),
        Some(m.obs.trace_dropped)
    );
    assert_eq!(obs.get("sampler.dropped").and_then(Json::as_u64), Some(0));
}

#[test]
fn served_requests_populate_spans_slo_counters_and_exemplars() {
    use kproc::programs::{
        open_loop_delays, scenario_stats, ServeMode, ServerClient, SpliceServer,
    };
    use kproc::SockAddr;
    use ksim::Dur;
    use std::rc::Rc;

    let conns = 96usize;
    let file_bytes = 8 * 1024u64;
    let mut k = KernelBuilder::paper_machine_ram().trace(1 << 16).build();
    k.net_mut().set_link_model(
        1,
        knet::LinkModel {
            bps: 125_000_000,
            base_latency: Dur::from_us(200),
            jitter: Dur::from_us(100),
            loss_ppm: 0,
            seed: 13,
        },
    );
    k.setup_file("/d0/file", file_bytes, 13);
    k.cold_cache();
    let stats = scenario_stats();
    k.spawn(Box::new(SpliceServer::new(
        80,
        "/d0/file",
        file_bytes,
        conns,
        conns as u32,
        ServeMode::Splice,
        Rc::clone(&stats),
    )));
    for delay in open_loop_delays(conns, Dur::from_ms(20), 13) {
        k.spawn(Box::new(ServerClient::new(
            SockAddr { host: 1, port: 80 },
            file_bytes,
            13,
            delay + Dur::from_ms(1),
            Rc::clone(&stats),
        )));
    }
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert_eq!(stats.borrow().completed, conns as u64);

    // The resident pipeline observed every served request without any
    // builder opt-in, and the counters are internally consistent.
    let m = k.metrics();
    assert_eq!(m.obs.requests, conns as u64);
    assert_eq!(
        m.obs.spans_committed,
        m.obs.spans_head_sampled + m.obs.spans_tail_retained
    );
    assert_eq!(k.obs().latency().count(), conns as u64);
    assert_eq!(k.obs().staged_len(), 0, "all scratch resolved at close");
    assert_eq!(m.obs.alerts, 0, "a generous SLO must not page");

    // The p999 bucket carries an exemplar linking back into the trace:
    // its trace_seq is a real emitted sequence number, and its conn is
    // one of the committed or observed request sockets.
    let (conn, seq) = m.obs.p999_exemplar.expect("requests leave an exemplar");
    assert!(seq < m.obs.trace_emitted, "exemplar seq beyond the stream");
    let ex = k.obs().latency().exemplar_at(0.999).unwrap();
    assert_eq!((ex.conn, ex.trace_seq), (conn, seq));
}

// ---------------------------------------------------------------------------
// Typed trace ring
// ---------------------------------------------------------------------------

#[test]
fn every_block_walks_the_pipeline_in_trace_order() {
    let k = traced_kernel();
    let q = k.trace().query();

    // The global firsts are ordered: a splice starts, issues its first
    // read, sees the biodone, schedules the callout write, finishes it,
    // and only then completes.
    q.assert_ordered(&[
        "splice.start",
        "splice.read_issue",
        "splice.read_done",
        "splice.write_issue",
        "splice.write_done",
        "splice.complete",
    ]);

    // Per block: 2 MB over 8 KB blocks is 256 spans, and each one holds
    // read_issue < read_done (biodone) < write_issue (callout) <
    // write_done in event order.
    let spans = q.all_block_spans();
    assert_eq!(spans.len(), 256, "one span per logical block");
    for s in &spans {
        assert!(s.complete(), "lblk {} is missing a phase", s.lblk);
        assert!(s.ordered(), "lblk {} ran out of order", s.lblk);
    }
    // Spot-check the single-span lookup agrees with the bulk stitcher.
    let desc = spans[0].desc;
    let one = q.span_of(desc, 17).expect("lblk 17 has a span");
    assert!(one.complete() && one.ordered());
}

#[test]
fn splice_complete_fires_exactly_once_per_descriptor() {
    let k = traced_kernel();
    let q = k.trace().query();

    let mut started: HashMap<u64, usize> = HashMap::new();
    let mut completed: HashMap<u64, usize> = HashMap::new();
    for r in k.trace().records() {
        match r.ev {
            TraceEvent::SpliceStart { desc, .. } => *started.entry(desc).or_default() += 1,
            TraceEvent::SpliceComplete { desc } => *completed.entry(desc).or_default() += 1,
            _ => {}
        }
    }
    assert!(!started.is_empty(), "no splice started");
    for (desc, n) in &started {
        assert_eq!(*n, 1, "descriptor {desc} started more than once");
        assert_eq!(
            completed.get(desc),
            Some(&1),
            "descriptor {desc} must complete exactly once"
        );
    }
    assert_eq!(started.len(), completed.len(), "stray completions");
    // Redundant with the maps, but pins the single-splice scenario.
    assert_eq!(q.named("splice.complete").len(), 1);
}

#[test]
fn cold_file_never_hits_before_its_first_miss() {
    // First pass cold (all misses on the source), second pass warm
    // (hits). The invariant: per (dev, blkno), the first cache event is
    // a miss — a hit before any miss would mean the "cold" cache wasn't.
    let mut k = traced_kernel();
    let pid = k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst2")));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));

    let mut first_miss: HashMap<(u32, u64), u64> = HashMap::new();
    let mut first_hit: HashMap<(u32, u64), u64> = HashMap::new();
    for r in k.trace().records() {
        match r.ev {
            TraceEvent::CacheMiss { dev, blkno } => {
                first_miss.entry((dev, blkno)).or_insert(r.seq);
            }
            TraceEvent::CacheHit { dev, blkno } => {
                first_hit.entry((dev, blkno)).or_insert(r.seq);
            }
            _ => {}
        }
    }
    assert!(!first_miss.is_empty(), "cold run produced no misses");
    assert!(!first_hit.is_empty(), "warm rerun produced no hits");
    for (key, hit_seq) in &first_hit {
        let miss_seq = first_miss
            .get(key)
            .unwrap_or_else(|| panic!("block {key:?} hit without ever missing"));
        assert!(
            miss_seq < hit_seq,
            "block {key:?}: hit #{hit_seq} precedes first miss #{miss_seq}"
        );
    }
}

#[test]
fn disabled_trace_records_nothing() {
    // Without the builder opt-in every tracepoint is one branch: the
    // ring stays empty — no records, no formatting, no allocation.
    let k = spliced_kernel();
    assert!(!k.trace().enabled());
    assert!(k.trace().is_empty(), "disabled trace must record nothing");
    assert_eq!(k.trace().query().all_block_spans().len(), 0);
}

#[test]
fn rejected_splice_emits_a_typed_reject_event() {
    // A framebuffer cannot be a splice sink; the rejection must flow
    // through the funnel and surface as a typed event with the errno.
    let mut k = KernelBuilder::paper_machine_ram()
        .framebuffer("/dev/fb", Framebuffer::new(1 << 20, 30))
        .trace(1 << 16)
        .build();
    k.setup_file("/d0/src", MB, 7);
    k.cold_cache();
    let (pair, result) = EndpointPair::new(
        EndSpec::read("/d0/src"),
        EndSpec::write("/dev/fb"),
        SpliceLen::Bytes(MB),
    );
    let pid = k.spawn(Box::new(pair));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(
        result.borrow().clone(),
        Some(SyscallRet::Err(Errno::Enotsup))
    );

    let q = k.trace().query();
    let rejects = q.events_of(|e| matches!(e, TraceEvent::SpliceReject { .. }));
    assert_eq!(rejects.len(), 1, "exactly one typed rejection");
    match rejects[0].ev {
        TraceEvent::SpliceReject { errno } => assert_eq!(errno, "ENOTSUP"),
        _ => unreachable!(),
    }
    // The engine never started, so no splice lifecycle events exist.
    assert!(q.named("splice.start").is_empty());
    assert_eq!(k.metrics().splice.rejected, 1);
}
