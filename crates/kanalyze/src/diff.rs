//! Cross-run bench regression gating: compare two bench JSON documents
//! metric-by-metric under per-metric tolerance rules.
//!
//! Both documents are flattened into dotted metric paths
//! (`rows[3].kb_per_s`) and compared pairwise:
//!
//! - **schema**: both documents must carry the same `schema_version`,
//!   or the comparison refuses outright — a structural change must
//!   regenerate baselines, not sneak past a value diff.
//! - **integers** (numbers with no fractional part on both sides)
//!   must match exactly — the simulator is deterministic, so a changed
//!   count is a changed behavior.
//! - **floats** must agree within a relative tolerance (default 2%).
//! - **informational paths** (substring match, e.g. host wall-clock
//!   throughput in the simspeed table) are reported but never fail.
//! - **missing or extra paths** fail: a metric that disappears is as
//!   suspicious as one that drifts.

use ksim::Json;

/// Comparison policy for [`compare`].
#[derive(Clone, Debug)]
pub struct DiffRules {
    /// Relative tolerance for non-integral numbers.
    pub float_rel: f64,
    /// Path substrings whose drift is reported but never fatal (host
    /// wall-clock metrics that legitimately vary run-to-run).
    pub informational: Vec<String>,
}

impl Default for DiffRules {
    fn default() -> Self {
        DiffRules {
            float_rel: 0.02,
            informational: Vec::new(),
        }
    }
}

impl DiffRules {
    fn is_informational(&self, path: &str) -> bool {
        self.informational.iter().any(|p| path.contains(p))
    }
}

/// How one metric path compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Within tolerance (or exactly equal).
    Ok,
    /// Outside tolerance — fails the gate.
    Drift,
    /// Outside tolerance on an informational path — reported only.
    Info,
    /// Present in the baseline, absent in the current document.
    Missing,
    /// Absent in the baseline, present in the current document.
    Extra,
}

/// One compared metric path.
#[derive(Clone, Debug)]
pub struct DeltaRow {
    /// Dotted path of the metric within the document.
    pub path: String,
    /// Baseline value rendered as JSON (`∅` when absent).
    pub base: String,
    /// Current value rendered as JSON (`∅` when absent).
    pub cur: String,
    /// Relative delta for numeric pairs, when defined.
    pub delta: Option<f64>,
    /// The verdict for this path.
    pub status: DeltaStatus,
}

/// Outcome of one document comparison.
#[derive(Clone, Debug)]
pub struct DiffResult {
    /// Every compared path, in path order (all statuses).
    pub rows: Vec<DeltaRow>,
    /// Human-readable failure reasons (offending metric + delta), in
    /// path order; empty iff the gate passes.
    pub failures: Vec<String>,
}

impl DiffResult {
    /// True when no path failed.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

fn flatten<'a>(prefix: &str, v: &'a Json, out: &mut Vec<(String, &'a Json)>) {
    match v {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&p, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), v, out);
            }
        }
        leaf => out.push((prefix.to_string(), leaf)),
    }
}

fn render(v: Option<&Json>) -> String {
    v.map_or_else(|| "∅".into(), Json::render)
}

/// Compares `current` against `baseline` under `rules`.
///
/// Returns an error string (no row-by-row result) when either document
/// lacks `schema_version` or the versions differ — the caller must
/// regenerate baselines rather than diff across schemas.
pub fn compare(baseline: &Json, current: &Json, rules: &DiffRules) -> Result<DiffResult, String> {
    let ver = |doc: &Json, which: &str| {
        doc.get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{which} document has no schema_version"))
    };
    let (bv, cv) = (ver(baseline, "baseline")?, ver(current, "current")?);
    if bv != cv {
        return Err(format!(
            "schema_version mismatch: baseline v{bv}, current v{cv} — regenerate baselines"
        ));
    }
    let mut base = Vec::new();
    let mut cur = Vec::new();
    flatten("", baseline, &mut base);
    flatten("", current, &mut cur);
    let cur_map: std::collections::BTreeMap<&str, &Json> =
        cur.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let base_map: std::collections::BTreeMap<&str, &Json> =
        base.iter().map(|(p, v)| (p.as_str(), *v)).collect();

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (path, bval) in &base {
        match cur_map.get(path.as_str()) {
            None => {
                rows.push(DeltaRow {
                    path: path.clone(),
                    base: render(Some(bval)),
                    cur: render(None),
                    delta: None,
                    status: DeltaStatus::Missing,
                });
                failures.push(format!("{path}: missing (baseline {})", render(Some(bval))));
            }
            Some(cval) => {
                let row = judge(path, bval, cval, rules);
                if row.status == DeltaStatus::Drift {
                    failures.push(format!(
                        "{path}: {} → {}{}",
                        row.base,
                        row.cur,
                        row.delta
                            .map_or(String::new(), |d| format!(" ({:+.2}%)", d * 100.0))
                    ));
                }
                rows.push(row);
            }
        }
    }
    for (path, cval) in &cur {
        if !base_map.contains_key(path.as_str()) {
            rows.push(DeltaRow {
                path: path.clone(),
                base: render(None),
                cur: render(Some(cval)),
                delta: None,
                status: DeltaStatus::Extra,
            });
            failures.push(format!(
                "{path}: new metric (current {})",
                render(Some(cval))
            ));
        }
    }
    Ok(DiffResult { rows, failures })
}

fn judge(path: &str, bval: &Json, cval: &Json, rules: &DiffRules) -> DeltaRow {
    let (delta, within) = match (bval, cval) {
        (Json::Num(b), Json::Num(c)) => {
            let integral = b.fract() == 0.0 && c.fract() == 0.0;
            let delta = if *b == 0.0 {
                if *c == 0.0 {
                    Some(0.0)
                } else {
                    None
                }
            } else {
                Some((c - b) / b.abs())
            };
            let within = if integral {
                b == c
            } else {
                match delta {
                    Some(d) => d.abs() <= rules.float_rel,
                    None => false,
                }
            };
            (delta, within)
        }
        _ => (None, bval == cval),
    };
    let status = if within {
        DeltaStatus::Ok
    } else if rules.is_informational(path) {
        DeltaStatus::Info
    } else {
        DeltaStatus::Drift
    };
    DeltaRow {
        path: path.to_string(),
        base: render(Some(bval)),
        cur: render(Some(cval)),
        delta,
        status,
    }
}

/// Renders the delta table for terminal output: one line per path that
/// is not an exact within-tolerance match, or a one-line all-clear.
pub fn render_table(result: &DiffResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let interesting: Vec<&DeltaRow> = result
        .rows
        .iter()
        .filter(|r| r.status != DeltaStatus::Ok)
        .collect();
    if interesting.is_empty() {
        let _ = writeln!(out, "  all {} metrics within tolerance", result.rows.len());
        return out;
    }
    let _ = writeln!(
        out,
        "  {:<48} {:>16} {:>16} {:>9}  status",
        "metric", "baseline", "current", "delta"
    );
    for r in interesting {
        let _ = writeln!(
            out,
            "  {:<48} {:>16} {:>16} {:>9}  {}",
            r.path,
            r.base,
            r.cur,
            r.delta
                .map_or_else(|| "-".into(), |d| format!("{:+.2}%", d * 100.0)),
            match r.status {
                DeltaStatus::Ok => "ok",
                DeltaStatus::Drift => "DRIFT",
                DeltaStatus::Info => "info",
                DeltaStatus::Missing => "MISSING",
                DeltaStatus::Extra => "EXTRA",
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ver: f64, kb: f64, blocks: f64, elapsed: f64) -> Json {
        Json::obj()
            .with("schema_version", Json::Num(ver))
            .with("elapsed", Json::Num(elapsed))
            .with(
                "rows",
                Json::Arr(vec![Json::obj()
                    .with("kb_per_s", Json::Num(kb))
                    .with("blocks", Json::Num(blocks))]),
            )
    }

    #[test]
    fn identical_documents_pass() {
        let base = doc(1.0, 1000.5, 128.0, 1.5);
        let r = compare(&base, &base.clone(), &DiffRules::default()).unwrap();
        assert!(r.pass(), "{:?}", r.failures);
        assert!(render_table(&r).contains("within tolerance"));
    }

    #[test]
    fn non_integral_schema_version_refuses() {
        let base = doc(1.5, 1000.0, 128.0, 1.5);
        assert!(compare(&base, &base.clone(), &DiffRules::default()).is_err());
    }

    #[test]
    fn float_tolerance_and_integer_exactness() {
        let base = doc(1.0, 1000.0, 128.0, 1.5);
        // elapsed is fractional on both sides → relative band applies.
        let near = doc(1.0, 1000.0, 128.0, 1.519);
        let r = compare(&base, &near, &DiffRules::default()).unwrap();
        assert!(r.pass(), "1.27% float drift within 2%: {:?}", r.failures);
        let far = doc(1.0, 1000.0, 128.0, 1.6);
        let r = compare(&base, &far, &DiffRules::default()).unwrap();
        assert!(!r.pass(), "6.7% float drift must fail");
        assert!(r.failures[0].contains("elapsed"), "{:?}", r.failures);
        // blocks has no fraction on either side → compared exactly.
        let off = doc(1.0, 1000.0, 129.0, 1.5);
        let r = compare(&base, &off, &DiffRules::default()).unwrap();
        assert!(!r.pass(), "integer drift of 1 must fail");
        assert!(r.failures.iter().any(|f| f.contains("blocks")));
    }

    #[test]
    fn informational_paths_report_but_never_fail() {
        let base = doc(1.0, 1000.0, 128.0, 1.5);
        let fast = doc(1.0, 4000.0, 128.0, 1.5);
        let rules = DiffRules {
            informational: vec!["kb_per_s".into()],
            ..DiffRules::default()
        };
        let r = compare(&base, &fast, &rules).unwrap();
        assert!(r.pass());
        assert!(r.rows.iter().any(|x| x.status == DeltaStatus::Info));
        assert!(render_table(&r).contains("info"));
    }

    #[test]
    fn missing_and_extra_paths_fail() {
        let base = doc(1.0, 1000.0, 128.0, 1.5);
        let pruned = Json::obj()
            .with("schema_version", Json::Num(1.0))
            .with("elapsed", Json::Num(1.5))
            .with(
                "rows",
                Json::Arr(vec![Json::obj().with("kb_per_s", Json::Num(1000.0))]),
            )
            .with("novel", Json::Num(7.0));
        let r = compare(&base, &pruned, &DiffRules::default()).unwrap();
        assert!(!r.pass());
        let text = r.failures.join("\n");
        assert!(text.contains("blocks") && text.contains("missing"));
        assert!(text.contains("novel") && text.contains("new metric"));
    }

    #[test]
    fn schema_version_mismatch_refuses() {
        let base = doc(1.0, 1.0, 1.0, 1.0);
        let next = doc(2.0, 1.0, 1.0, 1.0);
        let err = compare(&base, &next, &DiffRules::default()).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }
}
