//! Queueing-law auditors: the recorded telemetry cross-validated
//! against itself.
//!
//! Each auditor compares two numbers the simulator records through
//! *independent* bookkeeping paths, with a stated tolerance. When an
//! auditor fails, one of the two recorders is wrong — the laws
//! themselves hold in any work-conserving system — so a failure is an
//! accounting bug surfaced loudly, not a performance regression.
//!
//! - **Little's law** (`L = λW`): the time-averaged number of blocks in
//!   a pipeline stage, measured directly by the callout-driven gauge
//!   sampler, must equal the total stage time from the per-stage
//!   histograms divided by the observation window. Gauges sample at
//!   tick boundaries while stage work starts and ends mid-tick, so the
//!   tolerance carries an absolute occupancy floor below which the
//!   comparison is vacuous.
//! - **Utilization law** (`U = X·S`): a device's busy time, accumulated
//!   request-by-request at the device model, must equal the sum of its
//!   service-time histogram — two paths through `khw` that can only
//!   diverge if one forgets a request.
//! - **Byte conservation**: exact — every descriptor's span byte count,
//!   its engine outcome, and the workload's expected total must agree
//!   to the byte, and blocks cannot complete more often than they were
//!   read or written.

use ksim::Json;

/// Tolerance for one audit comparison: pass when
/// `|measured − predicted| ≤ max(abs, rel × |predicted|)`.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Relative bound on the deviation.
    pub rel: f64,
    /// Absolute floor, in the quantity's native unit (occupancy for
    /// Little's law, nanoseconds for the utilization law, bytes for
    /// conservation).
    pub abs: f64,
}

impl Tolerance {
    /// The exactness tolerance (zero slack).
    pub const EXACT: Tolerance = Tolerance { rel: 0.0, abs: 0.0 };

    fn allows(&self, measured: f64, predicted: f64) -> bool {
        (measured - predicted).abs() <= self.abs.max(self.rel * predicted.abs())
    }
}

/// The verdict of one auditor run.
#[derive(Clone, Debug)]
pub struct AuditOutcome {
    /// Which law was checked, e.g. `little.read` or `utilization.d0`.
    pub law: String,
    /// The directly measured side of the comparison.
    pub measured: f64,
    /// The side predicted from the other recorder via the law.
    pub predicted: f64,
    /// The tolerance the comparison was judged against.
    pub tolerance: Tolerance,
    /// True when the deviation is within tolerance.
    pub pass: bool,
    /// Human-readable context (units, inputs).
    pub detail: String,
}

impl AuditOutcome {
    fn judge(law: String, measured: f64, predicted: f64, tol: Tolerance, detail: String) -> Self {
        AuditOutcome {
            pass: tol.allows(measured, predicted),
            law,
            measured,
            predicted,
            tolerance: tol,
            detail,
        }
    }

    /// Serializes the outcome for `REPORT_*.json`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("law", Json::Str(self.law.clone()))
            .with("measured", Json::Num(self.measured))
            .with("predicted", Json::Num(self.predicted))
            .with(
                "tolerance",
                Json::obj()
                    .with("rel", Json::Num(self.tolerance.rel))
                    .with("abs", Json::Num(self.tolerance.abs)),
            )
            .with("pass", Json::Bool(self.pass))
            .with("detail", Json::Str(self.detail.clone()))
    }
}

/// A bundle of audit outcomes with an overall verdict.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// The individual law checks, in the order they ran.
    pub outcomes: Vec<AuditOutcome>,
}

impl AuditReport {
    /// True when every outcome passed.
    pub fn pass(&self) -> bool {
        self.outcomes.iter().all(|o| o.pass)
    }

    /// Serializes all outcomes plus the overall verdict.
    pub fn to_json(&self) -> Json {
        Json::obj().with("pass", Json::Bool(self.pass())).with(
            "outcomes",
            Json::Arr(self.outcomes.iter().map(AuditOutcome::to_json).collect()),
        )
    }

    /// Renders one line per outcome for terminal output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "  {:<24} measured {:>14.3}  predicted {:>14.3}  {}  ({})",
                o.law,
                o.measured,
                o.predicted,
                if o.pass { "PASS" } else { "FAIL" },
                o.detail
            );
        }
        out
    }
}

/// Little's law: `mean_occupancy` (the time-weighted average of the
/// sampler's gauge over the observation window) vs
/// `total_stage_ns / window_ns` (Σ per-item stage time over the same
/// window — `L = λW` with `λ = N/T` and `W = Σw/N`; the two are equal
/// as time integrals by construction, so a deviation beyond sampling
/// error means one recorder is wrong).
///
/// Sampling error is bounded per interval: with `n_samples` gauge
/// readings over the window, an in-stage interval can be missed (or
/// double-weighted at its edges) by at most one average sample
/// spacing, so the comparison carries an occupancy slack of
/// `intervals / n_samples` on top of `tol` — the stated resolution of
/// a tick-driven gauge. Stages whose intervals are long relative to
/// the sample spacing are audited tightly; sub-resolution stages
/// degrade to a loose (but still one-recorder-catches-the-other)
/// bound.
pub fn littles_law(
    label: &str,
    mean_occupancy: f64,
    total_stage_ns: u128,
    intervals: u64,
    n_samples: u64,
    window_ns: u64,
    tol: Tolerance,
) -> AuditOutcome {
    let predicted = if window_ns == 0 {
        0.0
    } else {
        total_stage_ns as f64 / window_ns as f64
    };
    let slack = if n_samples == 0 {
        f64::INFINITY
    } else {
        intervals as f64 / n_samples as f64
    };
    let effective = Tolerance {
        rel: tol.rel,
        abs: tol.abs.max(tol.rel * predicted.abs() + slack),
    };
    AuditOutcome::judge(
        format!("little.{label}"),
        mean_occupancy,
        predicted,
        effective,
        format!(
            "stage {total_stage_ns} ns over {window_ns} ns window, \
             {intervals} intervals / {n_samples} samples (slack {slack:.2})"
        ),
    )
}

/// Per-device accounting inputs for the utilization law, extracted
/// from the kernel by the caller so this crate stays `ksim`-only.
#[derive(Clone, Debug)]
pub struct DeviceAccounting {
    /// Mount/device name.
    pub name: String,
    /// Busy time accumulated at the device model, ns.
    pub busy_ns: u128,
    /// Sum of the device's service-time histogram, ns.
    pub service_sum_ns: u128,
    /// Requests counted by the device's completion counter.
    pub requests: u64,
    /// Samples in the service-time histogram.
    pub service_count: u64,
}

/// Utilization law: busy time vs service-time histogram sum (and the
/// matching request counts), per device.
pub fn utilization_law(dev: &DeviceAccounting, tol: Tolerance) -> AuditOutcome {
    let mut o = AuditOutcome::judge(
        format!("utilization.{}", dev.name),
        dev.busy_ns as f64,
        dev.service_sum_ns as f64,
        tol,
        format!(
            "busy vs Σ service over {} requests / {} samples",
            dev.requests, dev.service_count
        ),
    );
    // The two recorders must also agree on *how many* requests they
    // saw; equal sums over different counts would be a coincidence,
    // not an account.
    if dev.requests != dev.service_count {
        o.pass = false;
    }
    o
}

/// Per-descriptor byte accounting, extracted by the caller from the
/// kstat span table and the engine outcome table.
#[derive(Clone, Copy, Debug)]
pub struct DescBytes {
    /// Splice descriptor id.
    pub desc: u64,
    /// Bytes the kstat span accumulated block-by-block.
    pub span_bytes: u64,
    /// Bytes the engine's final `SpliceOutcome` reported.
    pub outcome_bytes: u64,
    /// Blocks the span completed.
    pub blocks_done: u64,
    /// Reads the span issued to a device.
    pub reads_issued: u64,
    /// Reads satisfied from the buffer cache (a cache-hot source block
    /// completes without issuing a device read).
    pub read_hits: u64,
    /// Writes the span issued.
    pub writes_issued: u64,
}

/// Byte conservation: every descriptor's two byte counters agree
/// exactly, the total matches the workload's expected byte count, and
/// no descriptor completed more blocks than it read or wrote.
pub fn byte_conservation(descs: &[DescBytes], expected_total: u64) -> AuditOutcome {
    let mut total: u64 = 0;
    let mut bad = Vec::new();
    for d in descs {
        total += d.outcome_bytes;
        if d.span_bytes != d.outcome_bytes {
            bad.push(format!(
                "desc {}: span {} ≠ outcome {}",
                d.desc, d.span_bytes, d.outcome_bytes
            ));
        }
        if d.reads_issued + d.read_hits < d.blocks_done || d.writes_issued < d.blocks_done {
            bad.push(format!(
                "desc {}: {} blocks done from {} reads + {} hits / {} writes",
                d.desc, d.blocks_done, d.reads_issued, d.read_hits, d.writes_issued
            ));
        }
    }
    let mut o = AuditOutcome::judge(
        "byte_conservation".into(),
        total as f64,
        expected_total as f64,
        Tolerance::EXACT,
        if bad.is_empty() {
            format!("{} descriptors, all span/outcome pairs exact", descs.len())
        } else {
            bad.join("; ")
        },
    );
    if !bad.is_empty() {
        o.pass = false;
    }
    o
}

/// Request-sampling audit: the head-sampled span population must be an
/// unbiased stand-in for the full request stream, and tail retention
/// must be lossless. Two outcomes:
///
/// - `sampling.p99` — the p99 of a histogram rebuilt from the
///   *head-sampled* committed spans only, vs the p99 of the full
///   end-to-end latency histogram (which records every request, sampled
///   or not). The 1-in-N draw is keyed on the connection id, so it is
///   independent of latency and the two digests must agree within
///   `tol`. The comparison is at the digest's native resolution — the
///   upper bound of each p99's log2 bucket, not the min/max-clamped
///   estimate — because a thin sample legitimately clamps to a
///   different point *inside the same bucket*; below `min_sampled`
///   kept spans the comparison is vacuous and passes with a note
///   saying so.
/// - `sampling.tail_retention` — every request that errored or ran
///   over the SLO target must have a committed span: the committed tail
///   count vs the monitor's violation counter, exact, except that each
///   span evicted from the bounded committed ring can no longer
///   testify (an absolute slack of `spans_dropped`).
pub fn request_sampling(
    obs: &ksim::Observability,
    tol: Tolerance,
    min_sampled: u64,
) -> Vec<AuditOutcome> {
    let c = obs.counters();
    let mut sampled = ksim::Hist::new();
    let mut tail: u64 = 0;
    for s in obs.committed_spans() {
        if s.head_sampled {
            sampled.record(s.latency_ns);
        }
        if s.error.is_some() || s.over_slo {
            tail += 1;
        }
    }
    let bucket_hi = |b: Option<usize>| match b {
        Some(i) if i >= 63 => u64::MAX as f64,
        Some(i) => ((2u64 << i) - 1) as f64,
        None => 0.0,
    };
    let full_p99 = bucket_hi(obs.latency().percentile_bucket(0.99));
    let sampled_p99 = bucket_hi(sampled.percentile_bucket(0.99));
    let p99 = if sampled.count() < min_sampled {
        AuditOutcome::judge(
            "sampling.p99".into(),
            sampled_p99,
            sampled_p99,
            tol,
            format!(
                "vacuous: {} head-sampled spans < {min_sampled} floor",
                sampled.count()
            ),
        )
    } else {
        AuditOutcome::judge(
            "sampling.p99".into(),
            sampled_p99,
            full_p99,
            tol,
            format!(
                "p99 bucket bound, {} head-sampled spans vs {} requests",
                sampled.count(),
                c.requests
            ),
        )
    };
    let retention = AuditOutcome::judge(
        "sampling.tail_retention".into(),
        tail as f64,
        c.violations as f64,
        Tolerance {
            rel: 0.0,
            abs: c.spans_dropped as f64,
        },
        format!(
            "{} committed error/over-SLO spans vs {} violations ({} spans evicted)",
            tail, c.violations, c.spans_dropped
        ),
    );
    vec![p99, retention]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn littles_law_passes_on_consistent_inputs() {
        // 4 blocks, each 250 µs in-stage, over a 1 ms window → L = 1.0,
        // with plenty of samples so the resolution slack is small.
        let o = littles_law(
            "read",
            1.0,
            4 * 250_000,
            4,
            1000,
            1_000_000,
            Tolerance {
                rel: 0.05,
                abs: 0.0,
            },
        );
        assert!(o.pass, "{o:?}");
        assert!((o.predicted - 1.0).abs() < 1e-12);
    }

    #[test]
    fn littles_law_resolution_slack_forgives_sub_sample_intervals() {
        // 8 intervals seen by only 4 samples: slack = 2 occupancy, so a
        // gauge that saw nothing still passes against a prediction of
        // 1.2 — the stage is below the gauge's stated resolution.
        let tol = Tolerance { rel: 0.1, abs: 0.0 };
        assert!(littles_law("read", 0.0, 1_200_000, 8, 4, 1_000_000, tol).pass);
        // With dense sampling the same gap is a real divergence.
        assert!(!littles_law("read", 0.0, 1_200_000, 8, 1000, 1_000_000, tol).pass);
        // A gross overcount fails even with the slack.
        assert!(!littles_law("read", 9.0, 1_200_000, 8, 4, 1_000_000, tol).pass);
    }

    #[test]
    fn littles_law_without_samples_is_vacuous() {
        let tol = Tolerance { rel: 0.1, abs: 0.0 };
        assert!(littles_law("read", 0.0, 1_000_000, 8, 0, 1_000_000, tol).pass);
    }

    #[test]
    fn utilization_law_catches_divergent_recorders() {
        let tol = Tolerance {
            rel: 0.01,
            abs: 0.0,
        };
        let good = DeviceAccounting {
            name: "d0".into(),
            busy_ns: 5_000_000,
            service_sum_ns: 5_000_000,
            requests: 128,
            service_count: 128,
        };
        assert!(utilization_law(&good, tol).pass);
        let skewed = DeviceAccounting {
            service_sum_ns: 5_200_000,
            ..good.clone()
        };
        assert!(!utilization_law(&skewed, tol).pass);
        let miscounted = DeviceAccounting {
            service_count: 127,
            ..good
        };
        assert!(!utilization_law(&miscounted, tol).pass, "count mismatch");
    }

    #[test]
    fn byte_conservation_is_exact() {
        let d = DescBytes {
            desc: 1,
            span_bytes: 1 << 20,
            outcome_bytes: 1 << 20,
            blocks_done: 128,
            reads_issued: 128,
            read_hits: 0,
            writes_issued: 128,
        };
        assert!(byte_conservation(&[d], 1 << 20).pass);
        assert!(!byte_conservation(&[d], (1 << 20) + 1).pass, "off by one");
        let torn = DescBytes {
            outcome_bytes: (1 << 20) - 1,
            ..d
        };
        assert!(!byte_conservation(&[torn], 1 << 20).pass);
        let impossible = DescBytes {
            reads_issued: 127,
            ..d
        };
        assert!(!byte_conservation(&[impossible], 1 << 20).pass);
        // A cache hit is a legitimate block source: hits make up for
        // reads that never reached the device.
        let hot = DescBytes {
            reads_issued: 0,
            read_hits: 128,
            ..d
        };
        assert!(byte_conservation(&[hot], 1 << 20).pass);
    }

    #[test]
    fn request_sampling_audit_cross_checks_spans_against_hist() {
        use ksim::{Dur, ObsConfig, Observability, SimTime};
        let mut obs = Observability::new(ObsConfig {
            sample_period: 4,
            ..ObsConfig::on()
        });
        // 256 identical 1 ms requests; every 16th errors. Constant
        // latency puts the sampled and full p99 in the same bucket, so
        // the audit must agree exactly at any sampling period.
        for conn in 0..256u32 {
            obs.note_accept(SimTime::ZERO, conn, conn as u64);
            if conn % 16 == 0 {
                obs.note_transfer(conn, 0, Some("EPIPE"));
            } else {
                obs.note_transfer(conn, 8192, None);
            }
            obs.note_close(SimTime::ZERO + Dur::from_ms(1), conn);
        }
        let tol = Tolerance {
            rel: 0.10,
            abs: 0.0,
        };
        let outs = request_sampling(&obs, tol, 8);
        assert_eq!(outs.len(), 2);
        assert!(outs.iter().all(|o| o.pass), "{outs:?}");
        assert_eq!(outs[0].law, "sampling.p99");
        assert_eq!(outs[1].law, "sampling.tail_retention");
        // All 16 errored requests testify, regardless of the head draw.
        assert_eq!(outs[1].measured, 16.0);
        assert_eq!(outs[1].predicted, 16.0);
    }

    #[test]
    fn request_sampling_audit_is_vacuous_below_the_floor() {
        use ksim::{Dur, ObsConfig, Observability, SimTime};
        let mut obs = Observability::new(ObsConfig {
            sample_period: 1024,
            ..ObsConfig::on()
        });
        // 8 clean requests with a 1-in-1024 draw: almost surely zero
        // head-sampled spans, so the p99 comparison must not fail on
        // an empty digest.
        for conn in 0..8u32 {
            obs.note_accept(SimTime::ZERO, conn, conn as u64);
            obs.note_close(SimTime::ZERO + Dur::from_ms(2), conn);
        }
        let tol = Tolerance {
            rel: 0.10,
            abs: 0.0,
        };
        let outs = request_sampling(&obs, tol, 8);
        assert!(outs[0].pass, "{:?}", outs[0]);
        assert!(outs[0].detail.contains("vacuous"), "{:?}", outs[0]);
        assert!(outs[1].pass, "no violations, nothing to retain");
    }

    #[test]
    fn report_aggregates_and_serializes() {
        let mut r = AuditReport::default();
        r.outcomes.push(littles_law(
            "read",
            1.0,
            1_000_000,
            1,
            1000,
            1_000_000,
            Tolerance::EXACT,
        ));
        assert!(r.pass());
        r.outcomes.push(byte_conservation(&[], 1));
        assert!(!r.pass());
        let j = r.to_json();
        assert_eq!(j.get("pass").and_then(Json::as_f64), None); // bool, not num
        assert!(r.render().contains("FAIL"));
    }
}
