//! Critical-path decomposition: from stitched block spans to a ranked,
//! gap-free bottleneck table.
//!
//! Every spliced block leaves four phase marks in the trace (read
//! issue → read done → write issue → write done). The differences
//! between consecutive marks partition the block's end-to-end latency
//! **exactly** — read phase + handoff + write phase = total, with no
//! gaps and no overlaps, by arithmetic on the same timestamps. The
//! decomposition then refines the read phase with the separately
//! recorded device-queue wait, and attaches the two *overlapping*
//! measures (virtual SQE-admission wait, retry backoff) as
//! informational rows that never enter the closure sum.
//!
//! The closure check is the whole point: the trace-derived total is
//! compared against the `end_to_end` stage histogram, which the engine
//! records through an independent bookkeeping path (`issued_at` map vs
//! trace ring). If the two disagree beyond tolerance, either the trace
//! ring wrapped (partial spans — reported) or an accounting bug crept
//! in.

use ksim::{BlockSpan, Json, StageHists};

/// Sums of the three exact span phases plus span-health counters.
#[derive(Clone, Debug, Default)]
pub struct PhaseBreakdown {
    /// Spans with all four phase marks observed, in order.
    pub blocks: u64,
    /// Spans missing at least one phase (trace-ring wrap/truncation).
    pub partial_spans: u64,
    /// Spans whose observed phases violate pipeline order.
    pub unordered_spans: u64,
    /// Σ (read done − read issue) over complete spans, ns.
    pub read_ns: u128,
    /// Σ (write issue − read done) over complete spans, ns.
    pub handoff_ns: u128,
    /// Σ (write done − write issue) over complete spans, ns.
    pub write_ns: u128,
    /// Σ (write done − read issue) over complete spans, ns. Equals
    /// `read_ns + handoff_ns + write_ns` by construction.
    pub total_ns: u128,
}

impl PhaseBreakdown {
    /// Accumulates the exact phase sums over `spans`. Partial or
    /// unordered spans are counted and skipped — never panicked on —
    /// so the decomposition degrades gracefully on wrapped rings.
    pub fn from_spans(spans: &[BlockSpan]) -> Self {
        let mut b = PhaseBreakdown::default();
        for s in spans {
            if !s.complete() {
                b.partial_spans += 1;
                continue;
            }
            if !s.ordered() {
                b.unordered_spans += 1;
                continue;
            }
            let (ri, rd, wi, wd) = (
                s.read_issue.unwrap().at,
                s.read_done.unwrap().at,
                s.write_issue.unwrap().at,
                s.write_done.unwrap().at,
            );
            b.blocks += 1;
            b.read_ns += rd.since(ri).as_ns() as u128;
            b.handoff_ns += wi.since(rd).as_ns() as u128;
            b.write_ns += wd.since(wi).as_ns() as u128;
            b.total_ns += wd.since(ri).as_ns() as u128;
        }
        b
    }
}

/// One row of the ranked bottleneck table.
#[derive(Clone, Debug)]
pub struct StageRow {
    /// Stage name (`read_queue`, `read_service`, `handoff`,
    /// `write_service`, `sqe_wait`, `retry_backoff`).
    pub stage: &'static str,
    /// Total nanoseconds attributed to this stage across all blocks.
    pub total_ns: u128,
    /// Samples behind the row (blocks for phase rows, histogram count
    /// for informational rows).
    pub count: u64,
    /// `total_ns / count`, or 0 when empty.
    pub mean_ns: f64,
    /// `total_ns` as a fraction of the end-to-end total.
    pub share: f64,
    /// True for overlapping sub-attributions (virtual SQE wait, retry
    /// backoff) that are excluded from the gap-free closure sum.
    pub informational: bool,
}

impl StageRow {
    fn new(stage: &'static str, total_ns: u128, count: u64, e2e: u128, info: bool) -> Self {
        StageRow {
            stage,
            total_ns,
            count,
            mean_ns: if count == 0 {
                0.0
            } else {
                total_ns as f64 / count as f64
            },
            share: if e2e == 0 {
                0.0
            } else {
                total_ns as f64 / e2e as f64
            },
            informational: info,
        }
    }

    /// Serializes the row for `REPORT_*.json`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("stage", Json::Str(self.stage.into()))
            .with("total_ns", Json::Num(self.total_ns as f64))
            .with("count", Json::Num(self.count as f64))
            .with("mean_ns", Json::Num(self.mean_ns))
            .with("share", Json::Num(self.share))
            .with("informational", Json::Bool(self.informational))
    }
}

/// The full per-workload decomposition: phase sums, ranked table,
/// dominant-stage verdict, and the closure cross-check.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Exact phase sums and span-health counters.
    pub phases: PhaseBreakdown,
    /// Bottleneck table, ranked by `total_ns` descending (informational
    /// rows included, ranked with the rest but flagged).
    pub table: Vec<StageRow>,
    /// The non-informational stage with the largest total — where a
    /// block's time actually went.
    pub dominant: &'static str,
    /// Σ of the non-informational rows, ns. Equals `phases.total_ns`
    /// by construction (the gap-free property).
    pub components_ns: u128,
    /// The independently recorded `end_to_end` histogram sum, ns.
    pub kstat_end_to_end_ns: u128,
    /// Blocks the independent recorder saw (histogram count).
    pub kstat_blocks: u64,
    /// `|components_ns − kstat_end_to_end_ns| / kstat_end_to_end_ns`.
    pub closure_error: f64,
    /// True when `closure_error ≤ tolerance` (the acceptance gate).
    pub closure_pass: bool,
    /// The tolerance the closure was judged against.
    pub tolerance: f64,
}

/// Default closure tolerance: the decomposition must sum to the
/// measured end-to-end latency within 1%.
pub const CLOSURE_TOLERANCE: f64 = 0.01;

/// Decomposes `spans` against the per-stage histograms in `stages`.
///
/// The four component rows partition the trace-derived end-to-end time
/// exactly: `read_queue` is the device-queue portion of the read phase
/// (clamped to it — the queue-wait histogram also sees non-splice
/// reads), `read_service` is the remainder of the read phase,
/// `handoff` and `write_service` are the other two phases verbatim.
/// `sqe_wait` (virtual submission-crossing offset) and `retry_backoff`
/// (waits between re-issues, overlapping the read phase) are attached
/// as informational rows.
pub fn decompose(spans: &[BlockSpan], stages: &StageHists, tolerance: f64) -> Decomposition {
    let phases = PhaseBreakdown::from_spans(spans);
    let e2e = phases.total_ns;
    let read_queue = stages.read_queue_wait.sum().min(phases.read_ns);
    let read_service = phases.read_ns - read_queue;
    let mut table = vec![
        StageRow::new("read_queue", read_queue, phases.blocks, e2e, false),
        StageRow::new("read_service", read_service, phases.blocks, e2e, false),
        StageRow::new("handoff", phases.handoff_ns, phases.blocks, e2e, false),
        StageRow::new("write_service", phases.write_ns, phases.blocks, e2e, false),
        StageRow::new(
            "sqe_wait",
            stages.sqe_wait.sum(),
            stages.sqe_wait.count(),
            e2e,
            true,
        ),
        StageRow::new(
            "retry_backoff",
            stages.retry_backoff.sum(),
            stages.retry_backoff.count(),
            e2e,
            true,
        ),
    ];
    table.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.stage.cmp(b.stage)));
    let dominant = table
        .iter()
        .find(|r| !r.informational)
        .map_or("none", |r| r.stage);
    let components_ns: u128 = table
        .iter()
        .filter(|r| !r.informational)
        .map(|r| r.total_ns)
        .sum();
    let kstat_end_to_end_ns = stages.end_to_end.sum();
    let closure_error = if kstat_end_to_end_ns == 0 {
        if components_ns == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (components_ns as f64 - kstat_end_to_end_ns as f64).abs() / kstat_end_to_end_ns as f64
    };
    Decomposition {
        phases,
        table,
        dominant,
        components_ns,
        kstat_end_to_end_ns,
        kstat_blocks: stages.end_to_end.count(),
        closure_error,
        closure_pass: closure_error <= tolerance,
        tolerance,
    }
}

impl Decomposition {
    /// Serializes the decomposition for `REPORT_*.json`: span-health
    /// counters, the ranked table, the verdict, and the closure check.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("blocks", Json::Num(self.phases.blocks as f64))
            .with("partial_spans", Json::Num(self.phases.partial_spans as f64))
            .with(
                "unordered_spans",
                Json::Num(self.phases.unordered_spans as f64),
            )
            .with(
                "table",
                Json::Arr(self.table.iter().map(StageRow::to_json).collect()),
            )
            .with("dominant", Json::Str(self.dominant.into()))
            .with(
                "closure",
                Json::obj()
                    .with("components_ns", Json::Num(self.components_ns as f64))
                    .with(
                        "kstat_end_to_end_ns",
                        Json::Num(self.kstat_end_to_end_ns as f64),
                    )
                    .with("kstat_blocks", Json::Num(self.kstat_blocks as f64))
                    .with("rel_error", Json::Num(self.closure_error))
                    .with("tolerance", Json::Num(self.tolerance))
                    .with("pass", Json::Bool(self.closure_pass)),
            )
    }

    /// Renders the ranked table as aligned text for terminal output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<14} {:>14} {:>8} {:>12} {:>7}",
            "stage", "total_ns", "count", "mean_ns", "share"
        );
        for r in &self.table {
            let _ = writeln!(
                out,
                "  {:<14} {:>14} {:>8} {:>12.1} {:>6.1}%{}",
                r.stage,
                r.total_ns,
                r.count,
                r.mean_ns,
                r.share * 100.0,
                if r.informational { "  (info)" } else { "" }
            );
        }
        let _ = writeln!(
            out,
            "  dominant: {}  closure: {:.4}% (tol {:.1}%) {}",
            self.dominant,
            self.closure_error * 100.0,
            self.tolerance * 100.0,
            if self.closure_pass { "PASS" } else { "FAIL" }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{PhaseMark, SimTime};

    fn mark(seq: u64, us: u64) -> Option<PhaseMark> {
        Some(PhaseMark {
            seq,
            at: SimTime::ZERO + ksim::Dur::from_us(us),
        })
    }

    fn span(lblk: u64, t0: u64) -> BlockSpan {
        BlockSpan {
            desc: 1,
            lblk,
            read_issue: mark(t0, t0),
            read_done: mark(t0 + 1, t0 + 10),
            write_issue: mark(t0 + 2, t0 + 15),
            write_done: mark(t0 + 3, t0 + 40),
        }
    }

    fn stages_with_e2e(spans: &[BlockSpan]) -> StageHists {
        let mut st = StageHists::default();
        for s in spans {
            let ri = s.read_issue.unwrap().at;
            st.end_to_end
                .record(s.write_done.unwrap().at.since(ri).as_ns());
        }
        st
    }

    #[test]
    fn phases_partition_exactly() {
        let spans: Vec<BlockSpan> = (0..8).map(|i| span(i, i * 100)).collect();
        let b = PhaseBreakdown::from_spans(&spans);
        assert_eq!(b.blocks, 8);
        assert_eq!(b.read_ns + b.handoff_ns + b.write_ns, b.total_ns);
        assert_eq!(b.total_ns, 8 * 40_000); // 40 µs per block
    }

    #[test]
    fn decompose_closes_against_matching_kstat() {
        let spans: Vec<BlockSpan> = (0..4).map(|i| span(i, i * 100)).collect();
        let st = stages_with_e2e(&spans);
        let d = decompose(&spans, &st, CLOSURE_TOLERANCE);
        assert!(d.closure_pass, "rel error {}", d.closure_error);
        assert_eq!(d.components_ns, d.kstat_end_to_end_ns);
        // write phase (25 µs) dominates read (10) and handoff (5).
        assert_eq!(d.dominant, "write_service");
        assert_eq!(d.table[0].stage, "write_service");
        let sum: f64 = d
            .table
            .iter()
            .filter(|r| !r.informational)
            .map(|r| r.share)
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_and_unordered_spans_are_skipped_not_fatal() {
        let mut spans = vec![span(0, 0), span(1, 100)];
        spans[1].read_done = None; // truncated: later phases exist
        let mut tail = span(2, 200);
        tail.write_done = None; // wrapped tail: still ordered prefix
        spans.push(tail);
        let b = PhaseBreakdown::from_spans(&spans);
        assert_eq!(b.blocks, 1);
        assert_eq!(b.partial_spans, 2);
        let st = stages_with_e2e(&spans[..1]);
        let d = decompose(&spans, &st, CLOSURE_TOLERANCE);
        assert!(d.closure_pass);
    }

    #[test]
    fn closure_fails_when_recorders_diverge() {
        let spans = vec![span(0, 0)];
        let mut st = stages_with_e2e(&spans);
        st.end_to_end.record(1_000_000); // phantom block in kstat only
        let d = decompose(&spans, &st, CLOSURE_TOLERANCE);
        assert!(!d.closure_pass);
    }

    #[test]
    fn empty_input_is_benign() {
        let d = decompose(&[], &StageHists::default(), CLOSURE_TOLERANCE);
        assert!(d.closure_pass);
        assert_eq!(d.phases.blocks, 0);
        assert_eq!(d.dominant, "handoff"); // all-zero tie → name order
        assert!(d.to_json().get("closure").is_some());
    }
}
