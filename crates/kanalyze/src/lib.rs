//! Trace/profile analysis engine for the splice simulator.
//!
//! Seven PRs of telemetry — typed trace rings, per-stage histograms,
//! gauge samplers, tick-accurate accounting — record *what* happened.
//! This crate converts those records into *answers*:
//!
//! - [`decompose`]: walks every stitched [`ksim::BlockSpan`] into an
//!   exhaustive, gap-free per-block latency breakdown (read queue, read
//!   service, read→write handoff, write service, with SQE-admission
//!   wait and retry backoff as overlapping sub-attributions), aggregates
//!   per workload into a ranked bottleneck table, and cross-checks the
//!   trace-derived total against the independently recorded
//!   `end_to_end` stage histogram.
//! - [`audit`]: queueing-law auditors that cross-validate the recorded
//!   data against itself — Little's law (sampler gauges vs stage
//!   histograms), the utilization law (device busy time vs service-time
//!   digests), and exact byte conservation per splice descriptor — each
//!   with a stated tolerance so an accounting bug fails loudly instead
//!   of silently skewing a report.
//! - [`diff`]: cross-run regression gating — flattens two bench JSON
//!   documents into dotted metric paths and compares them under
//!   per-metric tolerance rules (integers exact, floats within a
//!   relative bound, host wall-clock metrics informational), refusing
//!   mismatched schema versions.
//!
//! The crate depends only on `ksim` (spans, histograms, JSON): callers
//! in `bench` glue a live [`Kernel`](../splice/struct.Kernel.html) to
//! these pure functions and serialize the results as `REPORT_*.json`.

#![warn(missing_docs)]

pub mod audit;
pub mod decompose;
pub mod diff;

pub use audit::{
    byte_conservation, littles_law, request_sampling, utilization_law, AuditOutcome, AuditReport,
    DescBytes, DeviceAccounting, Tolerance,
};
pub use decompose::{decompose, Decomposition, PhaseBreakdown, StageRow};
pub use diff::{compare, render_table, DeltaRow, DeltaStatus, DiffResult, DiffRules};
