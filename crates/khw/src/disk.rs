//! SCSI disk model with on-drive read-ahead cache.
//!
//! The model captures what mattered for the paper's evaluation:
//!
//! * **Mechanics** — seek (concave in distance), average rotational
//!   latency, and media-rate transfer, per the RZ56/RZ58 figures in §6.1.
//! * **Read-ahead cache** — after servicing a read, the drive keeps reading
//!   sequentially into its cache (64 KB on the RZ56; 256 KB in 4 segments
//!   on the RZ58). Sequential reads that hit the cache transfer at bus
//!   speed; a sequential reader that outruns the fill waits for the media.
//! * **Pseudo-DMA host cost** — every transferred byte charges host CPU at
//!   the profile's `host_copy_bps`: the DECstation 5000/200 SCSI path moves
//!   data through a bounce buffer with a CPU copy, which the paper's §6.4
//!   (and its RZ56-vs-RZ58 CPU-availability gap) reflects.
//! * **Disksort service** — one request transfers at a time; requests
//!   that arrive while the drive is busy queue and are serviced in
//!   elevator order (`disksort`: ascending-sector sweep with wraparound),
//!   exactly like the BSD `strategy` queue. This matters for splice: the
//!   callout list dispatches a tick's write handlers in head-insertion
//!   (LIFO) order, and without disksort every other write would pay a
//!   full rotation.
//!
//! The disk carries real bytes (a [`SparseStore`]) so data integrity is
//! checked end to end.

use ksim::{Dur, Hist, SimTime};

use crate::fault::{FaultDecision, FaultPlan};
use crate::profile::{DiskKind, DiskProfile, SECTOR_SIZE};
use crate::store::SparseStore;

/// Direction of a disk transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoOp {
    /// Media/cache → host.
    Read,
    /// Host → media.
    Write,
}

/// A request newly put into service: schedule its completion interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Started {
    /// Caller-supplied request token.
    pub token: u64,
    /// Time the completion interrupt fires.
    pub finish: SimTime,
}

/// A finished request, handed back at the completion interrupt.
#[derive(Debug)]
pub struct IoDone {
    /// Caller-supplied request token.
    pub token: u64,
    /// Host CPU consumed moving the data (pseudo-DMA bounce copy).
    pub host_cpu: Dur,
    /// Data read (for [`IoOp::Read`]; `None` for writes and for reads
    /// that failed).
    pub data: Option<Vec<u8>>,
    /// True if a read was served from the drive's read-ahead cache
    /// (possibly waiting for the fill to catch up) rather than by a
    /// mechanical access.
    pub cache_hit: bool,
    /// True if the request failed (injected fault): the `B_ERROR` the
    /// completion interrupt hands to `biodone`.
    pub error: bool,
}

struct Pending {
    token: u64,
    op: IoOp,
    sector: u64,
    len: usize,
    data: Option<Vec<u8>>,
}

/// One read-ahead segment: a window of sequentially cached sectors.
#[derive(Clone, Copy, Debug)]
struct RaWindow {
    /// Lowest sector retained in the segment.
    lo: u64,
    /// Fill position at `fill_time`; grows at media rate afterwards.
    fill: u64,
    fill_time: SimTime,
    /// Fill stops here (request end + segment capacity).
    cap: u64,
    /// Monotone counter for LRU replacement.
    last_used: u64,
}

/// Cumulative per-disk counters, for tests and reports.
#[derive(Default, Clone, Copy, Debug)]
pub struct DiskStats {
    /// Requests serviced.
    pub requests: u64,
    /// Read requests served from the read-ahead cache.
    pub cache_hits: u64,
    /// Requests that required a mechanical access.
    pub mechanical: u64,
    /// Bytes transferred (both directions).
    pub bytes: u64,
}

/// A simulated SCSI disk (or, with a RAM profile, a zero-mechanics medium —
/// though the RAM disk normally uses [`crate::RamDisk`] instead).
pub struct Disk {
    profile: DiskProfile,
    store: SparseStore,
    /// The request currently transferring, with its completed result.
    active: Option<(SimTime, IoDone)>,
    /// Waiting requests (serviced in elevator order).
    queue: Vec<Pending>,
    /// Sector following the last transferred one (head position proxy and
    /// elevator sweep position).
    head: u64,
    windows: Vec<RaWindow>,
    use_clock: u64,
    stats: DiskStats,
    /// Total time the drive spent servicing requests (utilization
    /// accounting: busy / elapsed).
    busy: Dur,
    /// Per-request service-time distribution (ns), from service start
    /// to completion interrupt.
    service_hist: Hist,
    fault: Option<FaultPlan>,
}

impl Disk {
    /// Creates a zero-filled disk from a profile.
    pub fn new(profile: DiskProfile) -> Self {
        let store = SparseStore::new(profile.bytes());
        Disk {
            profile,
            store,
            active: None,
            queue: Vec::new(),
            head: 0,
            windows: Vec::new(),
            use_clock: 0,
            stats: DiskStats::default(),
            busy: Dur::ZERO,
            service_hist: Hist::new(),
            fault: None,
        }
    }

    /// Installs (or clears) the fault plan consulted at service time.
    /// Direct store accessors bypass it.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The installed fault plan, if any (to inspect `injected()`).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    fn decide_fault(&mut self, write: bool, sector: u64, nsec: u64) -> FaultDecision {
        match &mut self.fault {
            Some(plan) => plan.decide(write, sector, nsec),
            None => FaultDecision::CLEAN,
        }
    }

    /// Queued requests not yet in service (tests, reports).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The profile this disk was built from.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Total time spent servicing requests (for utilization = busy /
    /// elapsed).
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Per-request service-time distribution (ns).
    pub fn service_hist(&self) -> &Hist {
        &self.service_hist
    }

    /// Direct medium access bypassing all timing — used by `mkfs` and by
    /// tests that need to inspect on-disk state.
    pub fn store(&self) -> &SparseStore {
        &self.store
    }

    /// Direct mutable medium access bypassing all timing (see [`Self::store`]).
    pub fn store_mut(&mut self) -> &mut SparseStore {
        &mut self.store
    }

    fn media_sectors_per_sec(&self) -> u64 {
        (self.profile.media_bps / SECTOR_SIZE as u64).max(1)
    }

    fn seg_capacity_sectors(&self) -> u64 {
        if self.profile.cache_bytes == 0 {
            return 0;
        }
        (self.profile.cache_bytes / self.profile.cache_segments.max(1) / SECTOR_SIZE) as u64
    }

    /// Sectors available in `w` at time `t` (fill grows at media rate).
    fn fill_at(&self, w: &RaWindow, t: SimTime) -> u64 {
        let grown = if t > w.fill_time {
            let ns = t.since(w.fill_time).as_ns();
            w.fill + (ns as u128 * self.media_sectors_per_sec() as u128 / 1_000_000_000) as u64
        } else {
            w.fill
        };
        grown.min(w.cap)
    }

    /// Instant at which the fill of `w` reaches `sector` (>= fill_time).
    fn time_fill_reaches(&self, w: &RaWindow, sector: u64) -> SimTime {
        if sector <= w.fill {
            return w.fill_time;
        }
        let need = sector - w.fill;
        let ns = need as u128 * 1_000_000_000 / self.media_sectors_per_sec() as u128;
        w.fill_time + Dur::from_ns(ns as u64)
    }

    /// Seek time for a head movement of `dist` sectors: zero for none,
    /// track-to-track for short hops, growing concavely (square root of
    /// normalized distance, classic disk-model shape) toward the average
    /// seek at one-third stroke.
    fn seek_time(&self, dist: u64) -> Dur {
        if dist == 0 || self.profile.kind == DiskKind::Ram {
            return Dur::ZERO;
        }
        let frac = (dist as f64 / self.profile.sectors as f64).min(1.0);
        // Average seek corresponds to a one-third-stroke move.
        let scale = (frac * 3.0).sqrt().min(1.5);
        let var = self
            .profile
            .avg_seek
            .saturating_sub(self.profile.track_seek);
        self.profile.track_seek + Dur::from_ns((var.as_ns() as f64 * scale) as u64)
    }

    /// Submits one request with a caller-chosen `token`. If the drive is
    /// idle the request enters service at once and [`Started`] names its
    /// completion time; otherwise it queues (elevator order) and starts
    /// when [`Disk::complete`] retires the active request.
    ///
    /// # Panics
    ///
    /// Panics if the byte range is not sector-aligned or runs off the end
    /// of the medium, or if a write is missing its data (or a read has
    /// data attached).
    pub fn submit(
        &mut self,
        now: SimTime,
        token: u64,
        op: IoOp,
        sector: u64,
        len: usize,
        data: Option<Vec<u8>>,
    ) -> Option<Started> {
        assert!(
            len > 0 && len.is_multiple_of(SECTOR_SIZE),
            "unaligned length {len}"
        );
        let nsec = (len / SECTOR_SIZE) as u64;
        assert!(
            sector + nsec <= self.profile.sectors,
            "I/O past end of medium"
        );
        match op {
            IoOp::Write => assert!(
                data.as_ref().is_some_and(|d| d.len() == len),
                "write needs {len} bytes of data"
            ),
            IoOp::Read => assert!(data.is_none(), "read carries no data"),
        }
        self.stats.requests += 1;
        self.stats.bytes += len as u64;
        self.queue.push(Pending {
            token,
            op,
            sector,
            len,
            data,
        });
        if self.active.is_none() {
            self.start_next(now)
        } else {
            None
        }
    }

    /// Retires the active request at its completion interrupt, returning
    /// its result and, if another request was queued, the next one put
    /// into service.
    ///
    /// # Panics
    ///
    /// Panics if no request is active or the interrupt fired at the wrong
    /// time (kernel/driver bug).
    pub fn complete(&mut self, now: SimTime) -> (IoDone, Option<Started>) {
        let (finish, done) = self
            .active
            .take()
            .expect("completion without active request");
        assert_eq!(finish, now, "completion interrupt at the wrong time");
        let next = self.start_next(now);
        (done, next)
    }

    /// Picks the next queued request by `disksort`: the lowest sector at
    /// or beyond the sweep position, wrapping to the lowest overall.
    fn pick_next(&mut self) -> Option<Pending> {
        if self.queue.is_empty() {
            return None;
        }
        let sweep = self.head;
        let idx = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, p)| p.sector >= sweep)
            .min_by_key(|(_, p)| p.sector)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                self.queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, p)| p.sector)
                    .map(|(i, _)| i)
                    .expect("queue is non-empty")
            });
        Some(self.queue.swap_remove(idx))
    }

    fn start_next(&mut self, now: SimTime) -> Option<Started> {
        let req = self.pick_next()?;
        self.use_clock += 1;
        let nsec = (req.len / SECTOR_SIZE) as u64;
        let done = match req.op {
            IoOp::Read => self.service_read(now, req.token, req.sector, nsec, req.len),
            IoOp::Write => self.service_write(
                now,
                req.token,
                req.sector,
                nsec,
                req.len,
                req.data.as_deref().expect("write has data"),
            ),
        };
        self.head = req.sector + nsec;
        let svc = done.0.since(now);
        self.busy += svc;
        self.service_hist.record(svc.as_ns());
        let started = Started {
            token: req.token,
            finish: done.0,
        };
        self.active = Some((done.0, done.1));
        Some(started)
    }

    fn host_cpu(&self, len: usize) -> Dur {
        Dur::for_bytes(len as u64, self.profile.host_copy_bps)
    }

    fn service_read(
        &mut self,
        start: SimTime,
        token: u64,
        sector: u64,
        nsec: u64,
        len: usize,
    ) -> (SimTime, IoDone) {
        let end = sector + nsec;
        let use_clock = self.use_clock;
        let fd = self.decide_fault(false, sector, nsec);

        // Look for a read-ahead segment covering (or about to cover) the
        // range: the request start must be retained and inside the fill cap.
        let hit = self
            .windows
            .iter()
            .position(|w| sector >= w.lo && sector <= self.fill_at(w, start) && end <= w.cap);

        let (finish, cache_hit) = if let Some(i) = hit {
            // Served from cache; if the fill has not reached the end of the
            // range yet, wait for the media to catch up.
            let catch_up = self.time_fill_reaches(&self.windows[i], end);
            let ready = if catch_up > start { catch_up } else { start };
            let finish =
                ready + self.profile.per_request + Dur::for_bytes(len as u64, self.profile.bus_bps);
            let seg_cap = self.seg_capacity_sectors();
            let w = &mut self.windows[i];
            w.cap = (end + seg_cap).min(self.profile.sectors);
            w.lo = w.lo.max(end.saturating_sub(seg_cap));
            w.last_used = use_clock;
            self.stats.cache_hits += 1;
            (finish, true)
        } else {
            // Mechanical access: seek + rotation + media transfer.
            let dist = self.head.abs_diff(sector);
            let mech = self.seek_time(dist) + self.profile.avg_rotation;
            let finish = start
                + self.profile.per_request
                + mech
                + Dur::for_bytes(len as u64, self.profile.media_bps);
            self.stats.mechanical += 1;
            // The drive continues reading sequentially into a (new or LRU)
            // cache segment from the end of this request.
            if self.seg_capacity_sectors() > 0 {
                let w = RaWindow {
                    lo: end,
                    fill: end,
                    fill_time: finish,
                    cap: (end + self.seg_capacity_sectors()).min(self.profile.sectors),
                    last_used: use_clock,
                };
                if self.windows.len() < self.profile.cache_segments.max(1) {
                    self.windows.push(w);
                } else if let Some(victim) = self.windows.iter_mut().min_by_key(|w| w.last_used) {
                    *victim = w;
                }
            }
            (finish, false)
        };

        // A faulted read spent its service time (plus any spike) but
        // delivers no data: the interrupt reports B_ERROR instead.
        let data = if fd.error {
            None
        } else {
            Some(self.store.read_vec(sector * SECTOR_SIZE as u64, len))
        };
        (
            finish + fd.extra_latency,
            IoDone {
                token,
                host_cpu: self.host_cpu(len),
                data,
                cache_hit,
                error: fd.error,
            },
        )
    }

    fn service_write(
        &mut self,
        start: SimTime,
        token: u64,
        sector: u64,
        nsec: u64,
        len: usize,
        data: &[u8],
    ) -> (SimTime, IoDone) {
        // Sequential writes catch the next sector without seek or
        // rotational delay (track skew and drive write staging hide the
        // gap); any other write pays seek + rotation.
        let dist = self.head.abs_diff(sector);
        let sequential = dist == 0;
        let mech = if sequential {
            Dur::ZERO
        } else {
            self.seek_time(dist) + self.profile.avg_rotation
        };
        if !sequential {
            self.stats.mechanical += 1;
        }
        let finish = start
            + self.profile.per_request
            + mech
            + Dur::for_bytes(len as u64, self.profile.media_bps);

        // A write lands on the medium and invalidates any overlapping
        // read-ahead data. A faulted write persists only its torn-sector
        // prefix (possibly nothing) before the error.
        let fd = self.decide_fault(true, sector, nsec);
        if fd.error {
            let keep = fd.torn_sectors.unwrap_or(0) as usize * SECTOR_SIZE;
            if keep > 0 {
                self.store.write(sector * SECTOR_SIZE as u64, &data[..keep]);
            }
        } else {
            self.store.write(sector * SECTOR_SIZE as u64, data);
        }
        let end = sector + nsec;
        self.windows.retain(|w| end <= w.lo || sector >= w.cap);

        (
            finish + fd.extra_latency,
            IoDone {
                token,
                host_cpu: self.host_cpu(len),
                data: None,
                cache_hit: false,
                error: fd.error,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DiskProfile;

    const BLK: usize = 8192;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Dur::from_ms(ms)
    }

    /// Runs one request to completion on an idle drive, returning
    /// `(finish, done)`.
    fn run_one(
        d: &mut Disk,
        now: SimTime,
        op: IoOp,
        sector: u64,
        data: Option<Vec<u8>>,
    ) -> (SimTime, IoDone) {
        let started = d.submit(now, 1, op, sector, BLK, data).expect("idle drive");
        let (done, next) = d.complete(started.finish);
        assert!(next.is_none());
        (started.finish, done)
    }

    #[test]
    fn first_read_is_mechanical() {
        let mut d = Disk::new(DiskProfile::rz56());
        let (finish, done) = run_one(&mut d, SimTime::ZERO, IoOp::Read, 1000, None);
        assert!(!done.cache_hit);
        let min = DiskProfile::rz56().avg_rotation
            + Dur::for_bytes(BLK as u64, DiskProfile::rz56().media_bps);
        assert!(finish.since(SimTime::ZERO) >= min);
    }

    #[test]
    fn sequential_read_hits_readahead_cache() {
        let mut d = Disk::new(DiskProfile::rz56());
        let (f1, _) = run_one(&mut d, SimTime::ZERO, IoOp::Read, 0, None);
        let later = f1 + Dur::from_ms(50);
        let (f2, done) = run_one(&mut d, later, IoOp::Read, 16, None);
        assert!(done.cache_hit);
        assert!(f2.since(later) < DiskProfile::rz56().avg_rotation);
    }

    #[test]
    fn sequential_reader_throttled_by_media_rate() {
        let mut d = Disk::new(DiskProfile::rz56());
        let mut now = SimTime::ZERO;
        let total_blocks = 64u64; // 512 KB, well past the 64 KB cache
        for i in 0..total_blocks {
            let (f, _) = run_one(&mut d, now, IoOp::Read, i * 16, None);
            now = f;
        }
        let elapsed = now.since(SimTime::ZERO).as_secs_f64();
        let rate = (total_blocks * BLK as u64) as f64 / elapsed;
        let media = DiskProfile::rz56().media_bps as f64;
        assert!(rate <= media * 1.05, "rate {rate} exceeds media {media}");
        assert!(rate >= media * 0.5, "rate {rate} implausibly slow");
    }

    #[test]
    fn random_reads_pay_seek_each_time() {
        let mut d = Disk::new(DiskProfile::rz56());
        let (f1, _) = run_one(&mut d, SimTime::ZERO, IoOp::Read, 0, None);
        let (f2, done) = run_one(&mut d, f1, IoOp::Read, 1_000_000, None);
        assert!(!done.cache_hit);
        assert!(f2.since(f1) > DiskProfile::rz56().avg_rotation);
    }

    #[test]
    fn write_read_roundtrip_preserves_data() {
        let mut d = Disk::new(DiskProfile::rz58());
        let data: Vec<u8> = (0..BLK).map(|i| (i % 251) as u8).collect();
        let (f1, _) = run_one(&mut d, SimTime::ZERO, IoOp::Write, 64, Some(data.clone()));
        let (_, done) = run_one(&mut d, f1, IoOp::Read, 64, None);
        assert_eq!(done.data.unwrap(), data);
    }

    #[test]
    fn sequential_writes_stream_without_rotation() {
        let mut d = Disk::new(DiskProfile::rz58());
        let data = vec![0u8; BLK];
        let (f1, _) = run_one(&mut d, SimTime::ZERO, IoOp::Write, 0, Some(data.clone()));
        let (f2, _) = run_one(&mut d, f1, IoOp::Write, 16, Some(data.clone()));
        let xfer = Dur::for_bytes(BLK as u64, DiskProfile::rz58().media_bps);
        assert!(f2.since(f1) < xfer + Dur::from_ms(2));
        // A later sequential continuation also streams (write staging
        // hides pacing gaps).
        let later = f2 + Dur::from_ms(20);
        let (f3, _) = run_one(&mut d, later, IoOp::Write, 32, Some(data));
        assert!(f3.since(later) < xfer + Dur::from_ms(2));
    }

    #[test]
    fn busy_drive_queues_and_completes_in_turn() {
        let mut d = Disk::new(DiskProfile::rz56());
        let s1 = d
            .submit(SimTime::ZERO, 1, IoOp::Read, 0, BLK, None)
            .unwrap();
        // Second request queues while the first transfers.
        assert!(d
            .submit(SimTime::ZERO, 2, IoOp::Read, 1_000_000, BLK, None)
            .is_none());
        assert_eq!(d.queue_depth(), 1);
        let (done1, next) = d.complete(s1.finish);
        assert_eq!(done1.token, 1);
        let s2 = next.expect("queued request starts");
        assert_eq!(s2.token, 2);
        assert!(s2.finish > s1.finish);
        let (done2, next) = d.complete(s2.finish);
        assert_eq!(done2.token, 2);
        assert!(next.is_none());
    }

    #[test]
    fn disksort_orders_a_backwards_batch() {
        // Tokens 9..1 submitted in descending sector order while busy;
        // the elevator services them ascending, so consecutive-sector
        // writes stream without rotation.
        let mut d = Disk::new(DiskProfile::rz58());
        let data = vec![0u8; BLK];
        let s0 = d
            .submit(SimTime::ZERO, 0, IoOp::Write, 0, BLK, Some(data.clone()))
            .unwrap();
        for i in (1..=5u64).rev() {
            assert!(d
                .submit(
                    SimTime::ZERO,
                    i,
                    IoOp::Write,
                    i * 16,
                    BLK,
                    Some(data.clone())
                )
                .is_none());
        }
        let mut order = Vec::new();
        let mut next = {
            let (_, n) = d.complete(s0.finish);
            n
        };
        while let Some(s) = next {
            order.push(s.token);
            let (done, n) = d.complete(s.finish);
            assert_eq!(done.token, s.token);
            next = n;
        }
        assert_eq!(order, vec![1, 2, 3, 4, 5], "elevator order");
        assert_eq!(
            d.stats().mechanical,
            0,
            "every write streams in elevator order"
        );
    }

    #[test]
    fn write_invalidates_overlapping_readahead() {
        let mut d = Disk::new(DiskProfile::rz56());
        let (f1, _) = run_one(&mut d, SimTime::ZERO, IoOp::Read, 0, None);
        let later = f1 + Dur::from_ms(50);
        let data = vec![1u8; BLK];
        let (f2, _) = run_one(&mut d, later, IoOp::Write, 16, Some(data.clone()));
        let (_, done) = run_one(&mut d, f2, IoOp::Read, 16, None);
        assert_eq!(done.data.unwrap(), data);
    }

    #[test]
    fn host_cpu_charged_per_byte() {
        let mut d = Disk::new(DiskProfile::rz56());
        let (_, done) = run_one(&mut d, SimTime::ZERO, IoOp::Read, 0, None);
        assert_eq!(
            done.host_cpu,
            Dur::for_bytes(BLK as u64, DiskProfile::rz56().host_copy_bps)
        );
    }

    #[test]
    fn rz58_multiple_segments_survive_interleaving() {
        let mut d = Disk::new(DiskProfile::rz58());
        let s1 = 0u64;
        let s2 = 1_000_000u64;
        let (f1, _) = run_one(&mut d, t(0), IoOp::Read, s1, None);
        let (f2, _) = run_one(&mut d, f1, IoOp::Read, s2, None);
        let later = f2 + Dur::from_ms(100);
        let (f3, c) = run_one(&mut d, later, IoOp::Read, s1 + 16, None);
        let (_, e) = run_one(&mut d, f3, IoOp::Read, s2 + 16, None);
        assert!(c.cache_hit, "stream 1 lost its segment");
        assert!(e.cache_hit, "stream 2 lost its segment");
    }

    #[test]
    fn rz56_single_segment_thrashes_on_interleaving() {
        let mut d = Disk::new(DiskProfile::rz56());
        let (f1, _) = run_one(&mut d, t(0), IoOp::Read, 0, None);
        let (f2, _) = run_one(&mut d, f1, IoOp::Read, 1_000_000, None);
        let later = f2 + Dur::from_ms(100);
        let (_, c) = run_one(&mut d, later, IoOp::Read, 16, None);
        assert!(!c.cache_hit, "single segment should have been replaced");
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_length_rejected() {
        let mut d = Disk::new(DiskProfile::rz56());
        d.submit(SimTime::ZERO, 1, IoOp::Read, 0, 100, None);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn out_of_range_rejected() {
        let mut d = Disk::new(DiskProfile::rz56());
        let sectors = DiskProfile::rz56().sectors;
        d.submit(SimTime::ZERO, 1, IoOp::Read, sectors - 1, BLK, None);
    }

    #[test]
    #[should_panic(expected = "without active")]
    fn stray_completion_rejected() {
        let mut d = Disk::new(DiskProfile::rz56());
        d.complete(SimTime::ZERO);
    }

    #[test]
    fn faulted_read_reports_error_without_data() {
        use crate::fault::{FaultOp, FaultPlan};
        let mut d = Disk::new(DiskProfile::rz56());
        d.set_fault_plan(Some(FaultPlan::new(1).transient_eio_at(
            FaultOp::Read,
            0,
            1,
        )));
        let (_, done) = run_one(&mut d, SimTime::ZERO, IoOp::Read, 0, None);
        assert!(done.error);
        assert!(done.data.is_none());
        let (_, done) = run_one(&mut d, t(100), IoOp::Read, 0, None);
        assert!(!done.error, "transient fault clears on retry");
        assert!(done.data.is_some());
    }

    #[test]
    fn latency_spike_delays_completion() {
        use crate::fault::{FaultOp, FaultPlan};
        let mut clean = Disk::new(DiskProfile::rz56());
        let (f0, _) = run_one(&mut clean, SimTime::ZERO, IoOp::Read, 0, None);
        let mut d = Disk::new(DiskProfile::rz56());
        d.set_fault_plan(Some(FaultPlan::new(1).latency_spike(
            FaultOp::Read,
            1.0,
            Dur::from_ms(40),
        )));
        let (f1, done) = run_one(&mut d, SimTime::ZERO, IoOp::Read, 0, None);
        assert!(!done.error);
        assert_eq!(f1, f0 + Dur::from_ms(40));
    }

    #[test]
    fn torn_write_persists_prefix_then_errors() {
        use crate::fault::FaultPlan;
        let mut d = Disk::new(DiskProfile::rz58());
        let base = vec![0xAAu8; BLK];
        let (f1, _) = run_one(&mut d, SimTime::ZERO, IoOp::Write, 0, Some(base));
        d.set_fault_plan(Some(FaultPlan::new(1).torn_write(0, 4)));
        let (f2, done) = run_one(&mut d, f1, IoOp::Write, 0, Some(vec![0x55u8; BLK]));
        assert!(done.error);
        let on_disk = d.store().read_vec(0, BLK);
        assert_eq!(
            &on_disk[..4 * SECTOR_SIZE],
            &vec![0x55u8; 4 * SECTOR_SIZE][..]
        );
        assert_eq!(
            &on_disk[4 * SECTOR_SIZE..],
            &vec![0xAAu8; BLK - 4 * SECTOR_SIZE][..]
        );
        // The tear is one-shot: the retry lands cleanly.
        let (_, done) = run_one(&mut d, f2, IoOp::Write, 0, Some(vec![0x55u8; BLK]));
        assert!(!done.error);
        assert_eq!(d.store().read_vec(0, BLK), vec![0x55u8; BLK]);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Disk::new(DiskProfile::rz56());
        let (f1, _) = run_one(&mut d, SimTime::ZERO, IoOp::Read, 0, None);
        run_one(&mut d, f1 + Dur::from_ms(50), IoOp::Read, 16, None);
        let s = d.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.mechanical, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.bytes, 2 * BLK as u64);
    }

    #[test]
    fn busy_time_and_service_hist_track_service_windows() {
        let mut d = Disk::new(DiskProfile::rz56());
        let (f1, _) = run_one(&mut d, SimTime::ZERO, IoOp::Read, 0, None);
        let gap = f1 + Dur::from_ms(50);
        let (f2, _) = run_one(&mut d, gap, IoOp::Read, 16, None);
        // Busy time is the sum of the two service windows, excluding
        // the idle gap between them.
        assert_eq!(d.busy_time(), f1.since(SimTime::ZERO) + f2.since(gap));
        assert_eq!(d.service_hist().count(), 2);
        assert_eq!(
            d.service_hist().max(),
            Some(f1.since(SimTime::ZERO).as_ns())
        );
    }
}
