//! The RAM disk driver (§6.1).
//!
//! "The ram disk driver uses 16 MB of statically allocated memory from the
//! kernel's BSS region." A transfer has no mechanics at all: it is a CPU
//! `bcopy` between the BSS region and the caller's buffer, charged at the
//! uncached streaming rate (16 MB does not fit the 64 KB data cache).
//!
//! The driver completes requests *synchronously in the caller's context* —
//! exactly like the real pseudo-disk: the strategy routine does the copy
//! and calls `biodone` before returning. Whose CPU that is depends on who
//! called strategy (a user process doing `read(2)`, or the splice engine's
//! deferred kernel work), which is what makes the RAM-disk rows of Table 1
//! come out differently for CP and SCP.

use ksim::{Dur, Hist};

use crate::fault::{FaultDecision, FaultPlan};
use crate::profile::{DiskProfile, SECTOR_SIZE};
use crate::store::SparseStore;

/// Cumulative RAM-disk counters.
#[derive(Default, Clone, Copy, Debug)]
pub struct RamDiskStats {
    /// Requests serviced.
    pub requests: u64,
    /// Bytes copied in or out.
    pub bytes: u64,
}

/// The 16 MB kernel-memory disk.
pub struct RamDisk {
    profile: DiskProfile,
    store: SparseStore,
    stats: RamDiskStats,
    /// Accumulated `bcopy` CPU charged to callers (the RAM disk's
    /// "busy" time is exactly the host CPU it consumed).
    busy: Dur,
    /// Per-request copy-cost distribution (ns).
    service_hist: Hist,
    fault: Option<FaultPlan>,
}

impl RamDisk {
    /// Creates a RAM disk from a profile (normally [`DiskProfile::ramdisk`]).
    ///
    /// # Panics
    ///
    /// Panics if the profile is not a RAM-kind profile.
    pub fn new(profile: DiskProfile) -> Self {
        assert_eq!(
            profile.kind,
            crate::profile::DiskKind::Ram,
            "RamDisk requires a RAM profile"
        );
        let store = SparseStore::new(profile.bytes());
        RamDisk {
            profile,
            store,
            stats: RamDiskStats::default(),
            busy: Dur::ZERO,
            service_hist: Hist::new(),
            fault: None,
        }
    }

    /// Installs (or clears) the fault plan consulted by the checked
    /// access paths. Plain [`RamDisk::read`]/[`RamDisk::write`] and the
    /// direct store accessors bypass it.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The installed fault plan, if any (to inspect `injected()`).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The profile this RAM disk was built from.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RamDiskStats {
        self.stats
    }

    /// Accumulated driver `bcopy` time (the device's busy time).
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Per-request copy-cost distribution (ns).
    pub fn service_hist(&self) -> &Hist {
        &self.service_hist
    }

    /// Direct medium access bypassing cost accounting (`mkfs`, tests).
    pub fn store(&self) -> &SparseStore {
        &self.store
    }

    /// Direct mutable medium access bypassing cost accounting.
    pub fn store_mut(&mut self) -> &mut SparseStore {
        &mut self.store
    }

    /// CPU cost of moving `len` bytes through the driver.
    pub fn copy_cost(&self, len: usize) -> Dur {
        Dur::for_bytes(len as u64, self.profile.host_copy_bps)
    }

    /// Reads `len` bytes at `sector`, returning the data and the CPU cost
    /// of the driver `bcopy`. Completion is immediate (synchronous).
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range requests.
    pub fn read(&mut self, sector: u64, len: usize) -> (Vec<u8>, Dur) {
        assert!(
            len > 0 && len.is_multiple_of(SECTOR_SIZE),
            "unaligned length {len}"
        );
        let data = self.store.read_vec(sector * SECTOR_SIZE as u64, len);
        self.stats.requests += 1;
        self.stats.bytes += len as u64;
        let cost = self.copy_cost(len);
        self.busy += cost;
        self.service_hist.record(cost.as_ns());
        (data, cost)
    }

    /// Writes `data` at `sector`, returning the CPU cost of the driver
    /// `bcopy`. Completion is immediate (synchronous).
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range requests.
    pub fn write(&mut self, sector: u64, data: &[u8]) -> Dur {
        assert!(
            !data.is_empty() && data.len().is_multiple_of(SECTOR_SIZE),
            "unaligned length {}",
            data.len()
        );
        self.store.write(sector * SECTOR_SIZE as u64, data);
        self.stats.requests += 1;
        self.stats.bytes += data.len() as u64;
        let cost = self.copy_cost(data.len());
        self.busy += cost;
        self.service_hist.record(cost.as_ns());
        cost
    }

    /// Fault-aware read: like [`RamDisk::read`], but consults the
    /// installed [`FaultPlan`]. On error the data is not returned (the
    /// transfer never reached the caller's buffer) but the `bcopy` CPU
    /// was still spent; latency spikes stretch the returned cost.
    ///
    /// Returns `(data, cost, error)`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range requests.
    pub fn read_checked(&mut self, sector: u64, len: usize) -> (Option<Vec<u8>>, Dur, bool) {
        let d = self.decide(false, sector, len);
        let (data, cost) = self.read(sector, len);
        let cost = cost + d.extra_latency;
        if d.error {
            (None, cost, true)
        } else {
            (Some(data), cost, false)
        }
    }

    /// Fault-aware write: like [`RamDisk::write`], but consults the
    /// installed [`FaultPlan`]. A torn write persists only the decided
    /// sector prefix before reporting the error.
    ///
    /// Returns `(cost, error)`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range requests.
    pub fn write_checked(&mut self, sector: u64, data: &[u8]) -> (Dur, bool) {
        let d = self.decide(true, sector, data.len());
        if d.error {
            let keep = d.torn_sectors.unwrap_or(0) as usize * SECTOR_SIZE;
            if keep > 0 {
                self.store.write(sector * SECTOR_SIZE as u64, &data[..keep]);
            }
            self.stats.requests += 1;
            // The bcopy CPU was spent even though the write tore; the
            // injected extra latency is not device busy time.
            let cost = self.copy_cost(data.len());
            self.busy += cost;
            self.service_hist.record(cost.as_ns());
            (cost + d.extra_latency, true)
        } else {
            (self.write(sector, data) + d.extra_latency, false)
        }
    }

    fn decide(&mut self, write: bool, sector: u64, len: usize) -> FaultDecision {
        match &mut self.fault {
            Some(plan) => plan.decide(write, sector, (len / SECTOR_SIZE) as u64),
            None => FaultDecision::CLEAN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut rd = RamDisk::new(DiskProfile::ramdisk());
        let data: Vec<u8> = (0..8192).map(|i| (i * 7 % 256) as u8).collect();
        rd.write(32, &data);
        let (got, _) = rd.read(32, 8192);
        assert_eq!(got, data);
    }

    #[test]
    fn copy_cost_matches_profile_rate() {
        let rd = RamDisk::new(DiskProfile::ramdisk());
        let cost = rd.copy_cost(8192);
        assert_eq!(
            cost,
            Dur::for_bytes(8192, DiskProfile::ramdisk().host_copy_bps)
        );
        // 8 KB at ~10 MB/s is most of a millisecond: the dominant
        // per-block cost in the RAM rows of the paper's tables.
        assert!(cost > Dur::from_us(600) && cost < Dur::from_us(1000));
    }

    #[test]
    fn stats_count_both_directions() {
        let mut rd = RamDisk::new(DiskProfile::ramdisk());
        rd.write(0, &vec![0u8; 512]);
        rd.read(0, 512);
        assert_eq!(rd.stats().requests, 2);
        assert_eq!(rd.stats().bytes, 1024);
    }

    #[test]
    fn busy_time_sums_copy_costs() {
        let mut rd = RamDisk::new(DiskProfile::ramdisk());
        rd.write(0, &vec![0u8; 8192]);
        rd.read(0, 8192);
        assert_eq!(rd.busy_time(), rd.copy_cost(8192) + rd.copy_cost(8192));
        assert_eq!(rd.service_hist().count(), 2);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_rejected() {
        let mut rd = RamDisk::new(DiskProfile::ramdisk());
        rd.read(0, 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut rd = RamDisk::new(DiskProfile::ramdisk());
        let sectors = DiskProfile::ramdisk().sectors;
        rd.read(sectors, 512);
    }

    #[test]
    #[should_panic(expected = "RAM profile")]
    fn scsi_profile_rejected() {
        RamDisk::new(DiskProfile::rz56());
    }

    #[test]
    fn checked_read_fails_then_recovers_per_plan() {
        use crate::fault::{FaultOp, FaultPlan};
        let mut rd = RamDisk::new(DiskProfile::ramdisk());
        rd.set_fault_plan(Some(FaultPlan::new(3).transient_eio_at(
            FaultOp::Read,
            16,
            1,
        )));
        rd.write(16, &vec![7u8; 8192]);
        let (data, _, err) = rd.read_checked(16, 8192);
        assert!(err && data.is_none());
        let (data, _, err) = rd.read_checked(16, 8192);
        assert!(!err);
        assert_eq!(data.unwrap(), vec![7u8; 8192]);
        assert_eq!(rd.fault_plan().unwrap().injected(), 1);
    }

    #[test]
    fn checked_torn_write_persists_only_prefix() {
        use crate::fault::FaultPlan;
        let mut rd = RamDisk::new(DiskProfile::ramdisk());
        rd.write(0, &vec![0xAAu8; 8192]);
        rd.set_fault_plan(Some(FaultPlan::new(3).torn_write(0, 2)));
        let (_, err) = rd.write_checked(0, &vec![0x55u8; 8192]);
        assert!(err);
        let (got, _) = rd.read(0, 8192);
        assert_eq!(&got[..2 * SECTOR_SIZE], &vec![0x55u8; 2 * SECTOR_SIZE][..]);
        assert_eq!(
            &got[2 * SECTOR_SIZE..],
            &vec![0xAAu8; 8192 - 2 * SECTOR_SIZE][..]
        );
    }
}
