#![warn(missing_docs)]

//! Hardware models for the simulated DECstation 5000/200.
//!
//! This crate owns every *timing* and *capacity* fact about the simulated
//! machine, so the rest of the system can be written against mechanisms
//! rather than magic constants:
//!
//! * [`profile`] — the machine cost table ([`MachineProfile`]) built from
//!   the numbers the paper reports in §6.1 (memory bandwidths, clock rate)
//!   plus era-typical kernel path costs, and per-disk characteristic tables
//!   ([`DiskProfile`]) for the RZ56, RZ58 and the RAM disk.
//! * [`store`] — a sparse byte store used as the persistent medium of every
//!   device; all devices carry real data so copies can be verified.
//! * [`disk`] — the SCSI disk model: seek/rotation/media-rate mechanics,
//!   on-drive read-ahead cache (64 KB on the RZ56; 256 KB in 4 segments on
//!   the RZ58), FIFO service, and the *pseudo-DMA* CPU cost of the
//!   DECstation's bounce-buffer SCSI path (the paper itself flags its SCSI
//!   driver as a bottleneck, §6.4).
//! * [`ramdisk`] — the 16 MB RAM disk driver whose "transfer" is a CPU
//!   `bcopy` from statically allocated kernel memory.
//! * [`fault`] — deterministic, seedable fault injection ([`FaultPlan`]):
//!   transient EIO, permanent bad blocks, torn writes, latency spikes,
//!   keyed by (device, sector, op, occurrence) so failures replay.

pub mod disk;
pub mod fault;
pub mod profile;
pub mod ramdisk;
pub mod store;

pub use disk::{Disk, IoDone, IoOp};
pub use fault::{FaultDecision, FaultOp, FaultPlan};
pub use profile::{CopyKind, DiskKind, DiskProfile, MachineProfile, SECTOR_SIZE};
pub use ramdisk::RamDisk;
pub use store::SparseStore;
