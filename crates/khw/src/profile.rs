//! Machine and disk characteristic tables.
//!
//! Everything here is *data*: the paper's §6.1 hardware description turned
//! into numbers the simulator consumes. Experiments perturb copies of these
//! profiles (ablation benches), so nothing in the kernel reads a constant
//! that is not in a profile.
//!
//! # Calibration sources
//!
//! * Memory bandwidths: §6.1 — "cached memory read throughput is 21 MB/s,
//!   uncached CPU read rate is 10 MB/s, and partial-page write throughput
//!   is 20 MB/s". A `bcopy` both reads and writes, so its rate is the
//!   harmonic combination of a read and a write stream; streaming through
//!   a multi-megabyte region defeats the 64 KB data cache, which is why the
//!   driver-level copy rate sits near the uncached combination.
//! * RZ56/RZ58 mechanics: §6.1 and [DEC92] — rotational latency, seek, peak
//!   media rate, read-ahead cache size and segmentation.
//! * Kernel path costs (syscall, context switch, interrupt service, buffer
//!   cache bookkeeping): era-typical values for a 25 MHz R3000 running a
//!   4.2BSD-derived kernel; these are the calibration knobs used to land
//!   the Table 1/Table 2 shapes and are exercised by the ablation benches.

use ksim::Dur;

/// Device sector size in bytes (`DEV_BSIZE`).
pub const SECTOR_SIZE: usize = 512;

/// What kind of device a [`DiskProfile`] describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskKind {
    /// Mechanical SCSI disk with seek/rotation/media mechanics.
    Scsi,
    /// Kernel-memory RAM disk: transfers are CPU `bcopy`s.
    Ram,
}

/// Category of a modelled memory copy, for cost selection and accounting.
///
/// The whole point of splice is which of these happen and which do not, so
/// every byte moved in the simulation is tagged with one of these.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyKind {
    /// Kernel → user transfer (`copyout`), e.g. `read(2)` filling a user
    /// buffer.
    Copyout,
    /// User → kernel transfer (`copyin`), e.g. `write(2)` draining one.
    Copyin,
    /// Device driver data movement (RAM-disk `bcopy`, SCSI pseudo-DMA
    /// bounce-buffer copy).
    Driver,
    /// Kernel buffer to kernel buffer (what splice's shared data area
    /// avoids).
    CacheToCache,
    /// Network stack copy (socket buffer ↔ mbuf path).
    Net,
}

/// Per-disk characteristics.
#[derive(Clone, Debug)]
pub struct DiskProfile {
    /// Human-readable model name ("RZ56").
    pub name: &'static str,
    /// Mechanical vs RAM device.
    pub kind: DiskKind,
    /// Capacity in sectors.
    pub sectors: u64,
    /// Average seek time (used for long seeks).
    pub avg_seek: Dur,
    /// Track-to-track seek time (short seeks).
    pub track_seek: Dur,
    /// Average rotational latency (half a revolution).
    pub avg_rotation: Dur,
    /// Sustained to/from-media transfer rate, bytes/s.
    pub media_bps: u64,
    /// On-drive read-ahead cache size in bytes (0 = none).
    pub cache_bytes: usize,
    /// Number of independent read-ahead segments the cache is divided into.
    pub cache_segments: usize,
    /// Host transfer rate when the request is satisfied from the drive
    /// cache, bytes/s (SCSI bus / controller limited).
    pub bus_bps: u64,
    /// Fixed controller + command overhead per request.
    pub per_request: Dur,
    /// CPU cost per transferred byte on the host side, expressed as a
    /// bytes/s rate. On the DECstation 5000/200 the SCSI path moves data
    /// through a bounce buffer with a CPU copy (pseudo-DMA), so every disk
    /// transfer charges host CPU at this rate. For the RAM disk this *is*
    /// the transfer (driver `bcopy` of uncached kernel BSS).
    pub host_copy_bps: u64,
}

impl DiskProfile {
    /// Digital RZ56: 665 MB, 3600 rpm-class drive.
    ///
    /// §6.1: 8.3 ms average rotational latency, 16 ms average seek,
    /// 1.66 MB/s peak media rate, 64 KB read-ahead cache (one segment).
    pub fn rz56() -> Self {
        DiskProfile {
            name: "RZ56",
            kind: DiskKind::Scsi,
            sectors: 1_299_174, // 665 MB / 512
            avg_seek: Dur::from_us(16_000),
            track_seek: Dur::from_us(2_500),
            avg_rotation: Dur::from_us(8_300),
            media_bps: 1_660_000,
            cache_bytes: 64 * 1024,
            cache_segments: 1,
            bus_bps: 2_300_000,
            per_request: Dur::from_us(900),
            host_copy_bps: 10_000_000,
        }
    }

    /// Digital RZ58: 1.38 GB, 5400 rpm-class drive.
    ///
    /// §6.1: 5.6 ms average rotational latency, <12.5 ms average seek,
    /// ~2.6 MB/s media rate, 256 KB read-ahead cache in 4 segments.
    pub fn rz58() -> Self {
        DiskProfile {
            name: "RZ58",
            kind: DiskKind::Scsi,
            sectors: 2_698_061, // 1.38 GB / 512
            avg_seek: Dur::from_us(12_500),
            track_seek: Dur::from_us(2_000),
            avg_rotation: Dur::from_us(5_600),
            media_bps: 2_600_000,
            cache_bytes: 256 * 1024,
            cache_segments: 4,
            bus_bps: 3_500_000,
            per_request: Dur::from_us(700),
            host_copy_bps: 25_000_000,
        }
    }

    /// The paper's RAM disk: 16 MB of statically allocated kernel BSS with
    /// a block/character device interface (§6.1). Transfers are driver
    /// `bcopy`s at the uncached streaming rate; there are no mechanics.
    pub fn ramdisk() -> Self {
        DiskProfile {
            name: "RAM",
            kind: DiskKind::Ram,
            sectors: (16 * 1024 * 1024) / SECTOR_SIZE as u64,
            avg_seek: Dur::ZERO,
            track_seek: Dur::ZERO,
            avg_rotation: Dur::ZERO,
            media_bps: u64::MAX / 2,
            cache_bytes: 0,
            cache_segments: 1,
            bus_bps: u64::MAX / 2,
            per_request: Dur::ZERO,
            host_copy_bps: 10_000_000,
        }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.sectors * SECTOR_SIZE as u64
    }
}

/// The machine-wide cost table.
#[derive(Clone, Debug)]
pub struct MachineProfile {
    /// Clock interrupt frequency (Ultrix on DECstations ran HZ = 256).
    pub hz: u64,
    /// `bcopy` rate for copies whose working set sits in the data cache
    /// (small, reused buffers), bytes/s.
    pub bcopy_cached_bps: u64,
    /// `bcopy` rate for streaming copies that miss the 64 KB data cache
    /// (multi-megabyte transfers), bytes/s.
    pub bcopy_uncached_bps: u64,
    /// Fixed CPU cost of entering and leaving the kernel for one system
    /// call (trap, dispatch, return).
    pub syscall: Dur,
    /// Fixed CPU cost of a full process context switch.
    pub ctx_switch: Dur,
    /// Fixed CPU cost of taking and dismissing one device interrupt.
    pub interrupt: Dur,
    /// CPU cost of one buffer-cache bookkeeping operation (hash lookup,
    /// free-list manipulation: the fixed part of `getblk`/`brelse`).
    pub buf_op: Dur,
    /// CPU cost of the hardclock handler, charged every tick.
    pub hardclock: Dur,
    /// CPU cost of dispatching one callout entry from softclock.
    pub callout_dispatch: Dur,
    /// CPU cost of one splice handler invocation (read handler, write
    /// handler, completion handler) excluding buffer-cache bookkeeping,
    /// which is charged separately per `buf_op`.
    pub splice_handler: Dur,
    /// Per-tick budget of *deferred kernel work* (splice handler chains,
    /// driver strategy calls made from completion context) that may run at
    /// kernel priority; work beyond the budget is deferred and only runs
    /// when no user process is runnable. This models the way timeshared
    /// kernels keep charge-free asynchronous kernel work from starving
    /// paying processes (the same discipline modern kernels implement with
    /// `ksoftirqd`), and is the mechanism behind the paper's observation
    /// that a splice leaves most of the CPU to user processes while still
    /// saturating the data path on an idle machine.
    pub softwork_budget_per_tick: Dur,
    /// Scheduling quantum for round-robin user scheduling.
    pub quantum: Dur,
    /// CPU cost of delivering a signal to a process.
    pub signal_delivery: Dur,
    /// Extra CPU per page of a user/kernel copy (`copyin`/`copyout`
    /// validity checks and page-boundary handling) on top of the raw
    /// `bcopy` bandwidth.
    pub user_copy_page_overhead: Dur,
    /// CPU cost of a page fault + mapping update (mmap-based baseline).
    pub page_fault: Dur,
    /// Page size (for the mmap baseline).
    pub page_size: usize,
    /// CPU cost of UDP/IP protocol processing per packet.
    pub udp_packet: Dur,
    /// Network copy rate (socket buffer ↔ mbuf), bytes/s.
    pub net_copy_bps: u64,
    /// CPU cost of validating and queueing one splice-ring submission
    /// entry (copyin of the SQE, descriptor checks) — charged per entry
    /// on top of the single `syscall` crossing for the whole batch.
    pub ring_submit_entry: Dur,
    /// CPU cost of copying one splice-ring completion entry out to the
    /// reaper — charged per entry on top of the single `syscall`
    /// crossing for the whole batch.
    pub ring_reap_entry: Dur,
}

impl MachineProfile {
    /// DECstation 5000/200 ("3MAX"): 25 MHz R3000, 32 MB memory,
    /// 64 KB I + 64 KB write-through D cache (§6.1).
    pub fn decstation_5000_200() -> Self {
        MachineProfile {
            hz: 256,
            // Read at 21 MB/s + write at 20 MB/s, harmonically combined.
            bcopy_cached_bps: 10_200_000,
            // Read at 10 MB/s (uncached) + write at 20 MB/s.
            bcopy_uncached_bps: 6_900_000,
            syscall: Dur::from_us(40),
            ctx_switch: Dur::from_us(120),
            interrupt: Dur::from_us(65),
            buf_op: Dur::from_us(18),
            hardclock: Dur::from_us(12),
            callout_dispatch: Dur::from_us(10),
            splice_handler: Dur::from_us(45),
            softwork_budget_per_tick: Dur::from_us(780), // ~20% of a 3.9 ms tick
            quantum: Dur::from_ms(40),
            signal_delivery: Dur::from_us(90),
            user_copy_page_overhead: Dur::from_us(230),
            page_fault: Dur::from_us(350),
            page_size: 4096,
            udp_packet: Dur::from_us(180),
            net_copy_bps: 10_200_000,
            // A fraction of the full crossing: no trap, just per-entry
            // copy + validation inside an already-entered kernel.
            ring_submit_entry: Dur::from_us(6),
            ring_reap_entry: Dur::from_us(3),
        }
    }

    /// Tick length implied by `hz`.
    pub fn tick(&self) -> Dur {
        Dur::from_ns(1_000_000_000 / self.hz)
    }

    /// CPU cost of copying `bytes` with semantics `kind`.
    ///
    /// User/kernel copies (`copyin`/`copyout`) stream through the cache;
    /// large transfers in this workload exceed the 64 KB data cache so we
    /// charge the cached rate only for the store side. Driver copies move
    /// uncached device/BSS memory. This is the single place copy costs are
    /// computed.
    pub fn copy_cost(&self, kind: CopyKind, bytes: usize) -> Dur {
        let bps = match kind {
            CopyKind::Copyin | CopyKind::Copyout => self.bcopy_cached_bps,
            CopyKind::Driver => self.bcopy_uncached_bps,
            CopyKind::CacheToCache => self.bcopy_cached_bps,
            CopyKind::Net => self.net_copy_bps,
        };
        let mut cost = Dur::for_bytes(bytes as u64, bps);
        if matches!(kind, CopyKind::Copyin | CopyKind::Copyout) {
            // Address validation and page-crossing handling per touched
            // page.
            let pages = bytes.div_ceil(self.page_size) as u64;
            cost += self.user_copy_page_overhead * pages;
        }
        cost
    }

    /// Stats key for bytes moved under each copy category.
    pub fn copy_stat_key(kind: CopyKind) -> &'static str {
        match kind {
            CopyKind::Copyout => "copy.copyout_bytes",
            CopyKind::Copyin => "copy.copyin_bytes",
            CopyKind::Driver => "copy.driver_bytes",
            CopyKind::CacheToCache => "copy.cache_bytes",
            CopyKind::Net => "copy.net_bytes",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_matches_hz() {
        let p = MachineProfile::decstation_5000_200();
        assert_eq!(p.tick().as_ns(), 1_000_000_000 / 256);
    }

    #[test]
    fn copy_cost_scales_linearly() {
        let p = MachineProfile::decstation_5000_200();
        let one = p.copy_cost(CopyKind::Copyin, 8192);
        let two = p.copy_cost(CopyKind::Copyin, 16384);
        // Allow a nanosecond of rounding per call.
        assert!(two.as_ns() >= 2 * one.as_ns() - 2);
        assert!(two.as_ns() <= 2 * one.as_ns() + 2);
    }

    #[test]
    fn user_copies_pay_per_page_overhead() {
        let p = MachineProfile::decstation_5000_200();
        let raw = Dur::for_bytes(8192, p.bcopy_cached_bps);
        let pages = 8192u64 / p.page_size as u64;
        assert_eq!(
            p.copy_cost(CopyKind::Copyout, 8192),
            raw + p.user_copy_page_overhead * pages
        );
        // Driver copies pay no page overhead.
        assert_eq!(
            p.copy_cost(CopyKind::Driver, 8192),
            Dur::for_bytes(8192, p.bcopy_uncached_bps)
        );
    }

    #[test]
    fn disk_profiles_reflect_paper() {
        let rz56 = DiskProfile::rz56();
        let rz58 = DiskProfile::rz58();
        assert!(rz58.media_bps > rz56.media_bps);
        assert!(rz58.avg_seek < rz56.avg_seek);
        assert!(rz58.avg_rotation < rz56.avg_rotation);
        assert_eq!(rz56.cache_bytes, 64 * 1024);
        assert_eq!(rz58.cache_bytes, 256 * 1024);
        assert_eq!(rz58.cache_segments, 4);
    }

    #[test]
    fn ramdisk_is_16mb() {
        let ram = DiskProfile::ramdisk();
        assert_eq!(ram.bytes(), 16 * 1024 * 1024);
        assert_eq!(ram.kind, DiskKind::Ram);
    }

    #[test]
    fn copy_stat_keys_distinct() {
        use std::collections::HashSet;
        let keys: HashSet<_> = [
            CopyKind::Copyin,
            CopyKind::Copyout,
            CopyKind::Driver,
            CopyKind::CacheToCache,
            CopyKind::Net,
        ]
        .iter()
        .map(|k| MachineProfile::copy_stat_key(*k))
        .collect();
        assert_eq!(keys.len(), 5);
    }
}
