//! Sparse byte store: the persistent medium behind every simulated device.
//!
//! Devices in this reproduction carry *real data* so that every copy path
//! (read/write, splice, network) can be verified byte-for-byte. A disk can
//! be hundreds of simulated megabytes, so storage is chunked and allocated
//! lazily; unwritten regions read back as zeros, like a freshly formatted
//! medium.

use std::collections::HashMap;

/// Chunk granularity. 8 KB matches the filesystem block size, so a typical
/// block write touches exactly one chunk.
const CHUNK: usize = 8192;

/// A lazily-allocated, zero-initialised byte array addressed by offset.
#[derive(Default, Clone)]
pub struct SparseStore {
    chunks: HashMap<u64, Box<[u8; CHUNK]>>,
    len: u64,
}

impl SparseStore {
    /// Creates a store of `len` addressable bytes, all zero.
    pub fn new(len: u64) -> Self {
        SparseStore {
            chunks: HashMap::new(),
            len,
        }
    }

    /// Addressable size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the store has zero addressable bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks actually materialised (for memory-use assertions).
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }

    fn check_range(&self, off: u64, n: usize) {
        assert!(
            off.checked_add(n as u64).is_some_and(|end| end <= self.len),
            "store access out of range: off={off} len={n} size={}",
            self.len
        );
    }

    /// Reads `buf.len()` bytes starting at `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the store.
    pub fn read(&self, off: u64, buf: &mut [u8]) {
        self.check_range(off, buf.len());
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = off + pos as u64;
            let ci = abs / CHUNK as u64;
            let co = (abs % CHUNK as u64) as usize;
            let n = (CHUNK - co).min(buf.len() - pos);
            match self.chunks.get(&ci) {
                Some(chunk) => buf[pos..pos + n].copy_from_slice(&chunk[co..co + n]),
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    /// Convenience: reads `n` bytes at `off` into a fresh vector.
    pub fn read_vec(&self, off: u64, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.read(off, &mut v);
        v
    }

    /// Writes `data` starting at `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the store.
    pub fn write(&mut self, off: u64, data: &[u8]) {
        self.check_range(off, data.len());
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = off + pos as u64;
            let ci = abs / CHUNK as u64;
            let co = (abs % CHUNK as u64) as usize;
            let n = (CHUNK - co).min(data.len() - pos);
            let chunk = self
                .chunks
                .entry(ci)
                .or_insert_with(|| Box::new([0u8; CHUNK]));
            chunk[co..co + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let s = SparseStore::new(1 << 20);
        assert_eq!(s.read_vec(12345, 16), vec![0u8; 16]);
        assert_eq!(s.resident_chunks(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = SparseStore::new(1 << 20);
        let data: Vec<u8> = (0..=255).collect();
        s.write(1000, &data);
        assert_eq!(s.read_vec(1000, 256), data);
    }

    #[test]
    fn crossing_chunk_boundary() {
        let mut s = SparseStore::new(1 << 20);
        let off = CHUNK as u64 - 100;
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        s.write(off, &data);
        assert_eq!(s.read_vec(off, 200), data);
        assert_eq!(s.resident_chunks(), 2);
    }

    #[test]
    fn partial_overwrite_preserves_rest() {
        let mut s = SparseStore::new(1 << 20);
        s.write(0, &[1u8; 32]);
        s.write(8, &[2u8; 8]);
        let got = s.read_vec(0, 32);
        assert_eq!(&got[0..8], &[1u8; 8]);
        assert_eq!(&got[8..16], &[2u8; 8]);
        assert_eq!(&got[16..32], &[1u8; 16]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_past_end_panics() {
        let s = SparseStore::new(64);
        let mut buf = [0u8; 16];
        s.read(60, &mut buf);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_past_end_panics() {
        let mut s = SparseStore::new(64);
        s.write(63, &[0, 0]);
    }

    #[test]
    fn boundary_write_at_exact_end_ok() {
        let mut s = SparseStore::new(64);
        s.write(48, &[7u8; 16]);
        assert_eq!(s.read_vec(48, 16), vec![7u8; 16]);
    }

    #[test]
    fn sparse_usage_stays_sparse() {
        let mut s = SparseStore::new(1 << 30); // 1 GB address space
        s.write(1 << 29, b"hello");
        assert_eq!(s.resident_chunks(), 1);
        assert_eq!(s.read_vec(1 << 29, 5), b"hello".to_vec());
    }
}
