//! Deterministic, seedable fault injection for simulated devices.
//!
//! A [`FaultPlan`] is a list of rules consulted by the disk models at
//! service time. Every decision is a pure function of the plan's seed,
//! the device identity, the request's sector range and direction, and a
//! per-rule occurrence counter — so a failing run reproduces exactly
//! from `(seed, workload)`, with no wall-clock or global randomness.
//!
//! Rule vocabulary (mirroring the failure modes real disks exhibit):
//!
//! * **Transient EIO** — a request fails this time but would succeed if
//!   retried. Probabilistic ([`FaultPlan::transient_eio`]) or pinned to
//!   the first N accesses of one sector ([`FaultPlan::transient_eio_at`]).
//! * **Permanent bad block** — every request covering the sector fails
//!   ([`FaultPlan::bad_block`]). Retries cannot help; the caller must
//!   abort and report a partial transfer.
//! * **Torn write** — the first write covering the sector persists only
//!   a prefix of the request before erroring ([`FaultPlan::torn_write`]),
//!   modelling power loss mid-transfer.
//! * **Latency spike** — the request succeeds but takes extra service
//!   time ([`FaultPlan::latency_spike`]), modelling thermal recalibration
//!   or internal retry loops.

use std::collections::HashMap;

use ksim::Dur;

/// Which I/O direction a fault rule applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Reads only.
    Read,
    /// Writes only.
    Write,
    /// Both directions.
    Both,
}

impl FaultOp {
    fn matches(self, write: bool) -> bool {
        match self {
            FaultOp::Read => !write,
            FaultOp::Write => write,
            FaultOp::Both => true,
        }
    }
}

#[derive(Clone, Debug)]
enum Rule {
    TransientEio {
        op: FaultOp,
        rate_ppm: u32,
    },
    TransientEioAt {
        op: FaultOp,
        sector: u64,
        times: u64,
    },
    BadBlock {
        op: FaultOp,
        sector: u64,
    },
    TornWrite {
        sector: u64,
        keep_sectors: u64,
    },
    LatencySpike {
        op: FaultOp,
        rate_ppm: u32,
        extra: Dur,
    },
}

/// What the plan decided for one device request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// The request fails with an I/O error.
    pub error: bool,
    /// Extra service latency to add (independent of `error`).
    pub extra_latency: Dur,
    /// For torn writes: how many *leading sectors of this request* hit
    /// the medium before the error. `None` for clean or fully-failed
    /// requests.
    pub torn_sectors: Option<u64>,
}

impl FaultDecision {
    /// A decision that injects nothing.
    pub const CLEAN: FaultDecision = FaultDecision {
        error: false,
        extra_latency: Dur::ZERO,
        torn_sectors: None,
    };
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn rate_ppm(rate: f64) -> u32 {
    assert!((0.0..=1.0).contains(&rate), "fault rate out of [0,1]");
    (rate * 1_000_000.0).round() as u32
}

/// A deterministic fault schedule for one device.
///
/// Build with [`FaultPlan::new`], chain rule constructors, then install
/// on a disk model. Each request is matched against every rule; the
/// decisions combine (latency spikes stack with errors). Probabilistic
/// rules draw from a hash of `(seed, device, sector, op, occurrence)`,
/// so re-running the same workload replays the same failures.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    device: u64,
    rules: Vec<Rule>,
    /// Per-rule count of matching requests seen so far, keying the
    /// nth-occurrence semantics of every rule kind.
    occurrences: HashMap<usize, u64>,
    injected: u64,
}

impl FaultPlan {
    /// A plan with no rules, drawing from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            device: 0,
            rules: Vec::new(),
            occurrences: HashMap::new(),
            injected: 0,
        }
    }

    /// Sets the device identity mixed into every probability draw, so
    /// two disks sharing one seed still fail independently.
    pub fn device(mut self, device: u64) -> FaultPlan {
        self.device = device;
        self
    }

    /// Each matching request independently fails with probability
    /// `rate` (transient: an immediate retry of the same sector may
    /// succeed).
    pub fn transient_eio(mut self, op: FaultOp, rate: f64) -> FaultPlan {
        self.rules.push(Rule::TransientEio {
            op,
            rate_ppm: rate_ppm(rate),
        });
        self
    }

    /// The first `times` requests covering `sector` fail; later ones
    /// succeed. The deterministic transient-then-recovery rule.
    pub fn transient_eio_at(mut self, op: FaultOp, sector: u64, times: u64) -> FaultPlan {
        self.rules.push(Rule::TransientEioAt { op, sector, times });
        self
    }

    /// Every request covering `sector` fails, forever.
    pub fn bad_block(mut self, op: FaultOp, sector: u64) -> FaultPlan {
        self.rules.push(Rule::BadBlock { op, sector });
        self
    }

    /// The first write covering `sector` persists only the request's
    /// first `keep_sectors` sectors, then fails; later writes succeed.
    pub fn torn_write(mut self, sector: u64, keep_sectors: u64) -> FaultPlan {
        self.rules.push(Rule::TornWrite {
            sector,
            keep_sectors,
        });
        self
    }

    /// Each matching request independently takes `extra` additional
    /// service time with probability `rate`.
    pub fn latency_spike(mut self, op: FaultOp, rate: f64, extra: Dur) -> FaultPlan {
        self.rules.push(Rule::LatencySpike {
            op,
            rate_ppm: rate_ppm(rate),
            extra,
        });
        self
    }

    /// Total faults injected so far (errors, tears, and spikes).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    fn draw(&self, rule: usize, sector: u64, write: bool, occ: u64) -> u64 {
        let mut h = self.seed;
        for v in [self.device, rule as u64, sector, write as u64, occ] {
            h = splitmix64(h ^ v);
        }
        h
    }

    /// Decides the fate of one request covering sectors
    /// `[sector, sector + nsec)`. Mutates occurrence counters, so call
    /// exactly once per device request.
    pub fn decide(&mut self, write: bool, sector: u64, nsec: u64) -> FaultDecision {
        let covers = |s: u64| s >= sector && s < sector + nsec;
        let mut d = FaultDecision::CLEAN;
        for i in 0..self.rules.len() {
            let rule = self.rules[i].clone();
            let matched = match rule {
                Rule::TransientEio { op, rate_ppm } => {
                    if !op.matches(write) {
                        continue;
                    }
                    let occ = self.bump_occ(i);
                    self.draw(i, sector, write, occ) % 1_000_000 < rate_ppm as u64 && {
                        d.error = true;
                        true
                    }
                }
                Rule::TransientEioAt {
                    op,
                    sector: s,
                    times,
                } => {
                    if !op.matches(write) || !covers(s) {
                        continue;
                    }
                    let occ = self.bump_occ(i);
                    occ < times && {
                        d.error = true;
                        true
                    }
                }
                Rule::BadBlock { op, sector: s } => {
                    op.matches(write) && covers(s) && {
                        d.error = true;
                        true
                    }
                }
                Rule::TornWrite {
                    sector: s,
                    keep_sectors,
                } => {
                    if !write || !covers(s) {
                        continue;
                    }
                    let occ = self.bump_occ(i);
                    occ == 0 && {
                        d.error = true;
                        d.torn_sectors = Some(keep_sectors.min(nsec));
                        true
                    }
                }
                Rule::LatencySpike {
                    op,
                    rate_ppm,
                    extra,
                } => {
                    if !op.matches(write) {
                        continue;
                    }
                    let occ = self.bump_occ(i);
                    self.draw(i, sector, write, occ) % 1_000_000 < rate_ppm as u64 && {
                        d.extra_latency += extra;
                        true
                    }
                }
            };
            if matched {
                self.injected += 1;
            }
        }
        d
    }

    fn bump_occ(&mut self, rule: usize) -> u64 {
        let c = self.occurrences.entry(rule).or_insert(0);
        let occ = *c;
        *c += 1;
        occ
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_clean() {
        let mut p = FaultPlan::new(1);
        assert_eq!(p.decide(false, 0, 16), FaultDecision::CLEAN);
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn transient_eio_at_fails_exactly_n_times_then_recovers() {
        let mut p = FaultPlan::new(7).transient_eio_at(FaultOp::Read, 32, 2);
        assert!(p.decide(false, 32, 16).error);
        assert!(p.decide(false, 16, 32).error); // range covers sector 32
        assert!(!p.decide(false, 32, 16).error);
        assert!(!p.decide(false, 0, 16).error); // never matched at all
        assert!(!p.decide(true, 32, 16).error); // wrong direction
        assert_eq!(p.injected(), 2);
    }

    #[test]
    fn bad_block_is_permanent_and_direction_scoped() {
        let mut p = FaultPlan::new(7).bad_block(FaultOp::Write, 8);
        for _ in 0..5 {
            assert!(p.decide(true, 0, 16).error);
        }
        assert!(!p.decide(false, 0, 16).error);
    }

    #[test]
    fn torn_write_tears_once_with_bounded_prefix() {
        let mut p = FaultPlan::new(7).torn_write(4, 3);
        let d = p.decide(true, 0, 16);
        assert!(d.error);
        assert_eq!(d.torn_sectors, Some(3));
        assert_eq!(p.decide(true, 0, 16), FaultDecision::CLEAN);
        // The prefix is clamped to the request size.
        let mut p = FaultPlan::new(7).torn_write(0, 99);
        assert_eq!(p.decide(true, 0, 2).torn_sectors, Some(2));
    }

    #[test]
    fn probabilistic_rules_are_deterministic_per_seed() {
        let run = |seed| {
            let mut p = FaultPlan::new(seed)
                .transient_eio(FaultOp::Read, 0.3)
                .latency_spike(FaultOp::Both, 0.2, Dur::from_us(500));
            (0..64)
                .map(|i| {
                    let d = p.decide(i % 2 == 0, i * 16, 16);
                    (d.error, d.extra_latency)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never_does() {
        let mut p = FaultPlan::new(9).transient_eio(FaultOp::Both, 1.0);
        assert!(p.decide(false, 0, 16).error);
        assert!(p.decide(true, 800, 16).error);
        let mut p = FaultPlan::new(9).transient_eio(FaultOp::Both, 0.0);
        assert!(!(0..100).any(|i| p.decide(false, i * 16, 16).error));
    }

    #[test]
    fn device_identity_decorrelates_draws() {
        let sample = |dev| {
            let mut p = FaultPlan::new(11)
                .device(dev)
                .transient_eio(FaultOp::Read, 0.5);
            (0..64)
                .map(|i| p.decide(false, i * 16, 16).error)
                .collect::<Vec<_>>()
        };
        assert_ne!(sample(0), sample(1));
    }
}
