//! Property tests for the disk model: service discipline, timing sanity,
//! and data integrity under arbitrary request interleavings.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use std::collections::HashMap;

use proptest::prelude::*;

use khw::{Disk, DiskProfile, IoOp, SECTOR_SIZE};
use ksim::{Dur, SimTime};

const BLK: usize = 8192;
const SPB: u64 = (BLK / SECTOR_SIZE) as u64;

#[derive(Clone, Debug)]
enum Op {
    /// Submit a read/write of block `blk` after an idle gap.
    Submit { write: bool, blk: u64, gap_us: u64 },
    /// Ride the completion interrupt of the active request.
    Complete,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<bool>(), 0u64..300, 0u64..20_000).prop_map(|(write, blk, gap_us)| {
            Op::Submit { write, blk, gap_us }
        }),
        2 => Just(Op::Complete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn disk_serves_every_request_exactly_once(ops in prop::collection::vec(op(), 1..80)) {
        let mut d = Disk::new(DiskProfile::rz58());
        let mut now = SimTime::ZERO;
        let mut next_token = 0u64;
        let mut outstanding: HashMap<u64, bool> = HashMap::new(); // token → is_write
        let mut active_finish: Option<SimTime> = None;
        let mut completed = Vec::new();
        let mut submitted = Vec::new();
        let mut last_finish = SimTime::ZERO;

        for op in ops {
            match op {
                Op::Submit { write, blk, gap_us } => {
                    now += Dur::from_us(gap_us);
                    let token = next_token;
                    next_token += 1;
                    let data = write.then(|| vec![token as u8; BLK]);
                    let started = d.submit(now, token, if write { IoOp::Write } else { IoOp::Read }, blk * SPB, BLK, data);
                    outstanding.insert(token, write);
                    submitted.push(token);
                    match started {
                        Some(s) => {
                            prop_assert!(active_finish.is_none(), "two active requests");
                            prop_assert!(s.finish > now);
                            active_finish = Some(s.finish);
                        }
                        None => {
                            prop_assert!(active_finish.is_some(), "queued while idle");
                        }
                    }
                }
                Op::Complete => {
                    let Some(finish) = active_finish.take() else { continue };
                    now = now.max(finish);
                    let (done, next) = d.complete(finish);
                    prop_assert!(outstanding.remove(&done.token).is_some(), "unknown completion");
                    prop_assert!(finish >= last_finish, "completions must be ordered");
                    last_finish = finish;
                    completed.push(done.token);
                    if let Some(s) = next {
                        prop_assert!(s.finish >= finish);
                        active_finish = Some(s.finish);
                    } else {
                        prop_assert_eq!(d.queue_depth(), 0);
                    }
                }
            }
        }
        // Drain the rest.
        while let Some(finish) = active_finish.take() {
            let (done, next) = d.complete(finish);
            prop_assert!(outstanding.remove(&done.token).is_some());
            completed.push(done.token);
            if let Some(s) = next {
                active_finish = Some(s.finish);
            }
        }
        prop_assert!(outstanding.is_empty(), "requests lost: {:?}", outstanding);
        let mut all = submitted;
        all.sort_unstable();
        let mut got = completed;
        got.sort_unstable();
        prop_assert_eq!(all, got, "every request completes exactly once");
    }

    #[test]
    fn last_write_wins_per_block(
        writes in prop::collection::vec((0u64..20, any::<u8>()), 1..40)
    ) {
        let mut d = Disk::new(DiskProfile::rz56());
        let mut now = SimTime::ZERO;
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (i, (blk, byte)) in writes.iter().enumerate() {
            // Serialise: run each write to completion so "last" is
            // unambiguous.
            let s = d
                .submit(now, i as u64, IoOp::Write, blk * SPB, BLK, Some(vec![*byte; BLK]))
                .expect("idle");
            let (_, next) = d.complete(s.finish);
            assert!(next.is_none());
            now = s.finish;
            model.insert(*blk, *byte);
        }
        for (blk, byte) in model {
            let s = d
                .submit(now, 10_000 + blk, IoOp::Read, blk * SPB, BLK, None)
                .expect("idle");
            let (done, _) = d.complete(s.finish);
            now = s.finish;
            prop_assert!(done.data.unwrap().iter().all(|b| *b == byte));
        }
    }

    #[test]
    fn service_time_is_bounded(blk_a in 0u64..80_000, blk_b in 0u64..80_000) {
        // Any single request finishes within per_request + max seek +
        // rotation + transfer (no unbounded waits on an idle drive).
        let p = DiskProfile::rz56();
        let mut d = Disk::new(p.clone());
        let s1 = d.submit(SimTime::ZERO, 1, IoOp::Read, blk_a * SPB, BLK, None).unwrap();
        let (_, _) = d.complete(s1.finish);
        let s2 = d.submit(s1.finish, 2, IoOp::Read, blk_b * SPB, BLK, None).unwrap();
        let service = s2.finish.since(s1.finish);
        let bound = p.per_request
            + p.avg_seek * 2
            + p.avg_rotation
            + Dur::for_bytes(BLK as u64, p.media_bps.min(p.bus_bps));
        prop_assert!(service <= bound, "service {service} > bound {bound}");
    }
}
