//! Simulator-speed measurement procedures.
//!
//! These measure *host* events-per-second of the simulator itself — the
//! quantity the timing-wheel callout, the slab event queue, and the
//! pooled buffer arena exist to improve. The same loops back both the
//! `sim_events_per_sec` criterion group and the `simspeed` binary that
//! pins the numbers into `BENCH_simspeed.json`, so the artifact and the
//! benches can never drift apart.
//!
//! The churn loops keep a large pending population (the regime where the
//! old `BTreeMap` callout degraded) and then drive a steady
//! schedule/cancel/expire mix through it. Rates count every mutation
//! (schedule, cancel, and the amortised expire) so the numbers are
//! comparable across implementations with different per-op costs.

use std::time::Instant;

use ksim::{BTreeCallout, Callout, CalloutId, Dur, EventQueue, SimTime};

/// One measured loop: mutation count over wall-clock seconds.
#[derive(Clone, Copy, Debug)]
pub struct Rate {
    /// Mutations performed (schedule + cancel + expire passes).
    pub ops: u64,
    /// Wall-clock seconds for the measured window.
    pub secs: f64,
}

impl Rate {
    /// Mutations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs
    }
}

/// The callout surface the churn loop exercises — implemented by both
/// the timing wheel and the retained `BTreeMap` reference so the same
/// loop measures both.
trait CalloutImpl<C> {
    fn schedule(&mut self, current_tick: u64, delay_ticks: u64, payload: C) -> CalloutId;
    fn cancel(&mut self, id: CalloutId) -> Option<C>;
    fn expire(&mut self, current_tick: u64) -> Vec<C>;
}

impl<C> CalloutImpl<C> for Callout<C> {
    fn schedule(&mut self, current_tick: u64, delay_ticks: u64, payload: C) -> CalloutId {
        Callout::schedule(self, current_tick, delay_ticks, payload)
    }
    fn cancel(&mut self, id: CalloutId) -> Option<C> {
        Callout::cancel(self, id)
    }
    fn expire(&mut self, current_tick: u64) -> Vec<C> {
        Callout::expire(self, current_tick)
    }
}

impl<C> CalloutImpl<C> for BTreeCallout<C> {
    fn schedule(&mut self, current_tick: u64, delay_ticks: u64, payload: C) -> CalloutId {
        BTreeCallout::schedule(self, current_tick, delay_ticks, payload)
    }
    fn cancel(&mut self, id: CalloutId) -> Option<C> {
        BTreeCallout::cancel(self, id)
    }
    fn expire(&mut self, current_tick: u64) -> Vec<C> {
        BTreeCallout::expire(self, current_tick)
    }
}

/// Schedule/cancel/expire churn against a standing population of
/// `pending` callouts with delays spread over 512 ticks. Each iteration
/// schedules one callout, cancels a pseudo-random standing one, and
/// every 64 iterations advances the clock one tick and expires it.
fn callout_churn(co: &mut impl CalloutImpl<u64>, pending: usize, ops: u64) -> Rate {
    let mut ids = Vec::with_capacity(pending);
    for i in 0..pending as u64 {
        ids.push(co.schedule(0, 1 + i % 512, i));
    }
    let start = Instant::now();
    let mut tick = 0u64;
    for i in 0..ops {
        let id = co.schedule(tick, 1 + i % 512, i);
        let slot = (i as usize * 7919) % ids.len();
        co.cancel(ids[slot]);
        ids[slot] = id;
        if i % 64 == 0 {
            tick += 1;
            std::hint::black_box(co.expire(tick).len());
        }
    }
    Rate {
        ops: 3 * ops,
        secs: start.elapsed().as_secs_f64(),
    }
}

/// Churn rate of the hierarchical timing wheel.
pub fn callout_churn_wheel(pending: usize, ops: u64) -> Rate {
    callout_churn(&mut Callout::new(), pending, ops)
}

/// Churn rate of the retained `BTreeMap` reference implementation —
/// the pre-refactor baseline, measured live so the speedup ratio in
/// `BENCH_simspeed.json` reflects the host it ran on.
pub fn callout_churn_btree(pending: usize, ops: u64) -> Rate {
    callout_churn(&mut BTreeCallout::new(), pending, ops)
}

/// Schedule/cancel/pop churn against a standing population of `pending`
/// events spread over 4096 µs of virtual time.
pub fn event_churn(pending: usize, ops: u64) -> Rate {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut ids = Vec::with_capacity(pending);
    for i in 0..pending as u64 {
        ids.push(q.schedule(SimTime::ZERO + Dur::from_us(1 + i % 4096), i));
    }
    let start = Instant::now();
    for i in 0..ops {
        let at = q.now() + Dur::from_us(1 + i % 4096);
        let id = q.schedule(at, i);
        let slot = (i as usize * 7919) % ids.len();
        q.cancel(ids[slot]);
        ids[slot] = id;
        if i % 4 == 0 {
            if let Some((_, v)) = q.pop() {
                std::hint::black_box(v);
            }
        }
    }
    Rate {
        ops: 3 * ops,
        secs: start.elapsed().as_secs_f64(),
    }
}

/// One end-to-end measurement: simulated blocks copied per wall-clock
/// second.
#[derive(Clone, Copy, Debug)]
pub struct E2eRate {
    /// Simulated 8 KB blocks copied across all measured runs.
    pub blocks: u64,
    /// Wall-clock seconds for the measured runs.
    pub secs: f64,
}

impl E2eRate {
    /// Simulated blocks copied per wall-clock second.
    pub fn blocks_per_sec(&self) -> f64 {
        self.blocks as f64 / self.secs
    }
}

/// One cold-cache `scp` of a `bytes`-sized file across the RAM-disk
/// machine. Returns the number of 8 KB blocks copied.
///
/// # Panics
///
/// Panics if the copy fails to exit cleanly.
pub fn scp_ram_run(bytes: u64) -> u64 {
    let mut k = splice::KernelBuilder::paper_machine_ram().build();
    k.setup_file("/d0/src", bytes, 5);
    k.cold_cache();
    let pid = k.spawn(Box::new(kproc::programs::Scp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, kproc::ProcState::Exited(0)),
        "scp_ram speed run failed to exit cleanly"
    );
    bytes / 8192
}

/// End-to-end simulator speed: `warmup` unmeasured runs (to populate
/// the buffer arena and fault in code), then `runs` measured cold-cache
/// `scp` copies of `bytes` each.
pub fn scp_ram_e2e(warmup: u32, runs: u32, bytes: u64) -> E2eRate {
    for _ in 0..warmup {
        std::hint::black_box(scp_ram_run(bytes));
    }
    let start = Instant::now();
    let mut blocks = 0u64;
    for _ in 0..runs {
        blocks += scp_ram_run(bytes);
    }
    E2eRate {
        blocks,
        secs: start.elapsed().as_secs_f64(),
    }
}
