//! Experiment library: the measurement procedures behind every table,
//! sweep, and ablation binary.
//!
//! The procedures follow §6 of the paper:
//!
//! * **Throughput** ([`throughput`]) — create the source file, cold-start
//!   the buffer cache, run one copy on an otherwise idle machine, report
//!   `bytes / elapsed` in KB/s. CP's `fsync` is inside the measured
//!   window ("we ensured write-through behavior for the cache … by
//!   calling fsync() on the destination file for CP"); SCP's asynchronous
//!   writes finish before `SIGIO`, so its window also covers all device
//!   writes.
//! * **CPU availability** ([`availability`]) — run the CPU-bound test
//!   program with a fixed operation count alone (IDLE) and then
//!   concurrently with a looping copy (CP or SCP environments), and
//!   report the slowdown factor `F = T_env / T_idle`.
//!
//! Every run verifies the copied bytes and `fsck`s the filesystems; a
//! performance number from a corrupted run would be meaningless.

pub mod json_out;
pub mod simspeed;
pub mod workloads;

pub use json_out::{
    bench_doc, json_rows, workload_meta, write_bench_json, write_table, SCHEMA_VERSION,
};

use khw::DiskProfile;
use kproc::programs::{Cp, CpuBound, Scp, ScpMode};
use kproc::{Pid, ProcState, Program};
use ksim::{Dur, Json};
use splice::baselines::{HandleCopy, MmapCopy};
use splice::{Kernel, KernelBuilder, KernelConfig, MetricsSnapshot};

/// Which copy mechanism an experiment exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// `cp`: read/write through a user buffer (the paper's CP).
    Cp,
    /// `scp`: asynchronous splice (the paper's SCP).
    Scp,
    /// `scp` with a synchronous splice (ablation).
    ScpSync,
    /// [PCM91] ioctl handle passing (related-work baseline).
    Handle,
    /// Memory-mapped copy (related-work baseline).
    Mmap,
}

impl Method {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Cp => "CP",
            Method::Scp => "SCP",
            Method::ScpSync => "SCP(sync)",
            Method::Handle => "HANDLE",
            Method::Mmap => "MMAP",
        }
    }

    /// All methods the paper compares plus the related-work baselines.
    pub fn all() -> [Method; 5] {
        [
            Method::Cp,
            Method::Scp,
            Method::ScpSync,
            Method::Handle,
            Method::Mmap,
        ]
    }
}

/// Which disk row of the paper's tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskRow {
    /// The 16 MB kernel-memory RAM disk.
    Ram,
    /// Digital RZ56.
    Rz56,
    /// Digital RZ58.
    Rz58,
}

impl DiskRow {
    /// Profile for this row.
    pub fn profile(self) -> DiskProfile {
        match self {
            DiskRow::Ram => DiskProfile::ramdisk(),
            DiskRow::Rz56 => DiskProfile::rz56(),
            DiskRow::Rz58 => DiskProfile::rz58(),
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            DiskRow::Ram => "RAM",
            DiskRow::Rz56 => "RZ56",
            DiskRow::Rz58 => "RZ58",
        }
    }

    /// The paper's three rows.
    pub fn all() -> [DiskRow; 3] {
        [DiskRow::Ram, DiskRow::Rz56, DiskRow::Rz58]
    }
}

/// Common experiment parameters.
#[derive(Clone)]
pub struct Experiment {
    /// Disk row.
    pub disk: DiskRow,
    /// File size (the paper's representative case: 8 MB).
    pub file_bytes: u64,
    /// Kernel configuration (ablations mutate this).
    pub config: KernelConfig,
    /// Pattern seed for the source file.
    pub seed: u64,
}

impl Experiment {
    /// The paper's configuration for a disk row.
    pub fn paper(disk: DiskRow) -> Experiment {
        Experiment {
            disk,
            file_bytes: 8 * 1024 * 1024,
            config: KernelConfig::default(),
            seed: 0x51ce ^ 1993,
        }
    }

    /// Builds the two-disk machine with the source file in place and a
    /// cold cache.
    pub fn boot(&self) -> Kernel {
        let mut k = KernelBuilder::paper_machine(self.disk.profile())
            .config(self.config.clone())
            .build();
        k.setup_file("/d0/src", self.file_bytes, self.seed);
        k.cold_cache();
        k
    }

    /// The copy program for `method` with `repeat` back-to-back passes.
    pub fn copier(&self, method: Method, repeat: u32) -> Box<dyn Program> {
        let memcpy_per_block = self
            .config
            .machine
            .copy_cost(khw::CopyKind::Copyin, self.config.block_size as usize);
        match method {
            Method::Cp => Box::new(Cp::with_options("/d0/src", "/d1/dst", 8192, true, repeat)),
            Method::Scp => Box::new(Scp::with_options(
                "/d0/src",
                "/d1/dst",
                ScpMode::Async,
                repeat,
            )),
            Method::ScpSync => Box::new(Scp::with_options(
                "/d0/src",
                "/d1/dst",
                ScpMode::Sync,
                repeat,
            )),
            Method::Handle => Box::new(kproc::programs::Repeat::new(repeat, || {
                Box::new(HandleCopy::new("/d0/src", "/d1/dst"))
            })),
            Method::Mmap => {
                let bs = self.config.block_size as usize;
                Box::new(kproc::programs::Repeat::new(repeat, move || {
                    Box::new(MmapCopy::new("/d0/src", "/d1/dst", bs, memcpy_per_block))
                }))
            }
        }
    }
}

/// Outcome of one throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// KB/s over the copy (KB = 1024 bytes, as in the paper).
    pub kb_per_s: f64,
    /// Elapsed simulated seconds.
    pub elapsed_s: f64,
    /// Kernel metrics at the end of the run (data verified, fsck clean).
    pub snapshot: MetricsSnapshot,
}

impl ThroughputResult {
    /// JSON form: the throughput numbers plus the full snapshot.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("kb_per_s", Json::Num(self.kb_per_s))
            .with("elapsed_s", Json::Num(self.elapsed_s))
            .with("metrics", self.snapshot.to_json())
    }
}

/// Measures copy throughput on an otherwise idle machine (§6.3).
///
/// # Panics
///
/// Panics if the copy fails, corrupts data, or leaves the filesystems
/// inconsistent.
pub fn throughput(exp: &Experiment, method: Method) -> ThroughputResult {
    let mut k = exp.boot();
    let t0 = k.now();
    let pid = k.spawn(exp.copier(method, 1));
    let horizon = k.horizon(1200);
    let t1 = k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "{} copy failed on {}",
        method.label(),
        exp.disk.label()
    );
    assert_eq!(
        k.verify_pattern_file("/d1/dst", exp.file_bytes, exp.seed),
        None,
        "{} copy corrupted data on {}",
        method.label(),
        exp.disk.label()
    );
    let errors = k.fsck_all();
    assert!(
        errors.is_empty(),
        "fsck after {}: {errors:?}",
        method.label()
    );
    let snapshot = k.metrics();
    if std::env::var("BENCH_STATS").is_ok() {
        println!(
            "--- metrics after {} on {} ---",
            method.label(),
            exp.disk.label()
        );
        println!("{}", snapshot.to_json().render_pretty());
        for d in k.disks() {
            if !d.kind.is_ram() {
                println!(
                    "  disk {}: requests={} busy={:?}",
                    d.name,
                    d.kind.requests(),
                    d.kind.busy_time()
                );
            }
        }
        println!("  cache: {:?}", k.cache().stats());
    }
    let elapsed = t1.since(t0).as_secs_f64();
    ThroughputResult {
        kb_per_s: exp.file_bytes as f64 / 1024.0 / elapsed,
        elapsed_s: elapsed,
        snapshot,
    }
}

/// Outcome of the availability procedure for one environment.
#[derive(Clone, Debug)]
pub struct AvailabilityResult {
    /// Slowdown factor `F = T_env / T_idle`.
    pub slowdown: f64,
    /// Test-program speed as a fraction of idle (1/F).
    pub speed_fraction: f64,
    /// Elapsed seconds for the fixed operation set.
    pub elapsed_s: f64,
    /// Kernel metrics when the test program exited.
    pub snapshot: MetricsSnapshot,
}

impl AvailabilityResult {
    /// JSON form: the availability numbers plus the full snapshot.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("slowdown", Json::Num(self.slowdown))
            .with("speed_fraction", Json::Num(self.speed_fraction))
            .with("elapsed_s", Json::Num(self.elapsed_s))
            .with("metrics", self.snapshot.to_json())
    }
}

/// The test program's fixed workload: 8 s of user CPU in 1 ms operations.
pub fn test_program() -> CpuBound {
    CpuBound::new(8_000, Dur::from_ms(1))
}

fn run_test_program(k: &mut Kernel, with_copy: Option<Box<dyn Program>>) -> (Pid, f64) {
    let t0 = k.now();
    let test = k.spawn(Box::new(test_program()));
    if let Some(copier) = with_copy {
        k.spawn(copier);
    }
    let horizon = k.horizon(3600);
    let t1 = k.run_until_exit_of(test, horizon);
    (test, t1.since(t0).as_secs_f64())
}

/// Measures the IDLE baseline: the test program alone (§6.2).
pub fn idle_baseline(exp: &Experiment) -> f64 {
    let mut k = exp.boot();
    let (_, elapsed) = run_test_program(&mut k, None);
    elapsed
}

/// Measures one contended environment: the test program beside a looping
/// copy (§6.2's CP/SCP environments). `idle_elapsed` comes from
/// [`idle_baseline`].
pub fn availability(exp: &Experiment, method: Method, idle_elapsed: f64) -> AvailabilityResult {
    let mut k = exp.boot();
    // Enough passes to outlast the test program in any environment.
    let copier = exp.copier(method, 10_000);
    let (_, elapsed) = run_test_program(&mut k, Some(copier));
    let snapshot = k.metrics();
    if std::env::var("BENCH_STATS").is_ok() {
        println!(
            "--- availability diagnostics: {} on {} ---",
            method.label(),
            exp.disk.label()
        );
        for p in k.procs().iter() {
            println!(
                "  {:?} {} state={:?} user={} sys={} vcsw={} icsw={} syscalls={}",
                p.pid,
                p.program.name(),
                p.state,
                p.acct.user_time,
                p.acct.sys_time,
                p.acct.vcsw,
                p.acct.icsw,
                p.acct.syscalls
            );
        }
        println!("{}", snapshot.to_json().render_pretty());
    }
    let slowdown = elapsed / idle_elapsed;
    AvailabilityResult {
        slowdown,
        speed_fraction: 1.0 / slowdown,
        elapsed_s: elapsed,
        snapshot,
    }
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Disk row.
    pub disk: DiskRow,
    /// The CP environment (F_cp is `cp.slowdown`).
    pub cp: AvailabilityResult,
    /// The SCP environment (F_scp is `scp.slowdown`).
    pub scp: AvailabilityResult,
    /// Improvement factor F_cp / F_scp.
    pub improvement: f64,
    /// Percentage execution-speed improvement, (F_cp/F_scp − 1) × 100.
    pub pct: f64,
}

impl Table1Row {
    /// JSON form, including both environments' metrics snapshots.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("disk", Json::Str(self.disk.label().into()))
            .with("f_cp", Json::Num(self.cp.slowdown))
            .with("f_scp", Json::Num(self.scp.slowdown))
            .with("improvement", Json::Num(self.improvement))
            .with("pct", Json::Num(self.pct))
            .with("cp", self.cp.to_json())
            .with("scp", self.scp.to_json())
    }
}

/// Reproduces one row of Table 1.
pub fn table1_row(disk: DiskRow) -> Table1Row {
    let exp = Experiment::paper(disk);
    let idle = idle_baseline(&exp);
    let cp = availability(&exp, Method::Cp, idle);
    let scp = availability(&exp, Method::Scp, idle);
    let improvement = cp.slowdown / scp.slowdown;
    Table1Row {
        disk,
        improvement,
        pct: (improvement - 1.0) * 100.0,
        cp,
        scp,
    }
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Disk row.
    pub disk: DiskRow,
    /// The SCP run (throughput is `scp.kb_per_s`).
    pub scp: ThroughputResult,
    /// The CP run (throughput is `cp.kb_per_s`).
    pub cp: ThroughputResult,
    /// Percentage improvement of SCP over CP.
    pub pct: f64,
}

impl Table2Row {
    /// JSON form, including both runs' metrics snapshots.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("disk", Json::Str(self.disk.label().into()))
            .with("scp_kb_per_s", Json::Num(self.scp.kb_per_s))
            .with("cp_kb_per_s", Json::Num(self.cp.kb_per_s))
            .with("pct", Json::Num(self.pct))
            .with("scp", self.scp.to_json())
            .with("cp", self.cp.to_json())
    }
}

/// Reproduces one row of Table 2.
pub fn table2_row(disk: DiskRow) -> Table2Row {
    let exp = Experiment::paper(disk);
    let scp = throughput(&exp, Method::Scp);
    let cp = throughput(&exp, Method::Cp);
    let pct = (scp.kb_per_s / cp.kb_per_s - 1.0) * 100.0;
    Table2Row { disk, scp, cp, pct }
}

/// Renders a markdown-ish table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}
