//! Shared JSON emission for the bench binaries.
//!
//! Every table, sweep, and ablation binary leaves a machine-checkable
//! artifact at the repository root. The documents all follow one
//! convention — a `"table"` tag naming the producer, an array of
//! per-row/per-run objects built from `to_json` projections, and a
//! pretty-rendered `BENCH_<table>.json` file — so the pieces live here
//! instead of being re-spelled in each binary.

use ksim::Json;

/// Document skeleton: `{"table": <name>, …}`. Every `BENCH_*.json`
/// artifact starts with this tag so downstream consumers can dispatch
/// on the producer without parsing the filename.
pub fn bench_doc(table: &str) -> Json {
    Json::obj().with("table", Json::Str(table.into()))
}

/// Projects a slice through a `to_json`-style closure into a JSON
/// array — the `rows`/`runs` idiom shared by every table binary.
pub fn json_rows<T>(items: &[T], f: impl Fn(&T) -> Json) -> Json {
    Json::Arr(items.iter().map(f).collect())
}

/// Serializes `doc` to `path` — the machine-checkable `BENCH_*.json`
/// artifacts the table and ablation binaries leave behind.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_bench_json(path: &str, doc: &Json) {
    std::fs::write(path, doc.render_pretty()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// Writes `doc` to the canonical artifact path for `table`:
/// `BENCH_<table>.json` at the working directory root.
pub fn write_table(table: &str, doc: &Json) {
    write_bench_json(&format!("BENCH_{table}.json"), doc);
}
