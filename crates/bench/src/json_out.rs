//! Shared JSON emission for the bench binaries.
//!
//! Every table, sweep, and ablation binary leaves a machine-checkable
//! artifact at the repository root. The documents all follow one
//! convention — a `"table"` tag naming the producer, an array of
//! per-row/per-run objects built from `to_json` projections, and a
//! pretty-rendered `BENCH_<table>.json` file — so the pieces live here
//! instead of being re-spelled in each binary.

use ksim::Json;

/// Version of the shared artifact envelope. Bump whenever the meaning
/// or structure of an emitted document changes incompatibly:
/// `benchdiff` refuses to compare documents across versions, so a bump
/// forces baselines to be regenerated instead of silently mis-diffed.
pub const SCHEMA_VERSION: u64 = 1;

/// Document skeleton: `{"schema_version": N, "table": <name>, …}`.
/// Every `BENCH_*`/`REPORT_*` artifact starts with this envelope so
/// downstream consumers (ci.sh, `benchdiff`) can dispatch on the
/// producer and validate the version without parsing the filename.
pub fn bench_doc(table: &str) -> Json {
    Json::obj()
        .with("schema_version", Json::Num(SCHEMA_VERSION as f64))
        .with("table", Json::Str(table.into()))
}

/// The workload/seed meta block shared by samplers and reports:
/// `{"workload": name, "seeds": [...], "expected_bytes": N}`. Keeping
/// the provenance inside the artifact lets a reader reproduce the run
/// without consulting the emitting binary's source.
pub fn workload_meta(workload: &str, seeds: &[u64], expected_bytes: u64) -> Json {
    Json::obj()
        .with("workload", Json::Str(workload.into()))
        .with(
            "seeds",
            Json::Arr(seeds.iter().map(|&s| Json::Num(s as f64)).collect()),
        )
        .with("expected_bytes", Json::Num(expected_bytes as f64))
}

/// Projects a slice through a `to_json`-style closure into a JSON
/// array — the `rows`/`runs` idiom shared by every table binary.
pub fn json_rows<T>(items: &[T], f: impl Fn(&T) -> Json) -> Json {
    Json::Arr(items.iter().map(f).collect())
}

/// Serializes `doc` to `path` — the machine-checkable `BENCH_*.json`
/// artifacts the table and ablation binaries leave behind.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_bench_json(path: &str, doc: &Json) {
    std::fs::write(path, doc.render_pretty()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// Writes `doc` to the canonical artifact path for `table`:
/// `BENCH_<table>.json` at the working directory root.
pub fn write_table(table: &str, doc: &Json) {
    write_bench_json(&format!("BENCH_{table}.json"), doc);
}
