//! Simulator-speed table: pins host events-per-second the way Tables
//! 1/2 pin simulated results.
//!
//! Three rows land in `BENCH_simspeed.json`:
//!
//! * `callout_churn` — schedule/cancel/expire mix against 100k pending
//!   callouts, measured on the hierarchical timing wheel *and* on the
//!   retained `BTreeMap` reference implementation, with the live
//!   speedup ratio. CI gates on `speedup_vs_btree >= 10`.
//! * `event_churn` — schedule/cancel/pop mix against 100k live events
//!   in the slab-backed [`ksim::EventQueue`].
//! * `scp_ram_e2e` — wall-clock blocks/sec of repeated cold-cache
//!   `scp` copies across the RAM-disk machine, the end-to-end number
//!   the fast path exists to move.
//!
//! `meta.baseline` records the same loops measured on the pre-refactor
//! tree (BTreeMap callout, non-slab event queue, unpooled buffers) so
//! the committed artifact documents the before/after trajectory. Unlike
//! the `BENCH_table*` artifacts these numbers are wall-clock and host-
//! dependent, so the file is a pinned snapshot, not byte-reproducible.

use bench::simspeed;
use bench::{bench_doc, write_table};
use ksim::Json;

const PENDING: usize = 100_000;

fn rate_row(name: &str, pending: usize, r: &simspeed::Rate) -> Json {
    Json::obj()
        .with("bench", Json::Str(name.into()))
        .with("pending", Json::Num(pending as f64))
        .with("ops", Json::Num(r.ops as f64))
        .with("secs", Json::Num(r.secs))
        .with("ops_per_sec", Json::Num(r.ops_per_sec()))
}

fn main() {
    // Callout churn: wheel vs the retained BTreeMap reference, both
    // measured live on this host so the ratio is apples-to-apples.
    let wheel = simspeed::callout_churn_wheel(PENDING, 100_000);
    let btree = simspeed::callout_churn_btree(PENDING, 3_000);
    let speedup = wheel.ops_per_sec() / btree.ops_per_sec();
    println!(
        "callout_churn: wheel {:.0} ops/sec, btree reference {:.0} ops/sec ({speedup:.1}x)",
        wheel.ops_per_sec(),
        btree.ops_per_sec()
    );

    let event = simspeed::event_churn(PENDING, 300_000);
    println!("event_churn: {:.0} ops/sec", event.ops_per_sec());

    // End-to-end: 2 warmup + 40 measured cold-cache 8 MB scp copies so
    // the window is long enough for a stable blocks/sec figure.
    let e2e = simspeed::scp_ram_e2e(2, 40, 8 << 20);
    println!(
        "scp_ram_e2e: {:.0} blocks/sec ({} blocks in {:.3}s)",
        e2e.blocks_per_sec(),
        e2e.blocks,
        e2e.secs
    );

    let rows = Json::Arr(vec![
        rate_row("callout_churn", PENDING, &wheel)
            .with("reference_ops_per_sec", Json::Num(btree.ops_per_sec()))
            .with("speedup_vs_btree", Json::Num(speedup)),
        rate_row("event_churn", PENDING, &event),
        Json::obj()
            .with("bench", Json::Str("scp_ram_e2e".into()))
            .with("runs", Json::Num(40.0))
            .with("file_bytes", Json::Num((8 << 20) as f64))
            .with("blocks", Json::Num(e2e.blocks as f64))
            .with("secs", Json::Num(e2e.secs))
            .with("blocks_per_sec", Json::Num(e2e.blocks_per_sec())),
    ]);

    // The same loops measured on the pre-refactor tree (BTreeMap
    // callout, non-slab event queue, unpooled BufData) on the host that
    // produced the committed artifact — the "before" column of the
    // speedup trajectory.
    let baseline = Json::obj()
        .with("commit", Json::Str("33ac9d6".into()))
        .with("callout_churn_ops_per_sec", Json::Num(87_053.0))
        .with("event_churn_ops_per_sec", Json::Num(8_158_304.0))
        .with("scp_ram_blocks_per_sec", Json::Num(52_342.0));

    let doc = bench_doc("simspeed").with("rows", rows).with(
        "meta",
        Json::obj().with("baseline", baseline).with(
            "note",
            Json::Str("wall-clock host rates; snapshot artifact, not byte-reproducible".into()),
        ),
    );
    write_table("simspeed", &doc);
}
