//! Fault sweep: splice throughput and recovery cost versus injected
//! transient read-error rate on the RAM-disk SCP environment.
//!
//! Each row boots a fresh two-RAM-disk machine, arms a deterministic
//! [`khw::FaultPlan`] that fails the given fraction of source-disk reads
//! with a one-shot `EIO`, and copies 1 MB with synchronous SCP. Transient
//! errors must always recover (retry with exponential backoff), so every
//! row is verified byte-exact with zero aborts; the interesting output is
//! how much throughput and kernel CPU the recovery machinery costs.
//!
//! Writes `BENCH_faults.json` with one row per error rate.

use bench::{bench_doc, json_rows, print_table, write_table};
use khw::{FaultOp, FaultPlan};
use kproc::programs::{Scp, ScpMode};
use kproc::ProcState;
use ksim::Json;
use splice::KernelBuilder;

/// Transfer size: 128 cache blocks, enough for rates down to 0.5 % to
/// inject at least one fault with the fixed plan seed.
const BYTES: u64 = 1 << 20;
/// Pattern seed for the source file.
const SEED: u64 = 0x51ce ^ 1993;
/// Fault-plan seed: fixed, so the sweep is reproducible bit-for-bit.
const PLAN_SEED: u64 = 0xfa17;

/// Injected transient read-EIO rates, sweep order.
const RATES: &[f64] = &[0.0, 0.005, 0.01, 0.02, 0.05];

struct Row {
    rate: f64,
    kb_per_s: f64,
    elapsed_s: f64,
    kernel_cpu_s: f64,
    errors: u64,
    retries: u64,
    aborted: u64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("rate", Json::Num(self.rate))
            .with("kb_per_s", Json::Num(self.kb_per_s))
            .with("elapsed_s", Json::Num(self.elapsed_s))
            .with("kernel_cpu_s", Json::Num(self.kernel_cpu_s))
            .with("errors", Json::Num(self.errors as f64))
            .with("retries", Json::Num(self.retries as f64))
            .with("aborted", Json::Num(self.aborted as f64))
    }
}

fn run(rate: f64) -> Row {
    let mut k = KernelBuilder::paper_machine_ram().build();
    k.setup_file("/d0/src", BYTES, SEED);
    k.cold_cache();
    if rate > 0.0 {
        k.set_fault_plan(
            0,
            FaultPlan::new(PLAN_SEED).transient_eio(FaultOp::Read, rate),
        );
    }
    let t0 = k.now();
    let pid = k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(1200);
    let t1 = k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "copy failed at rate {rate}"
    );
    assert_eq!(
        k.verify_pattern_file("/d1/dst", BYTES, SEED),
        None,
        "transient faults at rate {rate} corrupted the copy"
    );
    assert!(k.fsck_all().is_empty(), "fsck dirty at rate {rate}");
    let m = k.metrics();
    assert_eq!(m.splice.aborted, 0, "transient faults must never abort");
    let elapsed = t1.since(t0).as_secs_f64();
    Row {
        rate,
        kb_per_s: BYTES as f64 / 1024.0 / elapsed,
        elapsed_s: elapsed,
        kernel_cpu_s: (m.cpu.intr_time + m.cpu.soft_time + m.cpu.idle_soft_time).as_secs_f64(),
        errors: m.io.errors,
        retries: m.splice.retries,
        aborted: m.splice.aborted,
    }
}

fn main() {
    println!("Fault sweep — 1 MB sync SCP, RAM disks, transient read EIO");
    let rows: Vec<Row> = RATES.iter().map(|&r| run(r)).collect();
    print_table(
        &[
            "rate", "KB/s", "elapsed", "kcpu_s", "errors", "retries", "aborted",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}%", 100.0 * r.rate),
                    format!("{:.0}", r.kb_per_s),
                    format!("{:.4}s", r.elapsed_s),
                    format!("{:.4}", r.kernel_cpu_s),
                    format!("{}", r.errors),
                    format!("{}", r.retries),
                    format!("{}", r.aborted),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Acceptance: recovery is cheap. At 1 % injected errors the copy
    // stays within 25 % of fault-free throughput.
    let base = rows[0].kb_per_s;
    let at_1pct = rows.iter().find(|r| r.rate == 0.01).expect("1% row");
    assert!(at_1pct.retries > 0, "1% rate injected nothing");
    assert!(
        at_1pct.kb_per_s >= 0.75 * base,
        "recovery too expensive: {:.0} KB/s vs {:.0} KB/s fault-free",
        at_1pct.kb_per_s,
        base
    );

    let doc = bench_doc("faults")
        .with("file_bytes", Json::Num(BYTES as f64))
        .with("plan_seed", Json::Num(PLAN_SEED as f64))
        .with("rows", json_rows(&rows, Row::to_json));
    write_table("faults", &doc);
}
