//! Runs named workloads with the typed trace ring enabled and exports
//! each trace as Chrome trace-event JSON (`TRACE_<workload>.json`),
//! loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! ```sh
//! cargo run --release -p bench --bin tracedump            # all workloads
//! cargo run --release -p bench --bin tracedump -- scp_ram # just one
//! ```

use bench::{workloads, write_bench_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        workloads::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in names {
        let k = workloads::run(name);
        let trace = k.trace();
        println!(
            "{name}: {} trace records, {} block spans",
            trace.len(),
            trace.query().all_block_spans().len()
        );
        write_bench_json(&format!("TRACE_{name}.json"), &trace.to_chrome_json());
    }
}
