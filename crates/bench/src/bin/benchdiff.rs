//! Cross-run bench regression gate: diff every `BENCH_*.json`,
//! `REPORT_*.json`, and `FLIGHT_*.json` artifact in the working
//! directory against the committed copies under `baselines/`.
//!
//! The comparison (see `kanalyze::diff`) flattens both documents into
//! dotted metric paths and applies per-metric tolerance rules: both
//! sides must carry the same `schema_version`, integers must match
//! exactly (the simulator is deterministic), floats must agree within
//! 2% relative, and paths matching a per-table informational pattern —
//! host wall-clock rates in the simspeed table — are reported but never
//! fatal. Missing or extra metrics fail.
//!
//! Usage:
//!
//! ```text
//! benchdiff                    # gate: compare artifacts vs baselines/
//! benchdiff --write-baselines  # refresh: copy artifacts to baselines/
//! ```
//!
//! The gate exits nonzero naming every offending metric and its delta,
//! so `scripts/ci.sh` runs it after regenerating the artifacts.

use kanalyze::{compare, render_table, DiffRules};
use ksim::Json;
use std::path::Path;

/// Directory holding the committed baseline copies of every artifact.
const BASELINE_DIR: &str = "baselines";

/// Per-table comparison policy. Everything the simulator emits is
/// deterministic, so the default rules apply almost everywhere; the
/// simspeed table alone measures host wall-clock rates, which vary
/// run-to-run and machine-to-machine by design.
fn rules_for(name: &str) -> DiffRules {
    let mut rules = DiffRules::default();
    if name == "BENCH_simspeed.json" {
        rules.informational = vec!["secs".into(), "per_sec".into(), "speedup".into()];
    }
    rules
}

/// Lists the artifact file names (sorted) in `dir` that the gate covers.
fn artifacts_in(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            let covered = (name.starts_with("BENCH_")
                || name.starts_with("REPORT_")
                || name.starts_with("FLIGHT_"))
                && name.ends_with(".json");
            covered.then_some(name)
        })
        .collect();
    names.sort();
    names
}

fn load(path: &Path) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Json::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()))
}

/// Copies every current artifact into `baselines/`, replacing the old
/// set entirely so stale baselines cannot linger.
fn write_baselines() {
    let dir = Path::new(BASELINE_DIR);
    if dir.exists() {
        for name in artifacts_in(dir) {
            std::fs::remove_file(dir.join(&name))
                .unwrap_or_else(|e| panic!("removing stale baseline {name}: {e}"));
        }
    } else {
        std::fs::create_dir(dir).unwrap_or_else(|e| panic!("creating {BASELINE_DIR}/: {e}"));
    }
    let names = artifacts_in(Path::new("."));
    assert!(
        !names.is_empty(),
        "no BENCH_*/REPORT_*/FLIGHT_* artifacts to copy"
    );
    for name in &names {
        std::fs::copy(name, dir.join(name))
            .unwrap_or_else(|e| panic!("copying {name} to {BASELINE_DIR}/: {e}"));
        println!("baseline {BASELINE_DIR}/{name}");
    }
    println!("wrote {} baselines", names.len());
}

/// Diffs every artifact against its baseline; returns true iff all pass.
fn run_gate() -> bool {
    let dir = Path::new(BASELINE_DIR);
    assert!(
        dir.is_dir(),
        "no {BASELINE_DIR}/ directory — run `benchdiff --write-baselines` once and commit it"
    );
    let current = artifacts_in(Path::new("."));
    let baseline = artifacts_in(dir);
    let mut ok = true;

    // The artifact sets must match: a bench that stopped emitting its
    // artifact (or a baseline never committed) is itself a regression.
    for name in &baseline {
        if !current.contains(name) {
            eprintln!("FAIL {name}: baseline exists but current artifact is missing");
            ok = false;
        }
    }
    for name in &current {
        if !baseline.contains(name) {
            eprintln!(
                "FAIL {name}: no committed baseline — run `benchdiff --write-baselines` \
                 and commit {BASELINE_DIR}/{name}"
            );
            ok = false;
        }
    }

    for name in current.iter().filter(|n| baseline.contains(n)) {
        let base = load(&dir.join(name));
        let cur = load(Path::new(name));
        println!("== {name} ==");
        match compare(&base, &cur, &rules_for(name)) {
            Err(e) => {
                eprintln!("FAIL {name}: {e}");
                ok = false;
            }
            Ok(result) => {
                print!("{}", render_table(&result));
                for f in &result.failures {
                    eprintln!("FAIL {name}: {f}");
                }
                ok &= result.pass();
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => {
            if !run_gate() {
                eprintln!("benchdiff: regression gate FAILED (see metrics above)");
                std::process::exit(1);
            }
            println!("benchdiff: all artifacts within tolerance");
        }
        ["--write-baselines"] => write_baselines(),
        _ => {
            eprintln!("usage: benchdiff [--write-baselines]");
            std::process::exit(2);
        }
    }
}
