//! Related-work baselines (§7): [PCM91] ioctl handle passing and the
//! memory-mapped copy, against CP and SCP, on all three disks.

use bench::{print_table, throughput, DiskRow, Experiment, Method};

fn main() {
    println!("Related-work baselines — 8 MB copy throughput (KB/s)");
    let mut rows = Vec::new();
    for disk in DiskRow::all() {
        let exp = Experiment::paper(disk);
        let mut row = vec![disk.label().to_string()];
        for m in [
            Method::Cp,
            Method::Handle,
            Method::Mmap,
            Method::ScpSync,
            Method::Scp,
        ] {
            let r = throughput(&exp, m);
            row.push(format!("{:.0}", r.kb_per_s));
        }
        rows.push(row);
    }
    print_table(&["Disk", "CP", "HANDLE", "MMAP", "SCP(sync)", "SCP"], &rows);
    println!();
    println!("HANDLE avoids the copies but keeps two syscalls per block;");
    println!("MMAP avoids syscalls but pays page faults and a user-clock copy;");
    println!("SCP avoids both and runs asynchronously in the kernel.");
}
