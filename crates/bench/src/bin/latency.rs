//! Block-latency report: distribution of synchronous read waits (CP) and
//! splice block round-trips (SCP) per disk — the microscopic view behind
//! the tables.

use bench::{print_table, DiskRow, Experiment, Method};
use splice::Kernel;

fn run(disk: DiskRow, method: Method) -> Kernel {
    let exp = Experiment::paper(disk);
    let mut k = exp.boot();
    k.spawn(exp.copier(method, 1));
    let horizon = k.horizon(1200);
    k.run_to_exit(horizon);
    k
}

fn fmt_us(ns: Option<u64>) -> String {
    ns.map(|v| format!("{:.0}", v as f64 / 1000.0))
        .unwrap_or_else(|| "-".into())
}

fn main() {
    println!("Block latency distributions (us), 8 MB copy");
    let mut rows = Vec::new();
    for disk in DiskRow::all() {
        let k = run(disk, Method::Cp);
        let h = &k.kstat().read_wait;
        rows.push(vec![
            format!("{} CP read-wait", disk.label()),
            format!("{}", h.count()),
            fmt_us(h.min()),
            fmt_us(h.mean().map(|m| m as u64)),
            fmt_us(h.percentile(0.99)),
            fmt_us(h.max()),
        ]);
        let k = run(disk, Method::Scp);
        let h = &k.kstat().splice_block_latency;
        rows.push(vec![
            format!("{} SCP block", disk.label()),
            format!("{}", h.count()),
            fmt_us(h.min()),
            fmt_us(h.mean().map(|m| m as u64)),
            fmt_us(h.percentile(0.99)),
            fmt_us(h.max()),
        ]);
    }
    print_table(&["Path", "n", "min", "mean", "~p99", "max"], &rows);
    println!();
    println!("CP read-wait: time a read(2) slept in biowait per block miss.");
    println!("SCP block: read-issue to write-complete per spliced block");
    println!("(several blocks in flight at once, so throughput is higher");
    println!("than 1/latency).");
}
