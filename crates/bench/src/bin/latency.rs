//! Block-latency report: distribution of synchronous read waits (CP),
//! splice block round-trips (SCP), and the per-stage splice pipeline
//! histograms — the microscopic view behind the tables.

use bench::{print_table, DiskRow, Experiment, Method};
use ksim::Hist;
use splice::Kernel;

fn run(disk: DiskRow, method: Method) -> Kernel {
    let exp = Experiment::paper(disk);
    let mut k = exp.boot();
    k.spawn(exp.copier(method, 1));
    let horizon = k.horizon(1200);
    k.run_to_exit(horizon);
    k
}

fn fmt_us(ns: Option<u64>) -> String {
    ns.map(|v| format!("{:.0}", v as f64 / 1000.0))
        .unwrap_or_else(|| "-".into())
}

fn hist_row(label: String, h: &Hist) -> Vec<String> {
    vec![
        label,
        format!("{}", h.count()),
        fmt_us(h.min()),
        fmt_us(h.p50()),
        fmt_us(h.p90()),
        fmt_us(h.p99()),
        fmt_us(h.max()),
    ]
}

fn main() {
    println!("Block latency distributions (us), 8 MB copy");
    let mut rows = Vec::new();
    let mut stage_rows = Vec::new();
    for disk in DiskRow::all() {
        let k = run(disk, Method::Cp);
        rows.push(hist_row(
            format!("{} CP read-wait", disk.label()),
            &k.kstat().read_wait,
        ));
        let k = run(disk, Method::Scp);
        rows.push(hist_row(
            format!("{} SCP block", disk.label()),
            &k.kstat().splice_block_latency,
        ));
        for (stage, h) in k.kstat().stages.iter() {
            stage_rows.push(hist_row(format!("{} {stage}", disk.label()), h));
        }
    }
    print_table(&["Path", "n", "min", "p50", "p90", "p99", "max"], &rows);
    println!();
    println!("Per-stage splice pipeline (SCP runs, us):");
    print_table(
        &["Stage", "n", "min", "p50", "p90", "p99", "max"],
        &stage_rows,
    );
    println!();
    println!("CP read-wait: time a read(2) slept in biowait per block miss.");
    println!("SCP block: read-issue to write-complete per spliced block");
    println!("(several blocks in flight at once, so throughput is higher");
    println!("than 1/latency). Percentiles are log-bucket upper bounds.");
}
