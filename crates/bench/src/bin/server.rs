//! Connection-scale SLO bench: the splice server vs the user-space
//! cp-relay, swept over connection count.
//!
//! For each nominal connection count (1k, 10k, 100k, 1M) and each serve
//! mode — one-at-a-time `splice(2)`, depth-64 splice ring, cp-relay —
//! an open-loop client fleet (constant offered rate, arrivals spread by
//! a seeded draw) fetches one 8 KB file each over a modeled 1 Gb/s
//! link, while the §6.2 fixed-work compute program contends for the
//! CPU. Reported per row: request→last-byte p50/p99/p999 latency, drop
//! and backpressure counters, and the compute PID's CPU share — the
//! paper's availability claim at connection scale.
//!
//! By default the sweep runs host-speed **smoke** counts (the larger
//! nominals are scaled down; the open-loop offered rate is what
//! matters, and it is preserved). `SERVER_FULL=1` runs every nominal at
//! face value; `SERVER_CONNS=<nominal>` runs just that row (the CI
//! determinism gate double-runs one row and byte-compares).
//!
//! Artifact: `BENCH_server.json`, schema-checked and tolerance-gated by
//! `scripts/ci.sh` via `benchdiff`.

use bench::{bench_doc, json_rows, print_table, test_program, write_table};
use knet::LinkModel;
use kproc::programs::{open_loop_delays, scenario_stats, ServeMode, ServerClient, SpliceServer};
use kproc::{ProcState, SockAddr};
use ksim::{Dur, Json};
use splice::KernelBuilder;
use std::rc::Rc;

/// Bytes of the file every connection fetches (one block).
const FILE_BYTES: u64 = 8 * 1024;
/// Pattern + arrival + link seed.
const SEED: u64 = 0x5e12;
/// Listening port.
const PORT: u16 = 80;
/// Ring depth for the batched mode.
const DEPTH: u32 = 64;
/// Offered load: client arrivals per second (open-loop — the window
/// scales with the count so this rate holds at every size).
const ARRIVALS_PER_SEC: u64 = 10_000;

/// The sweep: nominal count and the host-speed smoke count it runs at
/// by default.
const SWEEP: [(u64, usize); 4] = [
    (1_000, 1_000),
    (10_000, 10_000),
    (100_000, 25_000),
    (1_000_000, 50_000),
];

/// One serve mode of the comparison.
#[derive(Clone, Copy)]
struct Mode {
    name: &'static str,
    mode: ServeMode,
}

const MODES: [Mode; 3] = [
    Mode {
        name: "splice",
        mode: ServeMode::Splice,
    },
    Mode {
        name: "ring",
        mode: ServeMode::Ring { depth: DEPTH },
    },
    Mode {
        name: "cp-relay",
        mode: ServeMode::CpRelay,
    },
];

struct Row {
    nominal: u64,
    conns: usize,
    mode: &'static str,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    p99_ns: u64,
    completed: u64,
    dropped_backlog: u64,
    dropped_rcv_full: u64,
    lost_link: u64,
    snd_blocked: u64,
    compute_share: f64,
    elapsed_s: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("nominal_conns", Json::Num(self.nominal as f64))
            .with("conns", Json::Num(self.conns as f64))
            .with("mode", Json::Str(self.mode.into()))
            .with("p50_ms", Json::Num(self.p50_ms))
            .with("p99_ms", Json::Num(self.p99_ms))
            .with("p999_ms", Json::Num(self.p999_ms))
            .with("completed", Json::Num(self.completed as f64))
            .with("dropped_backlog", Json::Num(self.dropped_backlog as f64))
            .with("dropped_rcv_full", Json::Num(self.dropped_rcv_full as f64))
            .with("lost_link", Json::Num(self.lost_link as f64))
            .with("snd_blocked", Json::Num(self.snd_blocked as f64))
            .with("compute_cpu_share", Json::Num(self.compute_share))
            .with("elapsed_s", Json::Num(self.elapsed_s))
    }
}

fn run(nominal: u64, conns: usize, mode: Mode) -> Row {
    let mut k = KernelBuilder::paper_machine_ram().build();
    k.net_mut().set_link_model(
        1,
        LinkModel {
            bps: 125_000_000,
            base_latency: Dur::from_us(200),
            jitter: Dur::from_us(100),
            loss_ppm: 0,
            seed: SEED ^ nominal,
        },
    );
    k.setup_file("/d0/file", FILE_BYTES, SEED);
    k.cold_cache();

    let stats = scenario_stats();
    let t0 = k.now();
    let compute = k.spawn(Box::new(test_program()));
    let server = k.spawn(Box::new(SpliceServer::new(
        PORT,
        "/d0/file",
        FILE_BYTES,
        conns,
        conns as u32,
        mode.mode,
        Rc::clone(&stats),
    )));
    let window = Dur::from_ns(conns as u64 * 1_000_000_000 / ARRIVALS_PER_SEC);
    for delay in open_loop_delays(conns, window, SEED ^ nominal) {
        k.spawn(Box::new(ServerClient::new(
            SockAddr {
                host: 1,
                port: PORT,
            },
            FILE_BYTES,
            SEED,
            delay,
            Rc::clone(&stats),
        )));
    }

    let horizon = k.horizon(4 * 3600);
    // Availability over the compute program's own lifetime (§6.2): every
    // cycle the serving path burns delays the compute exit.
    let t1 = k.run_until_exit_of(compute, horizon);
    let elapsed = t1.since(t0);
    // Then drain the whole fleet: every client must finish byte-exact.
    k.run_to_exit(horizon);

    assert!(
        matches!(k.procs().must(server).state, ProcState::Exited(0)),
        "{} @ {nominal}: server failed",
        mode.name
    );
    let s = stats.borrow();
    assert_eq!(
        s.completed, conns as u64,
        "{} @ {nominal}: clients short",
        mode.name
    );
    assert_eq!(s.mismatches, 0, "{} @ {nominal}: corruption", mode.name);

    let profile = k.profile();
    let cp = profile.proc(compute.0).expect("compute program in profile");
    let compute_share = cp.cpu_time().as_ns() as f64 / elapsed.as_ns() as f64;
    let m = k.metrics();
    let p99_ns = s.latency.p99().unwrap();
    Row {
        nominal,
        conns,
        mode: mode.name,
        p50_ms: s.latency.p50().unwrap() as f64 / 1e6,
        p99_ms: p99_ns as f64 / 1e6,
        p999_ms: s.latency.p999().unwrap() as f64 / 1e6,
        p99_ns,
        completed: s.completed,
        dropped_backlog: m.net.dropped_backlog,
        dropped_rcv_full: m.net.dropped_rcv_full,
        lost_link: m.net.lost_link,
        snd_blocked: m.net.snd_blocked,
        compute_share,
        elapsed_s: elapsed.as_secs_f64(),
    }
}

fn main() {
    let full = std::env::var("SERVER_FULL").is_ok_and(|v| v == "1");
    let only: Option<u64> = std::env::var("SERVER_CONNS")
        .ok()
        .map(|v| v.parse().expect("SERVER_CONNS must be a nominal count"));
    let sweep: Vec<(u64, usize)> = SWEEP
        .iter()
        .map(|&(nominal, smoke)| (nominal, if full { nominal as usize } else { smoke }))
        .filter(|&(nominal, _)| only.is_none_or(|o| o == nominal))
        .collect();
    assert!(!sweep.is_empty(), "SERVER_CONNS matches no sweep nominal");

    println!(
        "Server SLO sweep: {} B file per connection, {} arrivals/s offered",
        FILE_BYTES, ARRIVALS_PER_SEC
    );
    println!();

    let mut rows: Vec<Row> = Vec::new();
    for &(nominal, conns) in &sweep {
        for mode in MODES {
            let t = std::time::Instant::now();
            rows.push(run(nominal, conns, mode));
            eprintln!(
                "[server] {} @ {nominal} ({conns} conns): {:.1}s host",
                mode.name,
                t.elapsed().as_secs_f64()
            );
        }
    }

    print_table(
        &[
            "conns", "mode", "p50 ms", "p99 ms", "p999 ms", "share", "sndblk",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{} ({})", r.nominal, r.conns),
                    r.mode.into(),
                    format!("{:.3}", r.p50_ms),
                    format!("{:.3}", r.p99_ms),
                    format!("{:.3}", r.p999_ms),
                    format!("{:.3}", r.compute_share),
                    format!("{}", r.snd_blocked),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // The paper's claim at connection scale: in-kernel serving leaves
    // strictly more CPU to the compute program than the user-space relay
    // at every count of 10k connections and up.
    for &(nominal, _) in sweep.iter().filter(|&&(n, _)| n >= 10_000) {
        let share = |m: &str| {
            rows.iter()
                .find(|r| r.nominal == nominal && r.mode == m)
                .map(|r| r.compute_share)
                .unwrap()
        };
        let relay = share("cp-relay");
        for m in ["splice", "ring"] {
            assert!(
                share(m) > relay,
                "{m} compute share {:.3} not above cp-relay {relay:.3} at {nominal}",
                share(m)
            );
        }
    }
    // Tail latency must not improve as load is added.
    for mode in MODES {
        let p99s: Vec<(u64, u64)> = rows
            .iter()
            .filter(|r| r.mode == mode.name)
            .map(|r| (r.nominal, r.p99_ns))
            .collect();
        for pair in p99s.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1,
                "{}: p99 fell from {}ns at {} conns to {}ns at {} conns",
                mode.name,
                pair[0].1,
                pair[0].0,
                pair[1].1,
                pair[1].0
            );
        }
    }

    let doc = bench_doc("server")
        .with("file_bytes", Json::Num(FILE_BYTES as f64))
        .with("arrivals_per_sec", Json::Num(ARRIVALS_PER_SEC as f64))
        .with("full", Json::Bool(full))
        .with("rows", json_rows(&rows, Row::to_json));
    write_table("server", &doc);
}
