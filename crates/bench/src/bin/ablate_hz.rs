//! Ablation: the clock frequency (HZ).
//!
//! The splice write side is dispatched from softclock, so the callout
//! tick is the pacing quantum of the whole pipeline (§5.2.2). Ultrix on
//! DECstations ran HZ = 256; this sweep shows how tick granularity moves
//! splice throughput and availability while leaving `cp` (which never
//! touches the callout list) alone.
//!
//! Writes `BENCH_ablate_hz.json` with each run's metrics snapshot.

use bench::{
    availability, bench_doc, idle_baseline, print_table, throughput, write_table, DiskRow,
    Experiment, Method,
};
use ksim::Json;

fn main() {
    println!("Ablation — clock frequency (RAM disk)");
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for hz in [64u64, 128, 256, 512, 1024] {
        let mut exp = Experiment::paper(DiskRow::Ram);
        exp.file_bytes = 4 * 1024 * 1024;
        exp.config.machine.hz = hz;
        // Keep the budget the same *fraction* of a tick.
        exp.config.machine.softwork_budget_per_tick =
            ksim::Dur::from_ns(exp.config.machine.tick().as_ns() / 5);
        let scp = throughput(&exp, Method::Scp);
        let cp = throughput(&exp, Method::Cp);
        let idle = idle_baseline(&exp);
        let avail = availability(&exp, Method::Scp, idle);
        rows.push(vec![
            format!("{hz}"),
            format!("{:.0}", scp.kb_per_s),
            format!("{:.0}", cp.kb_per_s),
            format!("{:.0}%", avail.speed_fraction * 100.0),
        ]);
        runs.push(
            Json::obj()
                .with("hz", Json::Num(hz as f64))
                .with("scp", scp.to_json())
                .with("cp", cp.to_json())
                .with("scp_availability", avail.to_json()),
        );
    }
    print_table(&["HZ", "SCP KB/s", "CP KB/s", "test@SCP"], &rows);
    println!();
    println!("Ultrix on the DECstation ran HZ = 256 (the middle row).");

    let doc = bench_doc("ablate_hz").with("runs", Json::Arr(runs));
    write_table("ablate_hz", &doc);
}
