//! Throughput of every supported endpoint pair through the unified
//! splice engine.
//!
//! One row per (source, sink) combination the capability table accepts:
//! files, sockets, the framebuffer, and the audio/video DACs, all on RAM
//! disks so the engine (not the medium) is what's measured. Paced sinks
//! (the audio DAC drains at a fixed sample rate) are flagged `paced` in
//! the output — their rate is the device's, not the engine's.
//!
//! Writes `BENCH_endpoints.json` with KB/s per pair.

use bench::{bench_doc, json_rows, print_table, write_table};
use kdev::{AudioDac, Framebuffer, VideoDac};
use khw::DiskProfile;
use kproc::programs::{EndSpec, EndpointPair, UdpSink, UdpSource};
use kproc::{ProcState, SockAddr, SpliceLen, SyscallRet};
use ksim::{Dur, Json};
use splice::{Kernel, KernelBuilder};

/// Bytes moved per pair.
const TOTAL: u64 = 1 << 20;
/// Datagram payload for socket sources.
const DGRAM: usize = 8_192;
/// Inter-send gap for socket sources. Soft kernel work is budgeted per
/// clock tick (the machine profile's `softwork_budget_per_tick`), which
/// caps the engine's datagram chain at roughly one per millisecond; a
/// faster sender overflows the 64 KB socket buffer, and UDP has no
/// retransmit, so a dropped datagram would stall the transfer. At this
/// cadence the sender self-clocks against the engine on the shared CPU.
const SRC_GAP: Dur = Dur::from_ms(2);
/// Engine stream-pull / block granularity.
const CHUNK: usize = 8_192;
/// Audio DAC drain rate, bytes per second (the pacing floor).
const AUDIO_RATE: u64 = 1 << 20;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum End {
    File,
    Sock,
    Fb,
    Audio,
    Video,
}

impl End {
    fn label(self) -> &'static str {
        match self {
            End::File => "file",
            End::Sock => "sock",
            End::Fb => "fb",
            End::Audio => "audio",
            End::Video => "video",
        }
    }
}

struct PairResult {
    src: End,
    dst: End,
    kb_per_s: f64,
    elapsed_ms: f64,
    paced: bool,
}

fn kernel() -> Kernel {
    KernelBuilder::paper_machine(DiskProfile::ramdisk())
        .framebuffer("/dev/fb", Framebuffer::new(1 << 20, 30))
        .audio_dac("/dev/speaker", AudioDac::new(AUDIO_RATE, 256 * 1024))
        .video_dac("/dev/video_dac", VideoDac::new(CHUNK))
        .build()
}

fn run_pair(src: End, dst: End) -> PairResult {
    let mut k = kernel();
    if src == End::File {
        k.setup_file("/d0/src", TOTAL, 11);
    }
    k.cold_cache();

    if dst == End::Sock {
        let per = if src == End::Sock { DGRAM } else { CHUNK };
        k.spawn(Box::new(UdpSink::new(7001, TOTAL / per as u64)));
    }

    let src_spec = match src {
        End::File => EndSpec::read("/d0/src"),
        End::Sock => EndSpec::SockBind { port: 7000 },
        End::Fb => EndSpec::read("/dev/fb"),
        End::Audio | End::Video => unreachable!("not sources"),
    };
    let dst_spec = match dst {
        End::File => EndSpec::create("/d1/dst"),
        End::Sock => EndSpec::SockConnect {
            addr: SockAddr {
                host: 1,
                port: 7001,
            },
        },
        End::Audio => EndSpec::write("/dev/speaker"),
        End::Video => EndSpec::write("/dev/video_dac"),
        End::Fb => unreachable!("not a sink"),
    };

    let (pair, result) = EndpointPair::new(src_spec, dst_spec, SpliceLen::Bytes(TOTAL));
    let pid = k.spawn(Box::new(pair));
    if src == End::Sock {
        k.spawn(Box::new(UdpSource::new(
            SockAddr {
                host: 1,
                port: 7000,
            },
            DGRAM,
            TOTAL / DGRAM as u64,
            SRC_GAP,
            11,
        )));
    }

    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "{}->{}: driver failed",
        src.label(),
        dst.label()
    );
    assert_eq!(
        result.borrow().clone(),
        Some(SyscallRet::Val(TOTAL as i64)),
        "{}->{}: short transfer",
        src.label(),
        dst.label()
    );

    // Rate over the splice itself: descriptor creation to completion
    // delivery, straight from the kstat span.
    let span = k.kstat().spans.iter().next().expect("span");
    let elapsed = span
        .completed
        .expect("completed")
        .since(span.created.expect("created"));
    let secs = elapsed.as_ns() as f64 / 1e9;
    PairResult {
        src,
        dst,
        kb_per_s: (TOTAL as f64 / 1024.0) / secs,
        elapsed_ms: secs * 1e3,
        // Paced rows measure the peer, not the engine: the audio DAC
        // drains at its sample rate, and socket sources are held to the
        // tick-budget cadence described on SRC_GAP.
        paced: dst == End::Audio || src == End::Sock,
    }
}

fn main() {
    println!(
        "Endpoint matrix — {} KB through every supported pair (RAM disks)",
        TOTAL / 1024
    );
    let sources = [End::File, End::Sock, End::Fb];
    let sinks = [End::File, End::Sock, End::Audio, End::Video];
    let mut results = Vec::new();
    for src in sources {
        for dst in sinks {
            results.push(run_pair(src, dst));
        }
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                format!("{}->{}", r.src.label(), r.dst.label()),
                format!("{:.0}", r.kb_per_s),
                format!("{:.2}", r.elapsed_ms),
                if r.paced { "yes".into() } else { "".into() },
            ]
        })
        .collect();
    print_table(&["Pair", "KB/s", "ms", "paced"], &rows);

    let doc = bench_doc("endpoints")
        .with("total_bytes", Json::Num(TOTAL as f64))
        .with(
            "rows",
            json_rows(&results, |r| {
                Json::obj()
                    .with("src", Json::Str(r.src.label().into()))
                    .with("dst", Json::Str(r.dst.label().into()))
                    .with("kb_per_s", Json::Num(r.kb_per_s))
                    .with("elapsed_ms", Json::Num(r.elapsed_ms))
                    .with("paced", Json::Bool(r.paced))
            }),
        );
    write_table("endpoints", &doc);
}
