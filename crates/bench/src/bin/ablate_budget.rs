//! Ablation: the deferred-kernel-work budget.
//!
//! The budget is the mechanism behind the paper's availability result: it
//! bounds how much of a busy CPU the splice chains may take per tick
//! (excess waits for idle). Sweeping it trades SCP contended throughput
//! against test-program availability on the RAM disk.

use bench::{availability, idle_baseline, print_table, DiskRow, Experiment, Method};
use ksim::Dur;

fn main() {
    println!("Ablation — softwork budget per tick (RAM disk, SCP environment)");
    let mut rows = Vec::new();
    for frac_pct in [5u64, 10, 20, 40, 80] {
        let mut exp = Experiment::paper(DiskRow::Ram);
        let tick = exp.config.machine.tick();
        exp.config.machine.softwork_budget_per_tick = Dur::from_ns(tick.as_ns() * frac_pct / 100);
        let idle = idle_baseline(&exp);
        let r = availability(&exp, Method::Scp, idle);
        rows.push(vec![
            format!("{frac_pct}%"),
            format!("{:.2}", r.slowdown),
            format!("{:.0}%", r.speed_fraction * 100.0),
        ]);
    }
    print_table(&["Budget", "F_scp", "test speed"], &rows);
    println!();
    println!("default is 20% of a tick; the paper's machine showed test at 80%");
}
