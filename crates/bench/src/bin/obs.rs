//! Observability overhead bench: the splice server workload with the
//! request-observability pipeline off, head-sampled (the resident
//! 1-in-64 default), and full (every span committed).
//!
//! One open-loop fleet per mode fetches an 8 KB file each over a
//! modeled 1 Gb/s link while the §6.2 compute program contends for the
//! CPU. The pipeline's costs are explicit simulated CPU (stage at
//! accept, commit at close), so the throughput delta between modes is
//! the *measured* price of observing the workload at scale — and the
//! budget is asserted right here: head-sampled tracing must cost at
//! most [`OVERHEAD_BUDGET_PCT`] of the tracing-off throughput.
//!
//! The sampled-mode kernel is then cross-examined by the
//! `kanalyze::request_sampling` audit (sampled-span p99 vs the full
//! end-to-end histogram; lossless tail retention), and a final short
//! run under an impossible SLO drives the burn-rate monitor into an
//! alert, freezing the flight recorder into `FLIGHT_server.json`.
//!
//! Artifacts: `BENCH_obs.json` and `FLIGHT_server.json`, both
//! schema-checked and tolerance-gated by `scripts/ci.sh`.

use bench::{bench_doc, json_rows, print_table, test_program, write_bench_json, write_table};
use kanalyze::{request_sampling, AuditReport, Tolerance};
use knet::LinkModel;
use kproc::programs::{open_loop_delays, scenario_stats, ServeMode, ServerClient, SpliceServer};
use kproc::{ProcState, SockAddr};
use ksim::{Dur, Json, ObsConfig, SloConfig};
use splice::{Kernel, KernelBuilder};
use std::rc::Rc;

/// Bytes of the file every connection fetches (one block).
const FILE_BYTES: u64 = 8 * 1024;
/// Pattern + arrival + link seed.
const SEED: u64 = 0x0b5e12;
/// Listening port.
const PORT: u16 = 80;
/// Offered load: client arrivals per second (open-loop).
const ARRIVALS_PER_SEC: u64 = 10_000;
/// Connections per mode (override with `OBS_CONNS=<n>`).
const CONNS: usize = 8_000;
/// The in-binary gate: head-sampled tracing may cost at most this
/// fraction of the tracing-off simulated throughput.
const OVERHEAD_BUDGET_PCT: f64 = 5.0;
/// Trace-ring capacity: every mode runs with the same ring installed so
/// events-per-request is comparable across rows.
const TRACE_CAP: usize = 65_536;
/// Head-sampled spans below this floor make the p99 audit vacuous.
const AUDIT_MIN_SAMPLED: u64 = 8;

/// One observability mode of the comparison.
#[derive(Clone, Copy)]
struct Mode {
    name: &'static str,
    cfg: fn() -> ObsConfig,
}

const MODES: [Mode; 3] = [
    Mode {
        name: "off",
        cfg: ObsConfig::off,
    },
    Mode {
        name: "sampled",
        cfg: ObsConfig::on,
    },
    Mode {
        name: "full",
        cfg: || ObsConfig {
            sample_period: 1,
            ..ObsConfig::on()
        },
    },
];

struct Row {
    mode: &'static str,
    sample_period: u32,
    requests: u64,
    spans_committed: u64,
    spans_head_sampled: u64,
    spans_tail_retained: u64,
    trace_emitted: u64,
    events_per_request: f64,
    elapsed_s: f64,
    throughput_rps: f64,
    overhead_pct: f64,
    compute_share: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("mode", Json::Str(self.mode.into()))
            .with("sample_period", Json::Num(self.sample_period as f64))
            .with("requests", Json::Num(self.requests as f64))
            .with("spans_committed", Json::Num(self.spans_committed as f64))
            .with(
                "spans_head_sampled",
                Json::Num(self.spans_head_sampled as f64),
            )
            .with(
                "spans_tail_retained",
                Json::Num(self.spans_tail_retained as f64),
            )
            .with("trace_emitted", Json::Num(self.trace_emitted as f64))
            .with("events_per_request", Json::Num(self.events_per_request))
            .with("elapsed_s", Json::Num(self.elapsed_s))
            .with("throughput_rps", Json::Num(self.throughput_rps))
            .with("overhead_pct", Json::Num(self.overhead_pct))
            .with("compute_cpu_share", Json::Num(self.compute_share))
    }
}

/// Runs the server workload once under `cfg`; the kernel comes back so
/// the caller can audit the sampled mode's span population.
fn run(conns: usize, cfg: ObsConfig) -> (Row, Kernel) {
    let mut k = KernelBuilder::paper_machine_ram()
        .trace(TRACE_CAP)
        .observe(cfg)
        .build();
    k.net_mut().set_link_model(
        1,
        LinkModel {
            bps: 125_000_000,
            base_latency: Dur::from_us(200),
            jitter: Dur::from_us(100),
            loss_ppm: 0,
            seed: SEED,
        },
    );
    k.setup_file("/d0/file", FILE_BYTES, SEED);
    k.cold_cache();

    let stats = scenario_stats();
    let t0 = k.now();
    let compute = k.spawn(Box::new(test_program()));
    let server = k.spawn(Box::new(SpliceServer::new(
        PORT,
        "/d0/file",
        FILE_BYTES,
        conns,
        conns as u32,
        ServeMode::Splice,
        Rc::clone(&stats),
    )));
    let window = Dur::from_ns(conns as u64 * 1_000_000_000 / ARRIVALS_PER_SEC);
    for delay in open_loop_delays(conns, window, SEED) {
        k.spawn(Box::new(ServerClient::new(
            SockAddr {
                host: 1,
                port: PORT,
            },
            FILE_BYTES,
            SEED,
            delay,
            Rc::clone(&stats),
        )));
    }

    let horizon = k.horizon(4 * 3600);
    let t_compute = k.run_until_exit_of(compute, horizon);
    // Throughput over the full drain: every request must finish, so the
    // pipeline's per-request cost shows up directly in the drain time.
    let t_done = k.run_to_exit(horizon);
    let elapsed = t_done.since(t0);

    assert!(
        matches!(k.procs().must(server).state, ProcState::Exited(0)),
        "{cfg:?}: server failed"
    );
    let s = stats.borrow();
    assert_eq!(s.completed, conns as u64, "{cfg:?}: clients short");
    assert_eq!(s.mismatches, 0, "{cfg:?}: corruption");
    drop(s);

    let profile = k.profile();
    let cp = profile.proc(compute.0).expect("compute program in profile");
    let compute_share = cp.cpu_time().as_ns() as f64 / t_compute.since(t0).as_ns() as f64;
    let m = k.metrics();
    let requests = m.obs.requests.max(conns as u64);
    let row = Row {
        mode: "",
        sample_period: cfg.sample_period,
        requests: m.obs.requests,
        spans_committed: m.obs.spans_committed,
        spans_head_sampled: m.obs.spans_head_sampled,
        spans_tail_retained: m.obs.spans_tail_retained,
        trace_emitted: m.obs.trace_emitted,
        events_per_request: m.obs.trace_emitted as f64 / requests as f64,
        elapsed_s: elapsed.as_secs_f64(),
        throughput_rps: conns as f64 / elapsed.as_secs_f64(),
        overhead_pct: 0.0,
        compute_share,
    };
    (row, k)
}

/// A short run under an unmeetable SLO: every request violates, the
/// burn-rate monitor alerts, and the flight recorder freezes — the
/// deterministic `FLIGHT_server.json` artifact.
fn flight_run(conns: usize) -> Json {
    let cfg = ObsConfig {
        slo: SloConfig {
            latency_target: Dur::from_us(1),
            ..SloConfig::default()
        },
        ..ObsConfig::on()
    };
    let (_, k) = run(conns, cfg);
    let m = k.metrics();
    assert!(m.obs.alerts >= 1, "impossible SLO fired no alert");
    assert_eq!(
        m.obs.violations, m.obs.requests,
        "1 µs target: every request must violate"
    );
    k.flight_json("server").expect("alert froze no flight dump")
}

fn main() {
    let conns: usize = std::env::var("OBS_CONNS")
        .ok()
        .map(|v| v.parse().expect("OBS_CONNS must be a count"))
        .unwrap_or(CONNS);

    println!(
        "Observability overhead: {conns} conns, {} B file, {} arrivals/s offered",
        FILE_BYTES, ARRIVALS_PER_SEC
    );
    println!();

    let mut rows: Vec<Row> = Vec::new();
    let mut sampled_kernel: Option<Kernel> = None;
    for mode in MODES {
        let t = std::time::Instant::now();
        let (mut row, k) = run(conns, (mode.cfg)());
        row.mode = mode.name;
        eprintln!(
            "[obs] {} ({conns} conns): {:.1}s host",
            mode.name,
            t.elapsed().as_secs_f64()
        );
        if mode.name == "sampled" {
            sampled_kernel = Some(k);
        }
        rows.push(row);
    }

    let thr_off = rows
        .iter()
        .find(|r| r.mode == "off")
        .map(|r| r.throughput_rps)
        .unwrap();
    for row in &mut rows {
        row.overhead_pct = 100.0 * (thr_off - row.throughput_rps) / thr_off;
    }

    print_table(
        &[
            "mode",
            "period",
            "req/s",
            "ovh %",
            "ev/req",
            "committed",
            "share",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.into(),
                    format!("{}", r.sample_period),
                    format!("{:.0}", r.throughput_rps),
                    format!("{:.2}", r.overhead_pct),
                    format!("{:.1}", r.events_per_request),
                    format!("{}", r.spans_committed),
                    format!("{:.3}", r.compute_share),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // The tentpole gate: the resident head-sampled default must cost at
    // most the budget. (Full mode is reported, not gated — committing
    // every span is the opt-in price of total recall.)
    let sampled = rows.iter().find(|r| r.mode == "sampled").unwrap();
    assert!(
        sampled.overhead_pct <= OVERHEAD_BUDGET_PCT,
        "head-sampled overhead {:.2}% exceeds {OVERHEAD_BUDGET_PCT}% budget",
        sampled.overhead_pct
    );
    // Head sampling must actually sample: committed spans well below
    // requests, yet enough kept for the audit to bite.
    assert!(
        sampled.spans_committed < sampled.requests / 8,
        "sampled mode committed {} of {} spans — not sampling",
        sampled.spans_committed,
        sampled.requests
    );

    // Cross-examine the sampled population against the full histogram.
    let k = sampled_kernel.expect("sampled mode ran");
    let audit = AuditReport {
        outcomes: request_sampling(
            k.obs(),
            Tolerance {
                rel: 0.10,
                abs: 0.0,
            },
            AUDIT_MIN_SAMPLED,
        ),
    };
    println!();
    print!("{}", audit.render());
    assert!(audit.pass(), "request-sampling audit failed");

    // Provoke an alert and write the flight artifact.
    let flight = flight_run((conns / 16).max(256));
    write_bench_json("FLIGHT_server.json", &flight);

    let doc = bench_doc("obs")
        .with("file_bytes", Json::Num(FILE_BYTES as f64))
        .with("conns", Json::Num(conns as f64))
        .with("arrivals_per_sec", Json::Num(ARRIVALS_PER_SEC as f64))
        .with("overhead_budget_pct", Json::Num(OVERHEAD_BUDGET_PCT))
        .with("rows", json_rows(&rows, Row::to_json))
        .with("audit", audit.to_json());
    write_table("obs", &doc);
}
