//! Trace-driven performance analysis: critical-path decomposition plus
//! queueing-law audits for every named workload.
//!
//! For each workload in [`bench::workloads::ALL`] this binary runs the
//! scenario with the trace ring and gauge sampler enabled, then hands
//! the recorded telemetry to `kanalyze`:
//!
//! 1. **Decomposition** — every stitched block span is partitioned into
//!    read-queue / read-service / handoff / write-service components
//!    (gap-free by construction), ranked into a bottleneck table with a
//!    dominant-stage verdict, and closed against the independently
//!    recorded `end_to_end` stage histogram within 1%.
//! 2. **Audits** — Little's law (sampler gauges vs stage histograms),
//!    the utilization law (device busy time vs service digests), and
//!    exact byte conservation per splice descriptor.
//!
//! Artifact: `REPORT_<workload>.json` per workload, carrying the shared
//! `schema_version` envelope and the workload's seed/byte provenance.
//! The process exits nonzero if any closure check or auditor fails, so
//! `scripts/ci.sh` can use it as a hard gate.

use bench::{bench_doc, workload_meta, workloads, write_bench_json};
use kanalyze::{
    byte_conservation, decompose, littles_law, utilization_law, AuditReport, DescBytes,
    DeviceAccounting, Tolerance,
};
use ksim::{Dur, Json};
use splice::{Kernel, OutcomeStatus};

/// Gauge-sampler period: one scheduler tick on the paper machine, the
/// finest granularity the callout wheel can deliver.
const PERIOD: Dur = Dur::from_ms(10);
/// Sampler ring capacity: ample for every workload's run length.
const CAPACITY: usize = 1 << 16;

/// Closure tolerance for the decomposition (acceptance criterion: the
/// per-stage sums must reach measured end-to-end within 1%).
const CLOSURE_TOL: f64 = kanalyze::decompose::CLOSURE_TOLERANCE;

/// Little's-law tolerance: 25% relative, with an absolute floor of
/// half a block of occupancy. The auditor adds its own resolution
/// slack (`intervals / n_samples`) on top: the callout-driven gauge
/// samples unevenly under load and cannot see intervals shorter than
/// its achieved spacing, and that bound is part of the law's statement
/// (see `kanalyze::littles_law`).
const LITTLE_TOL: Tolerance = Tolerance {
    rel: 0.25,
    abs: 0.5,
};

/// Time-weighted mean of a gauge over `[0, window_ns]`: trapezoids
/// between samples (the gauge holds no meaning between readings, so
/// linear interpolation splits the difference), zero occupancy assumed
/// at boot, last reading held to the window end. A plain mean would
/// under-weight busy plateaus: the sampler callout fires late while
/// the CPU churns soft work, so samples bunch up in idle stretches.
fn time_weighted_mean(points: &[(u64, u64)], window_ns: u64) -> f64 {
    if window_ns == 0 {
        return 0.0;
    }
    let mut mass = 0.0;
    let (mut pt, mut po) = (0u64, 0.0f64);
    for &(t, occ) in points {
        let o = occ as f64;
        mass += 0.5 * (po + o) * t.saturating_sub(pt) as f64;
        (pt, po) = (t, o);
    }
    mass += po * window_ns.saturating_sub(pt) as f64;
    mass / window_ns as f64
}

/// Utilization-law tolerance: busy time and the service histogram are
/// recorded side by side per request, so they must agree to 1%.
const UTIL_TOL: Tolerance = Tolerance {
    rel: 0.01,
    abs: 0.0,
};

/// Runs the audits for one finished kernel.
fn audit(k: &Kernel, expected_bytes: u64) -> AuditReport {
    let stages = &k.kstat().stages;
    let mut report = AuditReport::default();

    // Little's law, read side and write side. The sampler window runs
    // from boot to now; the time-weighted mean of the gauge estimates
    // the time-averaged occupancy over the same window.
    let samples: Vec<_> = k.samples().collect();
    let window_ns = k.now().as_ns();
    if !samples.is_empty() && window_ns > 0 {
        let n_samples = samples.len() as u64;
        let reads: Vec<(u64, u64)> = samples
            .iter()
            .map(|s| (s.at.as_ns(), s.inflight_reads))
            .collect();
        let writes: Vec<(u64, u64)> = samples
            .iter()
            .map(|s| (s.at.as_ns(), s.inflight_writes))
            .collect();
        report.outcomes.push(littles_law(
            "inflight_reads",
            time_weighted_mean(&reads, window_ns),
            stages.read_service.sum(),
            stages.read_service.count(),
            n_samples,
            window_ns,
            LITTLE_TOL,
        ));
        report.outcomes.push(littles_law(
            "inflight_writes",
            time_weighted_mean(&writes, window_ns),
            stages.read_to_write.sum() + stages.write_service.sum(),
            stages.write_service.count(),
            n_samples,
            window_ns,
            LITTLE_TOL,
        ));
    }

    // Utilization law, per mounted disk, through the one unified
    // accounting source on `DiskUnitKind`.
    for du in k.disks() {
        report.outcomes.push(utilization_law(
            &DeviceAccounting {
                name: du.name.clone(),
                busy_ns: du.kind.busy_time().as_ns() as u128,
                service_sum_ns: du.kind.service_hist().sum(),
                requests: du.kind.requests(),
                service_count: du.kind.service_hist().count(),
            },
            UTIL_TOL,
        ));
    }

    // Byte conservation: kstat spans vs engine outcomes vs the
    // workload's own expected byte count, exact.
    let descs: Vec<DescBytes> = k
        .kstat()
        .spans
        .iter()
        .map(|s| DescBytes {
            desc: s.id,
            span_bytes: s.bytes_moved,
            outcome_bytes: match k.splice_outcome(s.id) {
                OutcomeStatus::Done(o) => o.bytes_moved,
                // A splice that never finished conserves nothing; the
                // zero fails the audit loudly below.
                OutcomeStatus::Pending | OutcomeStatus::Unknown => 0,
            },
            blocks_done: s.blocks_done,
            reads_issued: s.reads_issued,
            read_hits: s.read_hits,
            writes_issued: s.writes_issued,
        })
        .collect();
    report
        .outcomes
        .push(byte_conservation(&descs, expected_bytes));
    report
}

/// Analyzes one workload; returns whether every gate passed.
fn analyze_one(name: &str) -> bool {
    let k = workloads::run_sampled(name, PERIOD, CAPACITY);
    let meta = workloads::meta(name);
    let spans = k.trace().query().all_block_spans();
    let d = decompose(&spans, &k.kstat().stages, CLOSURE_TOL);
    let audits = audit(&k, meta.expected_bytes);

    println!("== {name} ==");
    print!("{}", d.render());
    print!("{}", audits.render());
    println!();

    let doc = bench_doc(&format!("report_{name}"))
        .with(
            "meta",
            workload_meta(name, &meta.seeds, meta.expected_bytes),
        )
        .with("sample_period_ns", Json::Num(PERIOD.as_ns() as f64))
        .with("decomposition", d.to_json())
        .with("audits", audits.to_json())
        .with("stages", k.kstat().stages.to_json());
    write_bench_json(&format!("REPORT_{name}.json"), &doc);

    if !d.closure_pass {
        eprintln!(
            "{name}: decomposition closure FAILED: components {} ns vs end-to-end {} ns (rel {:.4} > {CLOSURE_TOL})",
            d.components_ns, d.kstat_end_to_end_ns, d.closure_error
        );
    }
    for o in audits.outcomes.iter().filter(|o| !o.pass) {
        eprintln!(
            "{name}: audit {} FAILED: measured {} vs predicted {} ({})",
            o.law, o.measured, o.predicted, o.detail
        );
    }
    d.closure_pass && audits.pass()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        workloads::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut ok = true;
    for name in names {
        ok &= analyze_one(name);
    }
    assert!(ok, "analysis gates failed (see messages above)");
}
