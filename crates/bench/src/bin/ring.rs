//! Splice-ring batching bench: crossings-per-byte and compute-PID CPU
//! share for batched submission/reaping vs one-at-a-time `splice(2)`.
//!
//! The workload copies `PAIRS` small files between two RAM disks while a
//! fixed-work compute program contends for the CPU. The legacy row runs
//! open/open/splice/close/close per pair (five crossings each); the ring
//! rows open everything up front and move the whole set through one
//! splice ring in waves of `depth` submissions — one `ring_submit` plus
//! one `ring_reap` crossing per wave. Syscall crossings come from the
//! copier PID's own tick accounting (`acct.syscalls`); availability is
//! the compute PID's accounted CPU share over its own lifetime (§6.2
//! style): every cycle the copy path burns delays the compute exit.
//!
//! Artifact: `BENCH_ring.json` — one row per mode, schema-checked and
//! tolerance-checked by `scripts/ci.sh`.

use bench::{bench_doc, json_rows, print_table, test_program, write_table};
use kproc::programs::RingScp;
use ksim::Json;
use splice::KernelBuilder;

/// File pairs copied per run.
const PAIRS: usize = 256;
/// Bytes per source file.
const FILE_BYTES: u64 = 8 * 1024;
/// Ring depths measured (0 = the legacy one-at-a-time baseline).
const DEPTHS: [u32; 5] = [0, 1, 8, 64, 256];

struct Row {
    depth: u32,
    crossings: u64,
    bytes: u64,
    crossings_per_mb: f64,
    elapsed_s: f64,
    /// CPU the copier was billed for (its syscall cost), excluding the
    /// wall-clock time it spent waiting for completions or the CPU.
    copier_cpu_s: f64,
    compute_share: f64,
}

impl Row {
    fn label(&self) -> String {
        if self.depth == 0 {
            "legacy".into()
        } else {
            format!("ring-{}", self.depth)
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("mode", Json::Str(self.label()))
            .with("depth", Json::Num(self.depth as f64))
            .with("crossings", Json::Num(self.crossings as f64))
            .with("bytes", Json::Num(self.bytes as f64))
            .with("crossings_per_mb", Json::Num(self.crossings_per_mb))
            .with("elapsed_s", Json::Num(self.elapsed_s))
            .with("copier_cpu_s", Json::Num(self.copier_cpu_s))
            .with("compute_cpu_share", Json::Num(self.compute_share))
    }
}

fn run(depth: u32) -> Row {
    let mut k = KernelBuilder::paper_machine_ram().build();
    for i in 0..PAIRS {
        k.setup_file(&format!("/d0/f{i}"), FILE_BYTES, 0x51ce ^ i as u64);
    }
    k.cold_cache();

    let t0 = k.now();
    let compute = k.spawn(Box::new(test_program()));
    let copier = k.spawn(Box::new(RingScp::new("/d0/f", "/d1/c", PAIRS, depth)));
    let horizon = k.horizon(3600);
    // The copy finishes first; the fixed-work compute program runs on.
    // Availability is measured over the compute program's lifetime (as
    // in the paper's §6.2): every cycle the copy path burns — crossings,
    // handlers, context switches — delays the compute exit.
    let t1 = k.run_until_exit_of(copier, horizon);
    let copy_elapsed = t1.since(t0);
    let t2 = k.run_until_exit_of(compute, horizon);
    let elapsed = t2.since(t0);

    // The copier must have finished cleanly and copied every byte.
    let p = k.procs().must(copier);
    assert!(
        matches!(p.state, kproc::ProcState::Exited(0)),
        "copier did not exit cleanly at depth {depth}: {:?}",
        p.state
    );
    let crossings = p.acct.syscalls;
    let copier_cpu = p.acct.cpu_time();
    for i in 0..PAIRS {
        assert_eq!(
            k.verify_pattern_file(&format!("/d1/c{i}"), FILE_BYTES, 0x51ce ^ i as u64),
            None,
            "copy {i} corrupt at depth {depth}"
        );
    }

    // Compute share over the contended interval, from tick accounting.
    let profile = k.profile();
    let cp = profile.proc(compute.0).expect("compute program in profile");
    let compute_share = cp.cpu_time().as_ns() as f64 / elapsed.as_ns() as f64;

    let bytes = PAIRS as u64 * FILE_BYTES;
    Row {
        depth,
        crossings,
        bytes,
        crossings_per_mb: crossings as f64 / (bytes as f64 / (1024.0 * 1024.0)),
        elapsed_s: copy_elapsed.as_secs_f64(),
        copier_cpu_s: copier_cpu.as_secs_f64(),
        compute_share,
    }
}

fn main() {
    println!(
        "Splice-ring batching: {PAIRS} x {} KB copies, RAM disks",
        FILE_BYTES / 1024
    );
    println!();

    let rows: Vec<Row> = DEPTHS.iter().map(|&d| run(d)).collect();
    print_table(
        &[
            "Mode",
            "crossings",
            "per MB",
            "copy s",
            "copier cpu s",
            "compute share",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label(),
                    format!("{}", r.crossings),
                    format!("{:.1}", r.crossings_per_mb),
                    format!("{:.3}", r.elapsed_s),
                    format!("{:.3}", r.copier_cpu_s),
                    format!("{:.3}", r.compute_share),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let legacy = &rows[0];
    let ring: Vec<&Row> = rows.iter().filter(|r| r.depth > 0).collect();

    // Crossings-per-byte must fall monotonically with ring depth.
    for pair in ring.windows(2) {
        assert!(
            pair[1].crossings_per_mb < pair[0].crossings_per_mb,
            "crossings-per-byte not monotone: depth {} ({:.1}/MB) vs depth {} ({:.1}/MB)",
            pair[0].depth,
            pair[0].crossings_per_mb,
            pair[1].depth,
            pair[1].crossings_per_mb
        );
    }
    // Deep rings must beat the one-at-a-time baseline on compute share.
    for r in ring.iter().filter(|r| r.depth >= 64) {
        assert!(
            r.compute_share > legacy.compute_share,
            "depth {} compute share {:.3} not above legacy {:.3}",
            r.depth,
            r.compute_share,
            legacy.compute_share
        );
    }
    // A depth-1 ring is the same protocol as a sync splice per pair plus
    // the explicit submit/reap crossings: the copier's accounted syscall
    // cost must stay within 5% of the legacy path.
    let d1 = ring.iter().find(|r| r.depth == 1).unwrap();
    let ratio = d1.copier_cpu_s / legacy.copier_cpu_s;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "depth-1 ring copier cpu {:.3}s vs legacy {:.3}s: ratio {ratio:.3} outside 5%",
        d1.copier_cpu_s,
        legacy.copier_cpu_s
    );

    let doc = bench_doc("ring")
        .with("pairs", Json::Num(PAIRS as f64))
        .with("file_bytes", Json::Num(FILE_BYTES as f64))
        .with("rows", json_rows(&rows, Row::to_json))
        .with("depth1_vs_legacy_cpu_ratio", Json::Num(ratio));
    write_table("ring", &doc);
}
