//! Regenerates Table 2: mean throughput, 8 MB copy, otherwise idle CPU.
//!
//! Paper values: RAM — SCP 3343 KB/s vs CP 1884 KB/s (+77 %); real disks —
//! media-dominated, "the benefit of splice is minor".

use bench::{print_table, table2_row, DiskRow};

fn main() {
    println!("Table 2 — Mean Throughput Measurements (copying 8 MB file)");
    let rows: Vec<Vec<String>> = DiskRow::all()
        .into_iter()
        .map(|d| {
            let r = table2_row(d);
            vec![
                d.label().to_string(),
                format!("{:.0}", r.scp_kbs),
                format!("{:.0}", r.cp_kbs),
                format!("{:+.0}%", r.pct),
            ]
        })
        .collect();
    print_table(&["Disk", "SCP KB/s", "CP KB/s", "%Improve"], &rows);
    println!();
    println!("paper:  RAM   3343 vs 1884  (+77%)");
    println!("paper:  RZ56/RZ58: media-dominated, minor improvement");
}
