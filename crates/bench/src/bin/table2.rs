//! Regenerates Table 2: mean throughput, 8 MB copy, otherwise idle CPU.
//!
//! Paper values: RAM — SCP 3343 KB/s vs CP 1884 KB/s (+77 %); real disks —
//! media-dominated, "the benefit of splice is minor".
//!
//! Besides the table on stdout, writes `BENCH_table2.json` with the full
//! [`splice::MetricsSnapshot`] of each run (per-splice span summaries,
//! copy counters, latency digests) so the perf trajectory is
//! machine-checkable across revisions.

use bench::{bench_doc, json_rows, print_table, table2_row, write_table, DiskRow, Table2Row};
use ksim::Json;

fn main() {
    println!("Table 2 — Mean Throughput Measurements (copying 8 MB file)");
    let results: Vec<_> = DiskRow::all().into_iter().map(table2_row).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.disk.label().to_string(),
                format!("{:.0}", r.scp.kb_per_s),
                format!("{:.0}", r.cp.kb_per_s),
                format!("{:+.0}%", r.pct),
            ]
        })
        .collect();
    print_table(&["Disk", "SCP KB/s", "CP KB/s", "%Improve"], &rows);
    println!();
    println!("paper:  RAM   3343 vs 1884  (+77%)");
    println!("paper:  RZ56/RZ58: media-dominated, minor improvement");

    let doc = bench_doc("table2")
        .with("file_bytes", Json::Num((8u64 * 1024 * 1024) as f64))
        .with("rows", json_rows(&results, Table2Row::to_json));
    write_table("table2", &doc);
}
