//! Regenerates Table 1: CPU availability factors, 8 MB copy.
//!
//! Paper values: the test program runs at 50 % of idle speed under CP on
//! the RAM disk (60 % on RZ56/RZ58), and at 80 % under SCP on RAM/RZ58
//! (70 % on RZ56) — a 20–70 % execution-speed improvement.
//!
//! Besides the table on stdout, writes `BENCH_table1.json` with the full
//! [`splice::MetricsSnapshot`] of each environment so the numbers are
//! machine-checkable across revisions.

use bench::{bench_doc, json_rows, print_table, table1_row, write_table, DiskRow, Table1Row};
use ksim::Json;

fn main() {
    println!("Table 1 — CPU Availability Factors (copying 8 MB file)");
    let results: Vec<_> = DiskRow::all().into_iter().map(table1_row).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.disk.label().to_string(),
                format!("{:.2}", r.cp.slowdown),
                format!("{:.2}", r.scp.slowdown),
                format!("{:.2}", r.improvement),
                format!("{:.0}%", r.pct),
                format!("{:.0}%", 100.0 * r.cp.speed_fraction),
                format!("{:.0}%", 100.0 * r.scp.speed_fraction),
            ]
        })
        .collect();
    print_table(
        &[
            "Disk", "F_cp", "F_scp", "Improve", "%Improve", "test@CP", "test@SCP",
        ],
        &rows,
    );
    println!();
    println!("paper:  RAM   2.00 1.25  (test at 50% / 80%)");
    println!("paper:  RZ56  1.67 1.43  (test at 60% / 70%)");
    println!("paper:  RZ58  1.67 1.25  (test at 60% / 80%)");

    let doc = bench_doc("table1")
        .with("file_bytes", Json::Num((8u64 * 1024 * 1024) as f64))
        .with("rows", json_rows(&results, Table1Row::to_json));
    write_table("table1", &doc);
}
