//! Regenerates Table 1: CPU availability factors, 8 MB copy.
//!
//! Paper values: the test program runs at 50 % of idle speed under CP on
//! the RAM disk (60 % on RZ56/RZ58), and at 80 % under SCP on RAM/RZ58
//! (70 % on RZ56) — a 20–70 % execution-speed improvement.

use bench::{print_table, table1_row, DiskRow};

fn main() {
    println!("Table 1 — CPU Availability Factors (copying 8 MB file)");
    let rows: Vec<Vec<String>> = DiskRow::all()
        .into_iter()
        .map(|d| {
            let r = table1_row(d);
            vec![
                d.label().to_string(),
                format!("{:.2}", r.f_cp),
                format!("{:.2}", r.f_scp),
                format!("{:.2}", r.improvement),
                format!("{:.0}%", r.pct),
                format!("{:.0}%", 100.0 / r.f_cp),
                format!("{:.0}%", 100.0 / r.f_scp),
            ]
        })
        .collect();
    print_table(
        &[
            "Disk", "F_cp", "F_scp", "Improve", "%Improve", "test@CP", "test@SCP",
        ],
        &rows,
    );
    println!();
    println!("paper:  RAM   2.00 1.25  (test at 50% / 80%)");
    println!("paper:  RZ56  1.67 1.43  (test at 60% / 70%)");
    println!("paper:  RZ58  1.67 1.25  (test at 60% / 80%)");
}
