//! Extension: CPU availability for the §7 baselines.
//!
//! Table 1 compared only CP and SCP; this extends the same procedure to
//! the ioctl-handle and mmap baselines on the RAM disk. [PCM91]'s scheme
//! "requires user process execution to effect a data transfer", so its
//! availability should look like CP's even though it copies nothing —
//! which is the paper's §7 argument for splice in one number.

use bench::{availability, idle_baseline, print_table, DiskRow, Experiment, Method};

fn main() {
    println!("Extension — CPU availability of the related-work baselines (RAM disk)");
    let exp = Experiment::paper(DiskRow::Ram);
    let idle = idle_baseline(&exp);
    let mut rows = Vec::new();
    for m in [Method::Cp, Method::Handle, Method::Mmap, Method::Scp] {
        let r = availability(&exp, m, idle);
        rows.push(vec![
            m.label().to_string(),
            format!("{:.2}", r.slowdown),
            format!("{:.0}%", r.speed_fraction * 100.0),
        ]);
    }
    print_table(&["Method", "F", "test speed"], &rows);
    println!();
    println!("copy-free but user-driven (HANDLE) still costs the bystander its");
    println!("timeslices; only the in-kernel asynchronous path (SCP) does not.");
}
