//! Ablation: the §5.2.3 flow-control watermarks.
//!
//! "If the number of pending reads and the number of pending writes drop
//! below pre-specified watermarks (currently 3 and 5, respectively), the
//! write handler will issue up to five additional reads." This sweep
//! varies the read-refill batch and the watermarks and reports SCP
//! throughput on RAM and RZ58 — showing where pipelining stops helping
//! (depth 1 serialises; large depths stop paying once devices saturate).
//!
//! Writes `BENCH_ablate_watermarks.json` with each run's metrics
//! snapshot; the span gauges (`max_pending_reads`/`max_pending_writes`)
//! make the configured depths directly visible.

use bench::{bench_doc, print_table, throughput, write_table, DiskRow, Experiment, Method};
use ksim::Json;
use splice::FlowControl;

fn main() {
    println!("Ablation — splice flow-control watermarks (SCP KB/s)");
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for (lo_r, lo_w, batch) in [
        (1, 1, 1),
        (1, 2, 2),
        (3, 5, 5), // the paper's setting
        (5, 8, 8),
        (8, 16, 16),
    ] {
        let mut row = vec![format!("{lo_r}/{lo_w}/{batch}")];
        for disk in [DiskRow::Ram, DiskRow::Rz58] {
            let mut exp = Experiment::paper(disk);
            exp.config.flow = FlowControl {
                lo_reads: lo_r,
                lo_writes: lo_w,
                batch,
            };
            let r = throughput(&exp, Method::Scp);
            row.push(format!("{:.0}", r.kb_per_s));
            runs.push(
                Json::obj()
                    .with("disk", Json::Str(disk.label().into()))
                    .with("lo_reads", Json::Num(f64::from(lo_r)))
                    .with("lo_writes", Json::Num(f64::from(lo_w)))
                    .with("batch", Json::Num(f64::from(batch)))
                    .with("scp", r.to_json()),
            );
        }
        rows.push(row);
    }
    print_table(&["lo_r/lo_w/batch", "RAM", "RZ58"], &rows);
    println!();
    println!("paper setting is 3/5/5; depth 1 serialises the pipeline");

    let doc = bench_doc("ablate_watermarks").with("runs", Json::Arr(runs));
    write_table("ablate_watermarks", &doc);
}
