//! File-size sweep (§6.2: "Alternative sizes for the file were
//! statistically indistinguishable from the 8 MB representative case").
//!
//! Sweeps the copy size on the RAM disk and reports throughput for CP and
//! SCP: the ratio should be flat across sizes once the file exceeds the
//! buffer cache.

use bench::{print_table, throughput, DiskRow, Experiment, Method};

fn main() {
    println!("File-size sweep — RAM disk copy throughput (KB/s)");
    let mut rows = Vec::new();
    for mb in [1u64, 2, 4, 6, 7] {
        let mut exp = Experiment::paper(DiskRow::Ram);
        exp.file_bytes = mb * 1024 * 1024;
        let cp = throughput(&exp, Method::Cp);
        let scp = throughput(&exp, Method::Scp);
        rows.push(vec![
            format!("{mb} MB"),
            format!("{:.0}", scp.kb_per_s),
            format!("{:.0}", cp.kb_per_s),
            format!("{:+.0}%", (scp.kb_per_s / cp.kb_per_s - 1.0) * 100.0),
        ]);
    }
    print_table(&["Size", "SCP", "CP", "%Improve"], &rows);
    println!();
    println!("(The 16 MB RAM disk holds at most a 7 MB source + copy.)");
    println!("Expectation: the SCP/CP ratio is flat across sizes (§6.2).");
}
