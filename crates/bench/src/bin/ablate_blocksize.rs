//! Ablation: filesystem block size.
//!
//! The per-block costs (system calls for CP, handler chains for SCP) are
//! fixed, so larger blocks amortise them; the paper's 8 KB FFS block is
//! the middle of the sweep.
//!
//! Writes `BENCH_ablate_blocksize.json` with each run's metrics snapshot.

use bench::{bench_doc, print_table, throughput, write_table, DiskRow, Experiment, Method};
use ksim::Json;

fn main() {
    println!("Ablation — filesystem block size (RAM disk, KB/s)");
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for bs in [4096u32, 8192, 16384] {
        let mut exp = Experiment::paper(DiskRow::Ram);
        exp.file_bytes = 4 * 1024 * 1024; // keep the sweep fast
        exp.config.block_size = bs;
        let cp = throughput(&exp, Method::Cp);
        let scp = throughput(&exp, Method::Scp);
        rows.push(vec![
            format!("{} KB", bs / 1024),
            format!("{:.0}", scp.kb_per_s),
            format!("{:.0}", cp.kb_per_s),
            format!("{:+.0}%", (scp.kb_per_s / cp.kb_per_s - 1.0) * 100.0),
        ]);
        runs.push(
            Json::obj()
                .with("block_size", Json::Num(f64::from(bs)))
                .with("scp", scp.to_json())
                .with("cp", cp.to_json()),
        );
    }
    print_table(&["Block", "SCP", "CP", "%Improve"], &rows);

    let doc = bench_doc("ablate_blocksize").with("runs", Json::Arr(runs));
    write_table("ablate_blocksize", &doc);
}
