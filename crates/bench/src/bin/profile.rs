//! Resource-accounting profiler: per-stage splice latency digests for
//! the named workloads, full [`splice::ProfileSnapshot`]s, gauge
//! time-series exports, and the Table 1 contention experiment
//! re-derived from per-PID tick accounting instead of wall-clock
//! ratios.
//!
//! Artifacts:
//! * `BENCH_profile.json` — per-workload stage digests and profile
//!   snapshots, plus the contention section.
//! * `TS_<workload>.json` — the sampler's gauge time series (also
//!   mirrored as counter tracks in `TRACE_*` exports when both are
//!   enabled).

use bench::{
    bench_doc, print_table, test_program, workloads, write_bench_json, write_table, DiskRow,
    Experiment, Method,
};
use ksim::{Dur, Json};
use splice::ProfileSnapshot;

/// Gauge sampling period for the workload runs.
const PERIOD: Dur = Dur::from_ms(10);
/// Sample-ring capacity (ample: no workload here spans 40 s).
const CAPACITY: usize = 4096;

fn fmt_us(ns: Option<u64>) -> String {
    ns.map(|v| format!("{:.0}", v as f64 / 1000.0))
        .unwrap_or_else(|| "-".into())
}

/// One contended environment: the fixed-work test program beside a
/// looping copier, availability taken from the process table's tick
/// accounting (`cpu_time / elapsed`), not from wall-clock slowdown.
struct Contention {
    method: Method,
    elapsed_s: f64,
    /// Fraction of the contended interval the test program actually
    /// got the CPU, per its own accounting.
    test_share: f64,
    profile: ProfileSnapshot,
}

impl Contention {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("method", Json::Str(self.method.label().into()))
            .with("elapsed_s", Json::Num(self.elapsed_s))
            .with("test_cpu_share", Json::Num(self.test_share))
            .with("profile", self.profile.to_json())
    }
}

fn contention(method: Method) -> Contention {
    let exp = Experiment::paper(DiskRow::Ram);
    let mut k = exp.boot();
    let t0 = k.now();
    let test = k.spawn(Box::new(test_program()));
    k.spawn(exp.copier(method, 10_000));
    let horizon = k.horizon(3600);
    let t1 = k.run_until_exit_of(test, horizon);
    let elapsed = t1.since(t0);
    let profile = k.profile();
    let tp = profile.proc(test.0).expect("test program in profile");
    assert!(tp.exited, "test program did not finish before the horizon");
    let test_share = tp.cpu_time().as_ns() as f64 / elapsed.as_ns() as f64;
    Contention {
        method,
        elapsed_s: elapsed.as_secs_f64(),
        test_share,
        profile,
    }
}

fn main() {
    println!("Resource-accounting profiler");
    println!();
    println!("Per-stage splice latency (us), sampled workloads:");
    let mut wl_json = Vec::new();
    let mut rows = Vec::new();
    for name in workloads::ALL {
        let k = workloads::run_sampled(name, PERIOD, CAPACITY);
        write_bench_json(&format!("TS_{name}.json"), &k.timeseries_json(name));
        for (stage, h) in k.kstat().stages.iter() {
            rows.push(vec![
                format!("{name} {stage}"),
                format!("{}", h.count()),
                fmt_us(h.p50()),
                fmt_us(h.p90()),
                fmt_us(h.p99()),
            ]);
        }
        let n_samples = k.samples().count();
        wl_json.push(
            Json::obj()
                .with("workload", Json::Str((*name).into()))
                .with("stages", k.kstat().stages.to_json())
                .with("samples", Json::Num(n_samples as f64))
                .with("profile", k.profile().to_json()),
        );
    }
    print_table(&["Stage", "n", "p50", "p90", "p99"], &rows);

    // The Table 1 contention pair on the RAM row, from accounting data:
    // under CP the copier's read/write loop is billed to its own PID and
    // the test program fights it for every quantum; under SCP the data
    // path runs in completion context, so the test program's accounted
    // share of the contended interval must be at least CP's.
    let cp = contention(Method::Cp);
    let scp = contention(Method::Scp);
    println!();
    println!("Contention (RAM disk), test-program CPU share from tick accounting:");
    print_table(
        &["Env", "elapsed s", "test share"],
        &[
            vec![
                "CP".into(),
                format!("{:.3}", cp.elapsed_s),
                format!("{:.3}", cp.test_share),
            ],
            vec![
                "SCP".into(),
                format!("{:.3}", scp.elapsed_s),
                format!("{:.3}", scp.test_share),
            ],
        ],
    );
    assert!(
        scp.test_share >= cp.test_share,
        "splice should leave the compute PID more CPU: scp {:.3} < cp {:.3}",
        scp.test_share,
        cp.test_share
    );

    let doc = bench_doc("profile")
        .with("sample_period_ns", Json::Num(PERIOD.as_ns() as f64))
        .with("sample_capacity", Json::Num(CAPACITY as f64))
        .with("workloads", Json::Arr(wl_json))
        .with(
            "contention",
            Json::obj()
                .with("disk", Json::Str("RAM".into()))
                .with("cp", cp.to_json())
                .with("scp", scp.to_json())
                .with(
                    "share_improvement",
                    Json::Num(scp.test_share / cp.test_share),
                ),
        );
    write_table("profile", &doc);
}
