//! Calibration helper: run a single cell of a table with diagnostics.
//! Usage: calibrate <ram|rz56|rz58> <cp|scp|scpsync|handle|mmap|idle|avail-cp|avail-scp> [mb]

use bench::{availability, idle_baseline, throughput, DiskRow, Experiment, Method};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let disk = match args.get(1).map(|s| s.as_str()) {
        Some("ram") => DiskRow::Ram,
        Some("rz56") => DiskRow::Rz56,
        Some("rz58") => DiskRow::Rz58,
        _ => panic!("usage: calibrate <ram|rz56|rz58> <method>"),
    };
    let mut exp = Experiment::paper(disk);
    if let Some(mb) = args.get(3).and_then(|s| s.parse::<u64>().ok()) {
        exp.file_bytes = mb * 1024 * 1024;
    }
    match args.get(2).map(|s| s.as_str()) {
        Some("idle") => {
            println!("idle elapsed: {:.4}s", idle_baseline(&exp));
        }
        Some("avail-cp") | Some("avail-scp") => {
            let m = if args[2] == "avail-cp" {
                Method::Cp
            } else {
                Method::Scp
            };
            let idle = idle_baseline(&exp);
            let r = availability(&exp, m, idle);
            println!(
                "{} on {}: idle={idle:.3}s elapsed={:.3}s F={:.3} test-speed={:.1}%",
                m.label(),
                disk.label(),
                r.elapsed_s,
                r.slowdown,
                r.speed_fraction * 100.0
            );
        }
        Some(ms) => {
            let m = match ms {
                "cp" => Method::Cp,
                "scp" => Method::Scp,
                "scpsync" => Method::ScpSync,
                "handle" => Method::Handle,
                "mmap" => Method::Mmap,
                _ => panic!("unknown method {ms}"),
            };
            let r = throughput(&exp, m);
            println!(
                "{} on {}: {:.0} KB/s ({:.3}s)",
                m.label(),
                disk.label(),
                r.kb_per_s,
                r.elapsed_s
            );
        }
        None => panic!("missing method"),
    }
}
