//! Named, trace-enabled workloads for `tracedump` and the trace tests.
//!
//! Each workload boots a kernel with the typed trace ring on
//! ([`splice::KernelBuilder::trace`]), runs one representative scenario
//! to completion with its results verified, and returns the kernel so
//! callers can query or export the trace.

use kdev::{AudioDac, VideoDac};
use khw::DiskProfile;
use knet::LinkModel;
use kproc::programs::{
    open_loop_delays, scenario_stats, EndSpec, EndpointPair, MoviePlayer, RingScp, Scp, ServeMode,
    ServerClient, SpliceServer, UdpSource,
};
use kproc::{ProcState, SockAddr, SpliceLen, SyscallRet};
use ksim::Dur;
use splice::{Kernel, KernelBuilder};
use std::rc::Rc;

/// Trace-ring capacity for every workload: ample for the scenarios here.
const TRACE_CAP: usize = 1 << 20;

/// The named workloads, in the order `tracedump` runs them by default.
pub const ALL: &[&str] = &["scp_ram", "spool", "movie", "ring", "server"];

/// File pairs the `ring` workload copies in one batched wave set.
const RING_PAIRS: usize = 256;
/// Bytes per `ring` source file (one block each).
const RING_FILE_BYTES: u64 = 8 * 1024;
/// Submission depth of the `ring` workload's splice ring.
const RING_DEPTH: u32 = 64;
/// Base pattern seed for the `ring` workload (file `i` uses `base ^ i`).
const RING_SEED: u64 = 0x51ce;

/// Connections the `server` workload serves.
const SERVER_CONNS: usize = 512;
/// Bytes of the file every `server` connection fetches (one block).
const SERVER_FILE_BYTES: u64 = 8 * 1024;
/// Splice-ring depth (wave size) of the `server` workload.
const SERVER_DEPTH: u32 = 64;
/// Pattern + arrival + link seed of the `server` workload.
const SERVER_SEED: u64 = 0x5e12;
/// Listening port of the `server` workload.
const SERVER_PORT: u16 = 80;
/// Arrival window the `server` workload's clients spread over.
const SERVER_WINDOW: Dur = Dur::from_ms(100);

/// Provenance of one workload: the pattern seeds it feeds to
/// `setup_file`/sources and the bytes it is expected to move end to
/// end. Serialized into every `REPORT_*`/`TS_*` consumer's meta block
/// so an artifact documents its own inputs.
pub struct WorkloadMeta {
    /// Workload name, as in [`ALL`].
    pub name: &'static str,
    /// Pattern seeds, in setup order (the `ring` workload XORs the
    /// pair index into its single base seed).
    pub seeds: Vec<u64>,
    /// Bytes the workload must move for its own checks to pass.
    pub expected_bytes: u64,
}

/// The provenance block for workload `name`.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn meta(name: &str) -> WorkloadMeta {
    match name {
        "scp_ram" => WorkloadMeta {
            name: "scp_ram",
            seeds: vec![5],
            expected_bytes: 1 << 20,
        },
        "spool" => WorkloadMeta {
            name: "spool",
            seeds: vec![11],
            expected_bytes: 1 << 20,
        },
        "movie" => WorkloadMeta {
            name: "movie",
            seeds: vec![1, 2],
            // Audio samples for 30 frames at 30 fps plus 30 video frames.
            expected_bytes: 8_000 + 30 * 64 * 1024,
        },
        "ring" => WorkloadMeta {
            name: "ring",
            seeds: vec![RING_SEED],
            expected_bytes: RING_PAIRS as u64 * RING_FILE_BYTES,
        },
        "server" => WorkloadMeta {
            name: "server",
            seeds: vec![SERVER_SEED],
            expected_bytes: SERVER_CONNS as u64 * SERVER_FILE_BYTES,
        },
        other => panic!("unknown workload `{other}` (known: {})", ALL.join(", ")),
    }
}

/// Runs workload `name` to completion and returns the kernel (trace
/// ring populated).
///
/// # Panics
///
/// Panics on an unknown name, or if the workload fails its own
/// correctness checks.
pub fn run(name: &str) -> Kernel {
    run_inner(name, None)
}

/// [`run`] with the resource-accounting sampler enabled: gauge samples
/// every `period`, up to `capacity` retained, mirrored into the
/// trace's counter tracks. `run` itself never samples, so its trace
/// output stays byte-identical to earlier revisions.
///
/// # Panics
///
/// Same conditions as [`run`].
pub fn run_sampled(name: &str, period: Dur, capacity: usize) -> Kernel {
    run_inner(name, Some((period, capacity)))
}

fn run_inner(name: &str, sample: Option<(Dur, usize)>) -> Kernel {
    match name {
        "scp_ram" => scp_ram(sample),
        "spool" => spool(sample),
        "movie" => movie(sample),
        "ring" => ring(sample),
        "server" => server(sample),
        other => panic!("unknown workload `{other}` (known: {})", ALL.join(", ")),
    }
}

/// Applies the optional sampler opt-in to a workload's builder.
fn maybe_sample(b: KernelBuilder, sample: Option<(Dur, usize)>) -> KernelBuilder {
    match sample {
        Some((period, capacity)) => b.sample(period, capacity),
        None => b,
    }
}

/// The paper's SCP on the RAM-disk row: one asynchronous file→file
/// splice of 1 MB from `/d0` to `/d1`, cold cache.
fn scp_ram(sample: Option<(Dur, usize)>) -> Kernel {
    const BYTES: u64 = 1 << 20;
    let b = KernelBuilder::paper_machine_ram().trace(TRACE_CAP);
    let mut k = maybe_sample(b, sample).build();
    k.setup_file("/d0/src", BYTES, 5);
    k.cold_cache();
    let pid = k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "scp_ram: copy failed"
    );
    assert_eq!(
        k.verify_pattern_file("/d1/dst", BYTES, 5),
        None,
        "scp_ram: corrupted copy"
    );
    k
}

/// Socket→file spooling: a UDP source paced against the soft-work
/// budget feeds a socket that splices straight into a file.
fn spool(sample: Option<(Dur, usize)>) -> Kernel {
    const TOTAL: u64 = 1 << 20;
    const DGRAM: usize = 8_192;
    const SRC_GAP: Dur = Dur::from_ms(2);
    let b = KernelBuilder::paper_machine_ram().trace(TRACE_CAP);
    let mut k = maybe_sample(b, sample).build();
    k.cold_cache();
    let (pair, result) = EndpointPair::new(
        EndSpec::SockBind { port: 7000 },
        EndSpec::create("/d1/dst"),
        SpliceLen::Bytes(TOTAL),
    );
    let pid = k.spawn(Box::new(pair));
    k.spawn(Box::new(UdpSource::new(
        SockAddr {
            host: 1,
            port: 7000,
        },
        DGRAM,
        TOTAL / DGRAM as u64,
        SRC_GAP,
        11,
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "spool: driver failed"
    );
    assert_eq!(
        result.borrow().clone(),
        Some(SyscallRet::Val(TOTAL as i64)),
        "spool: short transfer"
    );
    k
}

/// The §4 movie player on an RZ58: one EOF audio splice paced by the
/// DAC plus one bounded synchronous video splice per timer tick.
fn movie(sample: Option<(Dur, usize)>) -> Kernel {
    const FRAME: usize = 64 * 1024;
    const FRAMES: u64 = 30;
    const FPS: u64 = 30;
    const AUDIO_RATE: u64 = 8_000;
    let b = KernelBuilder::new()
        .disk("d0", DiskProfile::rz58())
        .audio_dac("/dev/speaker", AudioDac::new(AUDIO_RATE, 64 * 1024))
        .video_dac("/dev/video_dac", VideoDac::new(FRAME))
        .trace(TRACE_CAP);
    let mut k = maybe_sample(b, sample).build();
    let audio_len = AUDIO_RATE * FRAMES / FPS;
    k.setup_file("/d0/movie.audio", audio_len, 1);
    k.setup_file("/d0/movie.video", FRAMES * FRAME as u64, 2);
    k.cold_cache();
    let player = MoviePlayer::new(
        "/d0/movie.audio",
        "/d0/movie.video",
        "/dev/speaker",
        "/dev/video_dac",
        FRAME as u64,
        Dur::from_ms(1000 / FPS),
    );
    let pid = k.spawn(Box::new(player));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "movie: player failed"
    );
    k
}

/// Batched ring submission: 256 one-block file→file copies moved
/// through a depth-64 splice ring in submit/reap waves — the workload
/// that exercises the `sqe_wait` stage and ring tracepoints.
fn ring(sample: Option<(Dur, usize)>) -> Kernel {
    let b = KernelBuilder::paper_machine_ram().trace(TRACE_CAP);
    let mut k = maybe_sample(b, sample).build();
    for i in 0..RING_PAIRS {
        k.setup_file(&format!("/d0/f{i}"), RING_FILE_BYTES, RING_SEED ^ i as u64);
    }
    k.cold_cache();
    let pid = k.spawn(Box::new(RingScp::new(
        "/d0/f", "/d1/c", RING_PAIRS, RING_DEPTH,
    )));
    let horizon = k.horizon(3600);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "ring: copier failed"
    );
    for i in 0..RING_PAIRS {
        assert_eq!(
            k.verify_pattern_file(&format!("/d1/c{i}"), RING_FILE_BYTES, RING_SEED ^ i as u64),
            None,
            "ring: copy {i} corrupted"
        );
    }
    k
}

/// The connection-scale scenario: a splice-ring server fetches one
/// 8 KB file to each of 512 open-loop clients over a lossless modeled
/// link — the workload behind `bench --bin server`'s SLO sweep, at a
/// tracedump-friendly size.
fn server(sample: Option<(Dur, usize)>) -> Kernel {
    let b = KernelBuilder::paper_machine_ram().trace(TRACE_CAP);
    let mut k = maybe_sample(b, sample).build();
    k.net_mut().set_link_model(
        1,
        LinkModel {
            bps: 125_000_000,
            base_latency: Dur::from_us(200),
            jitter: Dur::from_us(100),
            loss_ppm: 0,
            seed: SERVER_SEED,
        },
    );
    k.setup_file("/d0/file", SERVER_FILE_BYTES, SERVER_SEED);
    k.cold_cache();
    let stats = scenario_stats();
    let pid = k.spawn(Box::new(SpliceServer::new(
        SERVER_PORT,
        "/d0/file",
        SERVER_FILE_BYTES,
        SERVER_CONNS,
        SERVER_CONNS as u32,
        ServeMode::Ring {
            depth: SERVER_DEPTH,
        },
        Rc::clone(&stats),
    )));
    for delay in open_loop_delays(SERVER_CONNS, SERVER_WINDOW, SERVER_SEED) {
        k.spawn(Box::new(ServerClient::new(
            SockAddr {
                host: 1,
                port: SERVER_PORT,
            },
            SERVER_FILE_BYTES,
            SERVER_SEED,
            delay,
            Rc::clone(&stats),
        )));
    }
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "server: server failed"
    );
    let s = stats.borrow();
    assert_eq!(s.completed, SERVER_CONNS as u64, "server: clients short");
    assert_eq!(s.mismatches, 0, "server: corrupted delivery");
    assert_eq!(
        s.bytes_received,
        SERVER_CONNS as u64 * SERVER_FILE_BYTES,
        "server: byte shortfall"
    );
    drop(s);
    k
}
