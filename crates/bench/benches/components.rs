//! Criterion micro-benchmarks of the simulator's building blocks.
//!
//! These measure *host* performance of the substrate data structures —
//! useful for keeping the simulator fast enough that the table harnesses
//! stay cheap to run. The simulated-time results live in the `table*` and
//! `ablate_*` binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use kbuf::{Cache, DevId};
use kfs::Fs;
use khw::{Disk, DiskProfile, IoOp, SparseStore};
use ksim::{Callout, Dur, EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("ksim/event_queue_schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::ZERO + Dur::from_us(i * 7 % 997), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_callout(c: &mut Criterion) {
    c.bench_function("ksim/callout_schedule_expire_1k", |b| {
        b.iter(|| {
            let mut co = Callout::new();
            for i in 0..1000u64 {
                co.schedule(0, i % 50, i);
            }
            let mut total = 0usize;
            for tick in 0..50 {
                total += co.expire(tick).len();
            }
            black_box(total)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("kbuf/bread_hit_loop_400", |b| {
        // Warm a 400-buffer cache, then measure hit-path lookups.
        let mut cache = Cache::new(400, 8192);
        let mut fx = Vec::new();
        for blk in 0..400u64 {
            let kbuf::BreadOutcome::Miss(id) = cache.bread(DevId(0), blk, 8192, &mut fx) else {
                panic!()
            };
            cache.biodone(id, false, &mut fx);
            cache.brelse(id, &mut fx);
        }
        b.iter(|| {
            let mut fx = Vec::new();
            for blk in 0..400u64 {
                let kbuf::BreadOutcome::Hit(id) = cache.bread(DevId(0), blk, 8192, &mut fx) else {
                    panic!()
                };
                cache.brelse(id, &mut fx);
            }
            black_box(fx.len())
        })
    });
}

fn bench_disk_model(c: &mut Criterion) {
    c.bench_function("khw/disk_sequential_reads_256", |b| {
        b.iter_batched(
            || Disk::new(DiskProfile::rz58()),
            |mut d| {
                let mut now = SimTime::ZERO;
                for (i, blk) in (0..256u64).enumerate() {
                    let s = d
                        .submit(now, i as u64, IoOp::Read, blk * 16, 8192, None)
                        .expect("idle drive");
                    let (done, next) = d.complete(s.finish);
                    assert!(next.is_none());
                    black_box(done.cache_hit);
                    now = s.finish;
                }
                black_box(d.stats().requests)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fs(c: &mut Criterion) {
    c.bench_function("kfs/mkfs_create_write_1mb", |b| {
        b.iter(|| {
            let mut store = SparseStore::new(16 * 1024 * 1024);
            let mut fs = Fs::mkfs(&mut store, 8192, 128);
            let ino = fs.create("/f").unwrap();
            fs.write_direct(&mut store, ino, 0, &vec![7u8; 1 << 20])
                .unwrap();
            fs.sync(&mut store);
            black_box(fs.free_blocks())
        })
    });

    c.bench_function("kfs/bmap_lookup_1k", |b| {
        let mut store = SparseStore::new(32 * 1024 * 1024);
        let mut fs = Fs::mkfs(&mut store, 8192, 128);
        let ino = fs.create("/f").unwrap();
        fs.write_direct(&mut store, ino, 0, &vec![1u8; 1 << 20])
            .unwrap();
        b.iter(|| {
            let mut sum = 0u64;
            for l in 0..128u64 {
                sum = sum.wrapping_add(fs.bmap(ino, l % 128).unwrap_or(0));
            }
            black_box(sum)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_callout,
    bench_cache,
    bench_disk_model,
    bench_fs
);
criterion_main!(benches);
