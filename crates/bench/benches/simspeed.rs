//! `sim_events_per_sec`: host-speed benches of the simulator fast path.
//!
//! These wrap the measurement loops in [`bench::simspeed`] — the same
//! ones the `simspeed` binary uses to write `BENCH_simspeed.json` — so
//! criterion's statistics and the pinned artifact always describe the
//! same workloads: callout churn at a 100k-pending population (timing
//! wheel and the retained `BTreeMap` reference), event-queue churn, and
//! an end-to-end cold-cache `scp` over the RAM-disk machine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::simspeed;

const PENDING: usize = 100_000;

fn bench_callout_churn(c: &mut Criterion) {
    c.bench_function("sim_events_per_sec/callout_churn_100k_wheel", |b| {
        b.iter(|| black_box(simspeed::callout_churn_wheel(PENDING, 10_000).ops))
    });
    c.bench_function("sim_events_per_sec/callout_churn_100k_btree_ref", |b| {
        b.iter(|| black_box(simspeed::callout_churn_btree(PENDING, 1_000).ops))
    });
}

fn bench_event_churn(c: &mut Criterion) {
    c.bench_function("sim_events_per_sec/event_queue_churn_100k", |b| {
        b.iter(|| black_box(simspeed::event_churn(PENDING, 10_000).ops))
    });
}

fn bench_scp_ram_e2e(c: &mut Criterion) {
    c.bench_function("sim_events_per_sec/scp_ram_8mb_blocks", |b| {
        b.iter(|| black_box(simspeed::scp_ram_run(8 << 20)))
    });
}

criterion_group!(
    benches,
    bench_callout_churn,
    bench_event_churn,
    bench_scp_ram_e2e
);
criterion_main!(benches);
