//! Acceptance tests for the trace export path: each named workload must
//! produce a parseable Chrome trace with complete, ordered per-block
//! splice spans — the same artifacts `tracedump` writes to disk.

use std::collections::HashMap;

use bench::workloads;
use ksim::Json;

/// Runs one workload and checks the exported Chrome JSON end to end:
/// it re-parses, has events, and every (pid, tid) track is monotone.
fn check_workload(name: &str) -> splice::Kernel {
    let k = workloads::run(name);
    let trace = k.trace();
    assert!(trace.enabled(), "{name}: trace ring should be installed");
    assert!(!trace.is_empty(), "{name}: trace ring is empty");

    // The export must survive a render → parse round trip.
    let text = trace.to_chrome_json().render();
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: exported JSON invalid: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{name}: no traceEvents array"));
    assert!(!events.is_empty(), "{name}: traceEvents is empty");

    // Chrome/Perfetto tolerate out-of-order timestamps badly: within a
    // (pid, tid) track, ts must never go backwards.
    let mut last: HashMap<(u64, u64), f64> = HashMap::new();
    for ev in events {
        let pid = ev.get("pid").and_then(Json::as_u64).expect("event pid");
        let tid = ev.get("tid").and_then(Json::as_u64).expect("event tid");
        let ts = ev.get("ts").and_then(Json::as_f64).expect("event ts");
        let prev = last.entry((pid, tid)).or_insert(ts);
        assert!(
            ts >= *prev,
            "{name}: ts regressed on track ({pid},{tid}): {ts} < {prev}"
        );
        *prev = ts;
    }

    // Every stitched block span must have all four phases, in order:
    // read_issue < read_done < write_issue < write_done.
    let spans = trace.query().all_block_spans();
    assert!(!spans.is_empty(), "{name}: no block spans stitched");
    for s in &spans {
        assert!(
            s.complete(),
            "{name}: span (desc {}, lblk {}) is missing phases",
            s.desc,
            s.lblk
        );
        assert!(
            s.ordered(),
            "{name}: span (desc {}, lblk {}) has out-of-order phases",
            s.desc,
            s.lblk
        );
    }

    // Every splice that started also completed (the workloads run to
    // process exit, so nothing may be left dangling).
    let q = trace.query();
    let starts = q.named("splice.start").len();
    let completes = q.named("splice.complete").len();
    assert!(starts > 0, "{name}: no splice.start events");
    assert_eq!(
        starts, completes,
        "{name}: {starts} splices started but {completes} completed"
    );
    k
}

#[test]
fn scp_ram_trace_is_complete() {
    let k = check_workload("scp_ram");
    // 1 MB over 8 KB blocks: exactly 128 logical blocks, one span each,
    // all on the single descriptor of the single splice.
    let spans = k.trace().query().all_block_spans();
    assert_eq!(spans.len(), 128, "expected one span per logical block");
    let descs: Vec<u64> = spans.iter().map(|s| s.desc).collect();
    assert!(descs.windows(2).all(|w| w[0] == w[1]), "multiple descs");
    let mut lblks: Vec<u64> = spans.iter().map(|s| s.lblk).collect();
    lblks.sort_unstable();
    assert_eq!(lblks, (0..128).collect::<Vec<u64>>(), "missing lblks");
}

#[test]
fn spool_trace_is_complete() {
    check_workload("spool");
}

#[test]
fn movie_trace_is_complete() {
    check_workload("movie");
}

#[test]
fn ring_trace_is_complete() {
    let k = check_workload("ring");
    // 256 one-block file pairs: one span per pair, each on its own
    // splice descriptor.
    let spans = k.trace().query().all_block_spans();
    assert_eq!(spans.len(), 256, "expected one span per copied pair");
    let mut descs: Vec<u64> = spans.iter().map(|s| s.desc).collect();
    descs.sort_unstable();
    descs.dedup();
    assert_eq!(descs.len(), 256, "expected one descriptor per pair");
    // The batched path must surface its submission-queue wait: one
    // sqe_wait sample and tracepoint per admitted SQE.
    assert_eq!(
        k.trace().query().named("ring.sqe_wait").len(),
        256,
        "one ring.sqe_wait event per submitted SQE"
    );
    assert_eq!(k.kstat().stages.sqe_wait.count(), 256);
    assert!(k.kstat().stages.sqe_wait.min().unwrap() > 0);
}
