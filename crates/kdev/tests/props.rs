//! Property tests for the character devices: conservation and pacing
//! invariants of the audio DAC under arbitrary write schedules.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use proptest::prelude::*;

use kdev::{AudioDac, Ready, VideoDac};
use ksim::{Dur, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn audio_dac_conserves_bytes_and_never_overruns(
        writes in prop::collection::vec((0u64..2_000u64, 1usize..20_000), 1..40)
    ) {
        let mut dac = AudioDac::new(8_000, 16_384);
        let mut now = SimTime::ZERO;
        let mut accepted_total = 0u64;
        for (gap_ms, len) in writes {
            now += Dur::from_ms(gap_ms);
            let before = dac.queued();
            let took = dac.write_some(now, len);
            prop_assert!(took <= len);
            prop_assert!(dac.queued() <= 16_384, "buffer overrun");
            prop_assert!(dac.queued() >= took, "queued {} < took {}", dac.queued(), took);
            prop_assert!(dac.queued() <= before + took);
            accepted_total += took as u64;
        }
        prop_assert_eq!(dac.total_accepted(), accepted_total);
        // Everything drains eventually.
        let end = now + Dur::from_secs(10);
        prop_assert_eq!(dac.space(end), 16_384);
    }

    #[test]
    fn audio_time_for_space_is_honest(
        fill in 1usize..16_384,
        want in 1usize..16_384,
    ) {
        let mut dac = AudioDac::new(8_000, 16_384);
        dac.write(SimTime::ZERO, fill);
        let at = dac.time_for_space(SimTime::ZERO, want);
        // Probe strictly forward in time: the DAC state machine only
        // advances. (If a wait was needed) two drained-bytes before `at`
        // the space is not yet there…
        let two_bytes = Dur::for_bytes(2, 8_000);
        if at > SimTime::ZERO + two_bytes {
            let just_before = at - two_bytes;
            prop_assert!(dac.space(just_before) < want);
        }
        // …and at the named instant it is.
        prop_assert!(dac.space(at) >= want.min(16_384));
    }

    #[test]
    fn audio_can_write_at_instant_is_consistent(
        fill in 1usize..8_000,
        len in 1usize..8_000,
        probe_ms in 0u64..3_000,
    ) {
        let mut dac = AudioDac::new(8_000, 8_000);
        dac.write(SimTime::ZERO, fill);
        let t = SimTime::ZERO + Dur::from_ms(probe_ms);
        match dac.can_write(t, len) {
            Ready::Now => {
                // Must not panic.
                dac.write(t, len);
            }
            Ready::At(at) => {
                prop_assert!(at > t);
                prop_assert_eq!(dac.can_write(at, len), Ready::Now);
            }
        }
    }

    #[test]
    fn video_dac_frame_count_is_total_bytes_over_frame_size(
        writes in prop::collection::vec(1usize..100_000, 1..30)
    ) {
        let mut v = VideoDac::new(4_096);
        let mut total = 0usize;
        let mut now = SimTime::ZERO;
        for w in writes {
            v.write(now, w);
            total += w;
            now += Dur::from_ms(1);
        }
        prop_assert_eq!(v.frames(), (total / 4_096) as u64);
        // Frame times are monotone.
        let times = v.frame_times();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
