#![warn(missing_docs)]

//! Character devices: the splice endpoints of §4 and §5.1.
//!
//! * [`AudioDac`] — `/dev/speaker`: a self-pacing digital-to-analog
//!   converter. "The program assumes the audio DAC driver converts and
//!   delivers audio at the appropriate playback rate to match the
//!   recording rate in the file" (§4). It holds a bounded staging buffer
//!   drained at the playback rate; writers (including the splice engine)
//!   block when it is full — that back-pressure is what paces a
//!   `SPLICE_EOF` of a whole audio file. Underruns (buffer empty while the
//!   stream is active) are counted: they are audible glitches.
//! * [`VideoDac`] — `/dev/video_dac`: accepts whole frames and displays
//!   them as they complete; per §4 it can display faster than the
//!   recording rate, so pacing must come from the application (the
//!   interval timer). Frame completion times are recorded so examples can
//!   report jitter.
//! * [`Framebuffer`] — a read-side frame source for framebuffer-to-socket
//!   splices: reading returns pixel data of the current frame; frames
//!   advance at the capture rate.
//!
//! All devices expose a uniform readiness protocol: `can_write`/`can_read`
//! either say `Ready` or name the instant to retry, and the kernel turns
//! `At(t)` into sleeps or callout retries.

use ksim::{Dur, SimTime};

/// Readiness of a device for an operation of a given size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ready {
    /// Proceed now.
    Now,
    /// Retry at (or after) this instant.
    At(SimTime),
}

/// The self-pacing audio DAC.
pub struct AudioDac {
    /// Playback (drain) rate, bytes/second.
    rate_bps: u64,
    /// Staging buffer limit in bytes.
    buf_limit: usize,
    queued: usize,
    last_sync: SimTime,
    /// Fractional drain carry (ns worth of bytes not yet drained).
    carry_ns: u64,
    started: bool,
    ended: bool,
    underruns: u64,
    total_accepted: u64,
}

impl AudioDac {
    /// A DAC draining at `rate_bps` with a `buf_limit`-byte buffer.
    pub fn new(rate_bps: u64, buf_limit: usize) -> AudioDac {
        assert!(rate_bps > 0 && buf_limit > 0);
        AudioDac {
            rate_bps,
            buf_limit,
            queued: 0,
            last_sync: SimTime::ZERO,
            carry_ns: 0,
            started: false,
            ended: false,
            underruns: 0,
            total_accepted: 0,
        }
    }

    /// The classic Sun `/dev/audio`: 8 kHz µ-law (8 KB/s), 64 KB buffer.
    pub fn dev_audio() -> AudioDac {
        AudioDac::new(8_000, 64 * 1024)
    }

    /// Bytes accepted so far.
    pub fn total_accepted(&self) -> u64 {
        self.total_accepted
    }

    /// Times the buffer ran dry while the stream was active.
    pub fn underruns(&self) -> u64 {
        self.underruns
    }

    /// Bytes currently staged.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Instant the currently staged audio finishes playing.
    pub fn drained_at(&self, now: SimTime) -> SimTime {
        let copy = self.peek_sync(now);
        if copy.1 == 0 {
            return now;
        }
        copy.0 + Dur::for_bytes(copy.1 as u64, self.rate_bps)
    }

    fn peek_sync(&self, now: SimTime) -> (SimTime, usize) {
        let elapsed = now.saturating_since(self.last_sync);
        let ns = elapsed.as_ns() + self.carry_ns;
        let drained = (ns as u128 * self.rate_bps as u128 / 1_000_000_000) as usize;
        (now, self.queued.saturating_sub(drained))
    }

    fn sync(&mut self, now: SimTime) {
        if now <= self.last_sync {
            return;
        }
        let elapsed = now.since(self.last_sync);
        let ns = elapsed.as_ns() + self.carry_ns;
        let drained = (ns as u128 * self.rate_bps as u128 / 1_000_000_000) as usize;
        let consumed_ns = drained as u128 * 1_000_000_000 / self.rate_bps as u128;
        self.carry_ns = ns - consumed_ns as u64;
        let before = self.queued;
        self.queued = self.queued.saturating_sub(drained);
        self.last_sync = now;
        if self.started && !self.ended && before > 0 && self.queued == 0 {
            // Ran dry mid-stream: glitch.
            self.underruns += 1;
        }
    }

    /// Can `len` bytes be staged at `now`? Lengths beyond the buffer
    /// capacity can never be staged whole — callers chunk with
    /// [`AudioDac::space`] / [`AudioDac::write_some`].
    pub fn can_write(&mut self, now: SimTime, len: usize) -> Ready {
        self.sync(now);
        if self.queued + len <= self.buf_limit {
            return Ready::Now;
        }
        let excess = (self.queued + len - self.buf_limit) as u64;
        Ready::At(now + Dur::for_bytes(excess, self.rate_bps))
    }

    /// Free buffer space at `now`.
    pub fn space(&mut self, now: SimTime) -> usize {
        self.sync(now);
        self.buf_limit - self.queued
    }

    /// Stages as much of `len` as fits right now; returns the accepted
    /// byte count.
    pub fn write_some(&mut self, now: SimTime, len: usize) -> usize {
        let chunk = len.min(self.space(now));
        if chunk > 0 {
            self.write(now, chunk);
        }
        chunk
    }

    /// The instant at which `want` bytes of buffer space (clamped to the
    /// buffer capacity) will be free.
    pub fn time_for_space(&mut self, now: SimTime, want: usize) -> SimTime {
        let want = want.min(self.buf_limit).max(1);
        self.sync(now);
        if self.buf_limit - self.queued >= want {
            return now;
        }
        let need_drain = (want - (self.buf_limit - self.queued)) as u64;
        now + Dur::for_bytes(need_drain, self.rate_bps)
    }

    /// Stages `len` bytes (the caller verified readiness).
    ///
    /// # Panics
    ///
    /// Panics if the buffer cannot take `len` bytes right now.
    pub fn write(&mut self, now: SimTime, len: usize) {
        self.sync(now);
        assert!(
            self.queued + len <= self.buf_limit,
            "audio write of {len} overruns buffer"
        );
        self.queued += len;
        self.started = true;
        self.total_accepted += len as u64;
    }

    /// Marks the stream complete: a later run-dry is normal, not an
    /// underrun.
    pub fn end_stream(&mut self, now: SimTime) {
        self.sync(now);
        self.ended = true;
    }
}

/// The video DAC: displays frames as they complete.
pub struct VideoDac {
    frame_size: usize,
    partial: usize,
    /// Completion instants of displayed frames.
    frame_times: Vec<SimTime>,
}

impl VideoDac {
    /// A DAC for frames of `frame_size` bytes.
    pub fn new(frame_size: usize) -> VideoDac {
        assert!(frame_size > 0);
        VideoDac {
            frame_size,
            partial: 0,
            frame_times: Vec::new(),
        }
    }

    /// The display frame size in bytes.
    pub fn frame_size(&self) -> usize {
        self.frame_size
    }

    /// Frames displayed so far.
    pub fn frames(&self) -> u64 {
        self.frame_times.len() as u64
    }

    /// Completion instants of displayed frames.
    pub fn frame_times(&self) -> &[SimTime] {
        &self.frame_times
    }

    /// Inter-frame gaps (for jitter reports).
    pub fn frame_intervals(&self) -> Vec<Dur> {
        self.frame_times
            .windows(2)
            .map(|w| w[1].since(w[0]))
            .collect()
    }

    /// The device "displays at a maximum rate faster than the recording
    /// rate" (§4): it is always ready.
    pub fn can_write(&mut self, _now: SimTime, _len: usize) -> Ready {
        Ready::Now
    }

    /// Accepts `len` bytes; every completed `frame_size` bytes displays a
    /// frame stamped `now`.
    pub fn write(&mut self, now: SimTime, len: usize) {
        self.partial += len;
        while self.partial >= self.frame_size {
            self.partial -= self.frame_size;
            self.frame_times.push(now);
        }
    }
}

/// A framebuffer read-side device: the source for fb-to-socket splices.
pub struct Framebuffer {
    frame_size: usize,
    /// Capture rate in frames/second.
    fps: u64,
    read_off: usize,
    bytes_read: u64,
}

impl Framebuffer {
    /// A framebuffer with `frame_size`-byte frames captured at `fps`.
    pub fn new(frame_size: usize, fps: u64) -> Framebuffer {
        assert!(frame_size > 0 && fps > 0);
        Framebuffer {
            frame_size,
            fps,
            read_off: 0,
            bytes_read: 0,
        }
    }

    /// The frame currently on screen at `now`.
    pub fn current_frame(&self, now: SimTime) -> u64 {
        (now.as_ns() as u128 * self.fps as u128 / 1_000_000_000) as u64
    }

    /// Bytes handed out so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Reading is a memory access: always ready.
    pub fn can_read(&mut self, _now: SimTime, _len: usize) -> Ready {
        Ready::Now
    }

    /// Reads `len` bytes of the frame on screen at `now`; the content
    /// encodes (frame number, offset) so receivers can verify tearing-free
    /// capture per read.
    pub fn read(&mut self, now: SimTime, len: usize) -> Vec<u8> {
        let frame = self.current_frame(now);
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let off = (self.read_off + i) % self.frame_size;
            out.push((frame as u8) ^ (off as u8).rotate_left(3));
        }
        self.read_off = (self.read_off + len) % self.frame_size;
        self.bytes_read += len as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Dur::from_ms(ms)
    }

    #[test]
    fn audio_drains_at_rate() {
        let mut dac = AudioDac::new(8_000, 64 * 1024);
        assert_eq!(dac.can_write(t(0), 8_000), Ready::Now);
        dac.write(t(0), 8_000);
        assert_eq!(dac.queued(), 8_000);
        // After half a second, half has played.
        dac.can_write(t(500), 0);
        assert_eq!(dac.queued(), 4_000);
        assert_eq!(dac.drained_at(t(500)), t(1000));
    }

    #[test]
    fn audio_backpressure_names_retry_time() {
        let mut dac = AudioDac::new(8_000, 8_000);
        dac.write(t(0), 8_000);
        match dac.can_write(t(0), 4_000) {
            Ready::At(at) => assert_eq!(at, t(500)), // 4000 bytes at 8000 B/s
            Ready::Now => panic!("buffer is full"),
        }
        // At the named instant the write fits.
        assert_eq!(dac.can_write(t(500), 4_000), Ready::Now);
    }

    #[test]
    fn audio_partial_writes_chunk_through_a_small_buffer() {
        let mut dac = AudioDac::new(8_000, 4_096);
        // An 8 KB block cannot fit whole; the first chunk fills the
        // buffer.
        assert_eq!(dac.space(t(0)), 4_096);
        let took = dac.write_some(t(0), 8_192);
        assert_eq!(took, 4_096);
        assert_eq!(dac.write_some(t(0), 4_096), 0, "buffer now full");
        // Space for the remainder opens as the DAC drains.
        let at = dac.time_for_space(t(0), 4_096);
        assert_eq!(at, t(512)); // 4096 bytes at 8000 B/s
        assert_eq!(dac.write_some(at, 4_096), 4_096);
        assert_eq!(dac.total_accepted(), 8_192);
    }

    #[test]
    fn audio_underrun_detection() {
        let mut dac = AudioDac::new(8_000, 64 * 1024);
        dac.write(t(0), 800); // 100 ms of audio
                              // Next write arrives late: the buffer ran dry in between.
        dac.can_write(t(500), 800);
        dac.write(t(500), 800);
        assert_eq!(dac.underruns(), 1);
        // Ending the stream prevents counting the final drain.
        dac.end_stream(t(500));
        dac.can_write(t(2000), 0);
        assert_eq!(dac.underruns(), 1);
    }

    #[test]
    fn audio_no_underrun_when_fed_on_time() {
        let mut dac = AudioDac::new(8_000, 64 * 1024);
        for i in 0..10 {
            dac.write(t(i * 100), 1600); // 200 ms of audio every 100 ms
        }
        assert_eq!(dac.underruns(), 0);
        assert_eq!(dac.total_accepted(), 16_000);
    }

    #[test]
    fn video_counts_whole_frames() {
        let mut v = VideoDac::new(1000);
        v.write(t(0), 700);
        assert_eq!(v.frames(), 0);
        v.write(t(10), 700); // completes frame 1, 400 into frame 2
        assert_eq!(v.frames(), 1);
        v.write(t(43), 600); // completes frame 2
        assert_eq!(v.frames(), 2);
        assert_eq!(v.frame_intervals(), vec![Dur::from_ms(33)]);
    }

    #[test]
    fn video_always_ready() {
        let mut v = VideoDac::new(1000);
        assert_eq!(v.can_write(t(0), 1 << 20), Ready::Now);
    }

    #[test]
    fn framebuffer_frames_advance_with_time() {
        let mut fb = Framebuffer::new(64, 30);
        assert_eq!(fb.current_frame(t(0)), 0);
        assert_eq!(fb.current_frame(t(1000)), 30);
        let a = fb.read(t(0), 64);
        let mut fb2 = Framebuffer::new(64, 30);
        let b = fb2.read(t(1000), 64);
        assert_ne!(a, b, "different frames produce different pixels");
        assert_eq!(fb.bytes_read(), 64);
    }
}
