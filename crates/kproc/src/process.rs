//! The process table.

use std::collections::BTreeMap;

use ksim::{Dur, SimTime};

use crate::program::{Program, UserCtx};
use crate::types::{Chan, Pid, Sig};

/// Scheduling state of a process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcState {
    /// On the run queue (or about to be placed there).
    Runnable,
    /// Currently on the CPU.
    Running,
    /// Asleep on a channel.
    Sleeping(Chan),
    /// Finished, with an exit status.
    Exited(i32),
}

/// Per-process accounting, read by the experiment harnesses.
#[derive(Clone, Copy, Default, Debug)]
pub struct ProcAccounting {
    /// User-mode CPU consumed.
    pub user_time: Dur,
    /// Kernel-mode CPU consumed on this process's behalf (syscalls).
    pub sys_time: Dur,
    /// Voluntary context switches (blocked).
    pub vcsw: u64,
    /// Involuntary context switches (quantum expiry).
    pub icsw: u64,
    /// System calls issued.
    pub syscalls: u64,
}

impl ProcAccounting {
    /// User plus system CPU charged to this process — the numerator of
    /// the profiler's availability gauge (`cpu_time / wall_time`).
    pub fn cpu_time(&self) -> Dur {
        self.user_time + self.sys_time
    }
}

/// One process.
pub struct Process {
    /// Identity.
    pub pid: Pid,
    /// Scheduling state.
    pub state: ProcState,
    /// The user program.
    pub program: Box<dyn Program>,
    /// Context handed to the next `program.step()` (syscall return,
    /// signals).
    pub ctx: UserCtx,
    /// Signals the process has asked to catch.
    pub catches: Vec<Sig>,
    /// Signals delivered but not yet consumed by a `pause`/step.
    pub pending_sigs: Vec<Sig>,
    /// Repeating interval timer period, if armed.
    pub itimer: Option<Dur>,
    /// User compute left over after a quantum preemption; resumed before
    /// the program is stepped again.
    pub pending_compute: Option<Dur>,
    /// Recently consumed CPU, decayed periodically (the 4.3BSD `p_cpu`
    /// analogue): lower means better scheduling priority.
    pub recent_cpu: Dur,
    /// Accounting.
    pub acct: ProcAccounting,
    /// When the process was created.
    pub started: SimTime,
    /// When it exited (for reports).
    pub ended: Option<SimTime>,
}

impl Process {
    /// True if the process catches `sig`.
    pub fn catches(&self, sig: Sig) -> bool {
        self.catches.contains(&sig)
    }

    /// True if the process has exited.
    pub fn exited(&self) -> bool {
        matches!(self.state, ProcState::Exited(_))
    }
}

/// The process table: owns every process, allocates pids.
#[derive(Default)]
pub struct ProcTable {
    procs: BTreeMap<Pid, Process>,
    next_pid: u32,
}

impl ProcTable {
    /// An empty table. Pid 0 is never handed out (it is the "kernel").
    pub fn new() -> ProcTable {
        ProcTable {
            procs: BTreeMap::new(),
            next_pid: 1,
        }
    }

    /// Creates a process running `program`, initially runnable.
    pub fn spawn(&mut self, program: Box<dyn Program>, now: SimTime) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid,
            Process {
                pid,
                state: ProcState::Runnable,
                program,
                ctx: UserCtx::default(),
                catches: Vec::new(),
                pending_sigs: Vec::new(),
                itimer: None,
                pending_compute: None,
                recent_cpu: Dur::ZERO,
                acct: ProcAccounting::default(),
                started: now,
                ended: None,
            },
        );
        pid
    }

    /// Looks up a process.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Looks up a process mutably.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// Indexes a process that must exist.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown.
    pub fn must(&self, pid: Pid) -> &Process {
        self.procs.get(&pid).unwrap_or_else(|| panic!("no {pid:?}"))
    }

    /// Mutable [`ProcTable::must`].
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown.
    pub fn must_mut(&mut self, pid: Pid) -> &mut Process {
        self.procs
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("no {pid:?}"))
    }

    /// Iterates all processes in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Process> + '_ {
        self.procs.values()
    }

    /// Every process sleeping on `chan`.
    pub fn sleepers(&self, chan: Chan) -> Vec<Pid> {
        self.procs
            .values()
            .filter(|p| p.state == ProcState::Sleeping(chan))
            .map(|p| p.pid)
            .collect()
    }

    /// True when every process has exited.
    pub fn all_exited(&self) -> bool {
        self.procs.values().all(|p| p.exited())
    }

    /// True if any process is runnable or running (used to decide whether
    /// deferred kernel work may monopolise the CPU).
    pub fn any_user_demand(&self) -> bool {
        self.procs
            .values()
            .any(|p| matches!(p.state, ProcState::Runnable | ProcState::Running))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Step;

    struct Nop;
    impl Program for Nop {
        fn step(&mut self, _ctx: &mut UserCtx) -> Step {
            Step::Exit(0)
        }
    }

    #[test]
    fn spawn_assigns_unique_pids() {
        let mut t = ProcTable::new();
        let a = t.spawn(Box::new(Nop), SimTime::ZERO);
        let b = t.spawn(Box::new(Nop), SimTime::ZERO);
        assert_ne!(a, b);
        assert_eq!(t.must(a).state, ProcState::Runnable);
    }

    #[test]
    fn sleepers_filters_by_channel() {
        let mut t = ProcTable::new();
        let a = t.spawn(Box::new(Nop), SimTime::ZERO);
        let b = t.spawn(Box::new(Nop), SimTime::ZERO);
        let chan = Chan::new(crate::types::ChanSpace::Buf, 9);
        t.must_mut(a).state = ProcState::Sleeping(chan);
        t.must_mut(b).state = ProcState::Sleeping(Chan::new(crate::types::ChanSpace::Buf, 10));
        assert_eq!(t.sleepers(chan), vec![a]);
    }

    #[test]
    fn demand_and_exit_tracking() {
        let mut t = ProcTable::new();
        let a = t.spawn(Box::new(Nop), SimTime::ZERO);
        assert!(t.any_user_demand());
        assert!(!t.all_exited());
        t.must_mut(a).state = ProcState::Exited(0);
        assert!(!t.any_user_demand());
        assert!(t.all_exited());
    }
}
