//! The process table.
//!
//! State changes go through [`ProcTable::set_state`], which maintains
//! three incremental indices — the live count, the user-demand count,
//! and the per-channel sleeper lists — so `all_exited`,
//! `any_user_demand`, and `sleepers` are O(1)-ish however many
//! processes exist. A connection-scale scenario (tens of thousands of
//! client processes) calls all three on hot paths; scanning the table
//! there would make the whole simulation quadratic.

use std::collections::{BTreeMap, HashMap};

use ksim::{Dur, SimTime};

use crate::program::{Program, UserCtx};
use crate::types::{Chan, Pid, Sig};

/// Scheduling state of a process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcState {
    /// On the run queue (or about to be placed there).
    Runnable,
    /// Currently on the CPU.
    Running,
    /// Asleep on a channel.
    Sleeping(Chan),
    /// Finished, with an exit status.
    Exited(i32),
}

/// Per-process accounting, read by the experiment harnesses.
#[derive(Clone, Copy, Default, Debug)]
pub struct ProcAccounting {
    /// User-mode CPU consumed.
    pub user_time: Dur,
    /// Kernel-mode CPU consumed on this process's behalf (syscalls).
    pub sys_time: Dur,
    /// Voluntary context switches (blocked).
    pub vcsw: u64,
    /// Involuntary context switches (quantum expiry).
    pub icsw: u64,
    /// System calls issued.
    pub syscalls: u64,
}

impl ProcAccounting {
    /// User plus system CPU charged to this process — the numerator of
    /// the profiler's availability gauge (`cpu_time / wall_time`).
    pub fn cpu_time(&self) -> Dur {
        self.user_time + self.sys_time
    }
}

/// One process.
pub struct Process {
    /// Identity.
    pub pid: Pid,
    /// Scheduling state.
    pub state: ProcState,
    /// The user program.
    pub program: Box<dyn Program>,
    /// Context handed to the next `program.step()` (syscall return,
    /// signals).
    pub ctx: UserCtx,
    /// Signals the process has asked to catch.
    pub catches: Vec<Sig>,
    /// Signals delivered but not yet consumed by a `pause`/step.
    pub pending_sigs: Vec<Sig>,
    /// Repeating interval timer period, if armed.
    pub itimer: Option<Dur>,
    /// User compute left over after a quantum preemption; resumed before
    /// the program is stepped again.
    pub pending_compute: Option<Dur>,
    /// Recently consumed CPU, decayed periodically (the 4.3BSD `p_cpu`
    /// analogue): lower means better scheduling priority.
    pub recent_cpu: Dur,
    /// Accounting.
    pub acct: ProcAccounting,
    /// When the process was created.
    pub started: SimTime,
    /// When it exited (for reports).
    pub ended: Option<SimTime>,
}

impl Process {
    /// True if the process catches `sig`.
    pub fn catches(&self, sig: Sig) -> bool {
        self.catches.contains(&sig)
    }

    /// True if the process has exited.
    pub fn exited(&self) -> bool {
        matches!(self.state, ProcState::Exited(_))
    }
}

/// The process table: owns every process, allocates pids.
#[derive(Default)]
pub struct ProcTable {
    procs: BTreeMap<Pid, Process>,
    next_pid: u32,
    /// Processes not yet exited.
    live: usize,
    /// Processes runnable or running.
    demand: usize,
    /// Pids sleeping on each channel, insertion order.
    sleep_index: HashMap<Chan, Vec<Pid>>,
}

impl ProcTable {
    /// An empty table. Pid 0 is never handed out (it is the "kernel").
    pub fn new() -> ProcTable {
        ProcTable {
            procs: BTreeMap::new(),
            next_pid: 1,
            live: 0,
            demand: 0,
            sleep_index: HashMap::new(),
        }
    }

    /// Creates a process running `program`, initially runnable.
    pub fn spawn(&mut self, program: Box<dyn Program>, now: SimTime) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid,
            Process {
                pid,
                state: ProcState::Runnable,
                program,
                ctx: UserCtx::default(),
                catches: Vec::new(),
                pending_sigs: Vec::new(),
                itimer: None,
                pending_compute: None,
                recent_cpu: Dur::ZERO,
                acct: ProcAccounting::default(),
                started: now,
                ended: None,
            },
        );
        self.live += 1;
        self.demand += 1;
        pid
    }

    /// Moves `pid` to `state`, keeping the live/demand/sleeper indices
    /// consistent. The only sanctioned way to change a process state.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown.
    pub fn set_state(&mut self, pid: Pid, state: ProcState) {
        let p = self
            .procs
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("no {pid:?}"));
        let old = p.state;
        if old == state {
            return;
        }
        p.state = state;
        match old {
            ProcState::Runnable | ProcState::Running => self.demand -= 1,
            ProcState::Sleeping(chan) => {
                if let Some(v) = self.sleep_index.get_mut(&chan) {
                    v.retain(|&q| q != pid);
                }
            }
            ProcState::Exited(_) => self.live += 1,
        }
        match state {
            ProcState::Runnable | ProcState::Running => self.demand += 1,
            ProcState::Sleeping(chan) => self.sleep_index.entry(chan).or_default().push(pid),
            ProcState::Exited(_) => self.live -= 1,
        }
    }

    /// Looks up a process.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Looks up a process mutably.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// Indexes a process that must exist.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown.
    pub fn must(&self, pid: Pid) -> &Process {
        self.procs.get(&pid).unwrap_or_else(|| panic!("no {pid:?}"))
    }

    /// Mutable [`ProcTable::must`].
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown.
    pub fn must_mut(&mut self, pid: Pid) -> &mut Process {
        self.procs
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("no {pid:?}"))
    }

    /// Iterates all processes in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Process> + '_ {
        self.procs.values()
    }

    /// Halves every live process's decayed CPU usage (the 4.3BSD
    /// `schedcpu` analogue), in place — no per-pid lookups, so the
    /// quarter-second decay stays cheap with huge process counts.
    pub fn decay_recent_cpu(&mut self) {
        for p in self.procs.values_mut() {
            if !p.recent_cpu.is_zero() && !p.exited() {
                p.recent_cpu = p.recent_cpu / 2;
            }
        }
    }

    /// Every process sleeping on `chan`, in pid order (the order the
    /// original table scan produced, so wakeup ordering is unchanged).
    pub fn sleepers(&self, chan: Chan) -> Vec<Pid> {
        let mut v = self.sleep_index.get(&chan).cloned().unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// True when every process has exited.
    pub fn all_exited(&self) -> bool {
        self.live == 0
    }

    /// True if any process is runnable or running (used to decide whether
    /// deferred kernel work may monopolise the CPU).
    pub fn any_user_demand(&self) -> bool {
        self.demand > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Step;

    struct Nop;
    impl Program for Nop {
        fn step(&mut self, _ctx: &mut UserCtx) -> Step {
            Step::Exit(0)
        }
    }

    #[test]
    fn spawn_assigns_unique_pids() {
        let mut t = ProcTable::new();
        let a = t.spawn(Box::new(Nop), SimTime::ZERO);
        let b = t.spawn(Box::new(Nop), SimTime::ZERO);
        assert_ne!(a, b);
        assert_eq!(t.must(a).state, ProcState::Runnable);
    }

    #[test]
    fn sleepers_filters_by_channel() {
        let mut t = ProcTable::new();
        let a = t.spawn(Box::new(Nop), SimTime::ZERO);
        let b = t.spawn(Box::new(Nop), SimTime::ZERO);
        let chan = Chan::new(crate::types::ChanSpace::Buf, 9);
        t.set_state(a, ProcState::Sleeping(chan));
        t.set_state(
            b,
            ProcState::Sleeping(Chan::new(crate::types::ChanSpace::Buf, 10)),
        );
        assert_eq!(t.sleepers(chan), vec![a]);
        // Waking detaches from the sleeper index.
        t.set_state(a, ProcState::Runnable);
        assert_eq!(t.sleepers(chan), vec![]);
    }

    #[test]
    fn sleepers_report_in_pid_order() {
        let mut t = ProcTable::new();
        let a = t.spawn(Box::new(Nop), SimTime::ZERO);
        let b = t.spawn(Box::new(Nop), SimTime::ZERO);
        let c = t.spawn(Box::new(Nop), SimTime::ZERO);
        let chan = Chan::new(crate::types::ChanSpace::Buf, 1);
        // Sleep in reverse order; the report is still pid-sorted.
        for pid in [c, a, b] {
            t.set_state(pid, ProcState::Sleeping(chan));
        }
        assert_eq!(t.sleepers(chan), vec![a, b, c]);
    }

    #[test]
    fn demand_and_exit_tracking() {
        let mut t = ProcTable::new();
        let a = t.spawn(Box::new(Nop), SimTime::ZERO);
        assert!(t.any_user_demand());
        assert!(!t.all_exited());
        t.set_state(a, ProcState::Exited(0));
        assert!(!t.any_user_demand());
        assert!(t.all_exited());
        // A sleeper is alive but not demanding the CPU.
        let b = t.spawn(Box::new(Nop), SimTime::ZERO);
        t.set_state(
            b,
            ProcState::Sleeping(Chan::new(crate::types::ChanSpace::Buf, 2)),
        );
        assert!(!t.any_user_demand());
        assert!(!t.all_exited());
        t.set_state(b, ProcState::Exited(0));
        assert!(t.all_exited());
    }
}
