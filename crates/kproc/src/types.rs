//! Identifiers, syscall vocabulary, and error numbers.

use ksim::{Dur, SimTime};

/// Process identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// File descriptor (per-process index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Fd(pub i32);

/// Signals the simulation models.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sig {
    /// Asynchronous I/O completion (`SIGIO`) — how a process learns that an
    /// async splice finished (§3).
    Io,
    /// Interval timer expiry (`SIGALRM`) — the §4 movie player's pacing.
    Alrm,
}

/// Namespaces for sleep/wakeup channels. The kernel maps kernel objects
/// into `(space, id)` pairs; `kproc` treats them as opaque.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ChanSpace {
    /// A specific buffer-cache buffer (biowait / getblk collision).
    Buf,
    /// "Any buffer freed" (cache exhaustion).
    AnyBuf,
    /// A splice descriptor (synchronous splice completion).
    Splice,
    /// A splice ring's completion queue (reapers sleep here; the queue
    /// going non-empty is the wakeup).
    Ring,
    /// A socket's receive side.
    SockRecv,
    /// A socket's send side (buffer space).
    SockSend,
    /// A character device queue (audio/video DAC).
    Dev,
    /// `pause(2)` — woken only by signal delivery.
    Pause,
    /// Per-process fsync completion.
    Fsync,
    /// A listener's accept backlog (acceptors sleep here; a carved
    /// connection is the wakeup).
    Accept,
}

/// A sleep/wakeup channel (BSD `tsleep`/`wakeup` address analogue).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Chan {
    /// Which namespace the id lives in.
    pub space: ChanSpace,
    /// Object identity within the namespace.
    pub id: u64,
}

impl Chan {
    /// Builds a channel.
    pub fn new(space: ChanSpace, id: u64) -> Chan {
        Chan { space, id }
    }
}

/// `open(2)` flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create if absent.
    pub create: bool,
    /// Truncate to zero length.
    pub trunc: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        create: false,
        trunc: false,
    };
    /// `O_WRONLY`.
    pub const WRONLY: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: false,
        trunc: false,
    };
    /// `O_WRONLY | O_CREAT | O_TRUNC`.
    pub const CREATE: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        trunc: true,
    };
}

/// `fcntl(2)` commands the simulation models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FcntlCmd {
    /// Set or clear `FASYNC` on the descriptor (§3: "the splice operates
    /// asynchronously if either of the file descriptors have the FASYNC
    /// flag enabled").
    SetAsync(bool),
}

/// The `size` argument of `splice(2)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpliceLen {
    /// Move exactly this many bytes (clamped to EOF).
    Bytes(u64),
    /// "A special value indicates the splice should execute until an end
    /// of file condition is reached" (§3) — `SPLICE_EOF`.
    Eof,
}

/// The unified splice request: endpoint pair, transfer size, and the
/// fault/retry policy, as a typed builder.
///
/// Every splice entry path — the synchronous `splice(2)` call, the
/// `FASYNC`/`SIGIO` descriptor path, and batched ring submissions
/// ([`SpliceSqe`]) — carries one of these; the kernel has exactly one
/// code path from a `SpliceReq` to a [`SpliceOutcome`].
///
/// ```
/// use kproc::{Fd, SpliceLen, SpliceReq, SyscallReq};
///
/// let whole_file = SpliceReq::new(Fd(3), Fd(4));
/// assert_eq!(whole_file.len, SpliceLen::Eof);
/// let one_frame = SpliceReq::new(Fd(3), Fd(4)).bytes(64 * 1024);
/// let req: SyscallReq = one_frame.req();
/// assert!(matches!(req, SyscallReq::Splice { .. }));
/// let sqe = SpliceReq::new(Fd(3), Fd(4)).bytes(8192).sqe(7);
/// assert_eq!(sqe.user_data, 7);
/// ```
///
/// There is no flags word: per §3 the asynchronous-completion choice
/// rides on the *descriptor* (`FASYNC` via [`FcntlCmd::SetAsync`]), not
/// on the call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpliceReq {
    /// Source descriptor.
    pub src: Fd,
    /// Destination descriptor.
    pub dst: Fd,
    /// Transfer size; defaults to [`SpliceLen::Eof`].
    pub len: SpliceLen,
    /// Per-block retry budget for transient device errors; defaults to
    /// [`SpliceReq::DEFAULT_RETRIES`]. A block still failing after this
    /// many attempts aborts the transfer with `EIO`.
    pub retry_limit: u32,
}

impl SpliceReq {
    /// Default per-block retry budget (1, 2, 4, 8, 16 tick backoffs).
    pub const DEFAULT_RETRIES: u32 = 5;

    /// A whole-source splice (`SPLICE_EOF`), the common case.
    pub fn new(src: Fd, dst: Fd) -> SpliceReq {
        SpliceReq {
            src,
            dst,
            len: SpliceLen::Eof,
            retry_limit: SpliceReq::DEFAULT_RETRIES,
        }
    }

    /// Limits the transfer to `n` bytes.
    pub fn bytes(mut self, n: u64) -> SpliceReq {
        self.len = SpliceLen::Bytes(n);
        self
    }

    /// Sets the transfer size from an existing [`SpliceLen`].
    pub fn len(mut self, len: SpliceLen) -> SpliceReq {
        self.len = len;
        self
    }

    /// Runs until end of file (the default).
    pub fn to_eof(mut self) -> SpliceReq {
        self.len = SpliceLen::Eof;
        self
    }

    /// Overrides the per-block retry budget (0 = abort on first error).
    pub fn retries(mut self, n: u32) -> SpliceReq {
        self.retry_limit = n;
        self
    }

    /// The syscall request these arguments describe.
    pub fn req(self) -> SyscallReq {
        SyscallReq::Splice { req: self }
    }

    /// Wraps the request as a ring submission tagged `user_data`.
    pub fn sqe(self, user_data: u64) -> SpliceSqe {
        SpliceSqe {
            user_data,
            req: self,
        }
    }
}

impl From<SpliceReq> for SyscallReq {
    fn from(req: SpliceReq) -> SyscallReq {
        req.req()
    }
}

/// How a finished splice ended: how many bytes actually moved, and the
/// errno if it aborted. Retained after the descriptor itself is torn
/// down so tests and post-mortem tooling can audit partial transfers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpliceOutcome {
    /// Bytes fully written to the destination before completion/abort.
    pub bytes_moved: u64,
    /// `None` for a clean completion, the typed errno for an abort.
    pub error: Option<Errno>,
}

/// One splice-ring submission: a [`SpliceReq`] plus an opaque tag the
/// completion ([`SpliceCqe`]) echoes back, io_uring style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpliceSqe {
    /// Caller-chosen tag; the matching CQE carries the same value.
    pub user_data: u64,
    /// The transfer to perform.
    pub req: SpliceReq,
}

/// One splice-ring completion: the submission's tag and its outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpliceCqe {
    /// The tag of the [`SpliceSqe`] this completes.
    pub user_data: u64,
    /// How the transfer ended.
    pub outcome: SpliceOutcome,
}

/// A UDP endpoint (host, port) in the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SockAddr {
    /// Host identifier.
    pub host: u32,
    /// UDP port.
    pub port: u16,
}

/// System call requests a program can issue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallReq {
    /// Open a path (filesystem or device namespace).
    Open {
        /// Absolute path, e.g. `/movie.audio` or `/dev/speaker`.
        path: String,
        /// Access flags.
        flags: OpenFlags,
    },
    /// Close a descriptor.
    Close(Fd),
    /// Read up to `len` bytes at the descriptor's offset.
    Read {
        /// Source descriptor.
        fd: Fd,
        /// Maximum bytes.
        len: usize,
    },
    /// Write bytes at the descriptor's offset.
    Write {
        /// Destination descriptor.
        fd: Fd,
        /// The bytes (moved through copyin in the kernel).
        data: Vec<u8>,
    },
    /// Reposition the descriptor offset.
    Lseek {
        /// Descriptor.
        fd: Fd,
        /// New absolute offset.
        pos: u64,
    },
    /// The paper's contribution: move bytes from source to destination
    /// inside the kernel.
    Splice {
        /// The unified request (endpoints, size, retry policy).
        req: SpliceReq,
    },
    /// Create a splice ring: a bounded submission/completion queue pair
    /// through which many splices are posted and reaped in single
    /// crossings. Returns the ring id as `Val`.
    RingCreate {
        /// Maximum entries in flight + unreaped completions. Zero is
        /// `EINVAL`.
        depth: u32,
        /// Deliver `SIGIO` when the completion queue goes non-empty.
        sigio: bool,
    },
    /// Post a batch of submissions in **one** syscall crossing. Returns
    /// `Val(accepted)`; fewer than `sqes.len()` when the ring fills
    /// mid-batch, `EAGAIN` when no entry fits at all.
    RingSubmit {
        /// Ring id from [`SyscallReq::RingCreate`].
        ring: u64,
        /// The submissions, in order.
        sqes: Vec<SpliceSqe>,
    },
    /// Reap queued completions in **one** crossing. Blocks until at
    /// least `min` CQEs are available (clamped to what can still
    /// arrive); `min = 0` polls. Returns [`SyscallRet::Cqes`] in
    /// completion order.
    RingReap {
        /// Ring id from [`SyscallReq::RingCreate`].
        ring: u64,
        /// Minimum completions to wait for.
        min: u32,
    },
    /// Flush a file's dirty blocks (and metadata) to the device.
    Fsync(Fd),
    /// Descriptor control.
    Fcntl {
        /// Descriptor.
        fd: Fd,
        /// Command.
        cmd: FcntlCmd,
    },
    /// Remove a name.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Add a hard link (`link(2)`): `new` becomes another name for
    /// `existing`.
    Link {
        /// Existing file.
        existing: String,
        /// New name (same filesystem).
        new: String,
    },
    /// Arm a repeating real-time interval timer delivering [`Sig::Alrm`].
    SetItimer {
        /// Interval (zero disarms).
        interval: Dur,
    },
    /// Sleep until a signal is delivered (returns immediately if one is
    /// already pending — see the movie-player discussion in the docs).
    Pause,
    /// Ask to catch (or ignore) a signal.
    Sigaction {
        /// Signal.
        sig: Sig,
        /// Catch (true) or default-ignore (false).
        catch: bool,
    },
    /// Read the clock.
    GetTime,
    /// Create a UDP socket.
    Socket,
    /// Bind a socket to a local port.
    Bind {
        /// Socket descriptor.
        fd: Fd,
        /// Local port.
        port: u16,
    },
    /// Set the default destination of a socket.
    Connect {
        /// Socket descriptor.
        fd: Fd,
        /// Peer address.
        addr: SockAddr,
    },
    /// Mark a bound socket as a listener with a bounded accept backlog.
    Listen {
        /// Socket descriptor (must be bound).
        fd: Fd,
        /// Maximum carved-but-unaccepted connections.
        backlog: u32,
    },
    /// Take the oldest pending connection off a listener, as a new
    /// socket descriptor. Blocks until a connection arrives.
    Accept {
        /// Listening socket descriptor.
        fd: Fd,
    },
    /// Send a datagram to the connected peer.
    Send {
        /// Socket descriptor.
        fd: Fd,
        /// Payload.
        data: Vec<u8>,
    },
    /// Receive one datagram (blocks until one arrives).
    Recv {
        /// Socket descriptor.
        fd: Fd,
        /// Maximum payload accepted.
        max_len: usize,
    },
    /// File size query (`fstat`, size field only).
    Fstat(Fd),
    /// [PCM91] ioctl-handle baseline (§7): read the next block at the
    /// descriptor's offset into a kernel-held handle — data stays in the
    /// kernel, no `copyout`. Returns the handle.
    HandleRead {
        /// Source descriptor.
        fd: Fd,
    },
    /// [PCM91] ioctl-handle baseline: write a kernel handle's data at the
    /// descriptor's offset — no `copyin`. Consumes the handle.
    HandleWrite {
        /// Destination descriptor.
        fd: Fd,
        /// Handle from [`SyscallReq::HandleRead`].
        handle: i64,
    },
    /// Memory-mapped-copy baseline (§7's shared-memory approaches): the
    /// kernel-side work of touching `len` mapped bytes at both files'
    /// offsets — page faults plus the cache traffic they imply. The
    /// user-mode `memcpy` itself is a separate [`crate::Step::Compute`].
    /// There is no per-call trap cost: entry is by page fault.
    MmapFault {
        /// Source descriptor.
        src: Fd,
        /// Destination descriptor.
        dst: Fd,
        /// Window length in bytes.
        len: usize,
    },
}

/// System call return values delivered to the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallRet {
    /// Success with a count/status value (read/write/splice byte counts).
    Val(i64),
    /// A new descriptor.
    NewFd(Fd),
    /// Data read.
    Data(Vec<u8>),
    /// Current simulated time.
    Time(SimTime),
    /// Reaped ring completions, in completion order.
    Cqes(Vec<SpliceCqe>),
    /// Failure.
    Err(Errno),
}

impl SyscallRet {
    /// The numeric value, for programs that only care about counts.
    /// Errors map to -1 as in UNIX.
    pub fn as_val(&self) -> i64 {
        match self {
            SyscallRet::Val(v) => *v,
            SyscallRet::NewFd(fd) => fd.0 as i64,
            SyscallRet::Data(d) => d.len() as i64,
            SyscallRet::Time(_) => 0,
            SyscallRet::Cqes(c) => c.len() as i64,
            SyscallRet::Err(_) => -1,
        }
    }

    /// The descriptor, if this was a descriptor-returning call.
    pub fn as_fd(&self) -> Option<Fd> {
        match self {
            SyscallRet::NewFd(fd) => Some(*fd),
            _ => None,
        }
    }
}

/// Error numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Errno {
    /// No such file or directory.
    Enoent,
    /// File exists.
    Eexist,
    /// Bad file descriptor.
    Ebadf,
    /// Invalid argument.
    Einval,
    /// Resource temporarily unavailable (a full submission queue).
    Eagain,
    /// No space left on device.
    Enospc,
    /// Is a directory.
    Eisdir,
    /// Not a directory.
    Enotdir,
    /// Directory not empty.
    Enotempty,
    /// I/O error.
    Eio,
    /// Operation not supported on this object.
    Enotsup,
    /// File too large.
    Efbig,
    /// Interrupted (signal).
    Eintr,
    /// Address already in use.
    Eaddrinuse,
    /// Socket not connected.
    Enotconn,
    /// Message too long for the protocol.
    Emsgsize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_ret_values() {
        assert_eq!(SyscallRet::Val(42).as_val(), 42);
        assert_eq!(SyscallRet::NewFd(Fd(3)).as_val(), 3);
        assert_eq!(SyscallRet::Data(vec![1, 2, 3]).as_val(), 3);
        assert_eq!(SyscallRet::Err(Errno::Enoent).as_val(), -1);
        assert_eq!(SyscallRet::NewFd(Fd(3)).as_fd(), Some(Fd(3)));
        assert_eq!(SyscallRet::Val(0).as_fd(), None);
    }

    #[test]
    fn open_flag_presets() {
        // Spelled through locals so the (deliberate) tautology does not
        // trip the constant-assertion lint.
        let ro = OpenFlags::RDONLY;
        let cr = OpenFlags::CREATE;
        assert!(ro.read && !ro.write);
        assert!(cr.create && cr.trunc);
    }

    #[test]
    fn chan_equality() {
        let a = Chan::new(ChanSpace::Buf, 7);
        let b = Chan::new(ChanSpace::Buf, 7);
        let c = Chan::new(ChanSpace::AnyBuf, 7);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
