#![warn(missing_docs)]

//! Process, scheduling and CPU substrate.
//!
//! The paper's headline metric is **CPU availability**: how much of the
//! machine a CPU-bound test program keeps while a copy runs beside it.
//! That requires the simulation to charge every cycle to somebody:
//!
//! * [`cpu::CpuEngine`] — a single CPU with two kinds of work: kernel work
//!   (interrupt service, softclock/callout dispatch, splice handler chains)
//!   that preempts user execution, and user execution that absorbs the
//!   delays. Soft (deferrable) kernel work is budgeted per clock tick;
//!   work past the budget runs only when no user process wants the CPU —
//!   the discipline that keeps charge-free asynchronous kernel work from
//!   starving paying processes.
//! * [`sched`] — round-robin scheduling with a quantum and explicit
//!   context-switch cost.
//! * [`process`] — the process table: program, state, signals, interval
//!   timer, accounting.
//! * [`program`] — the state-machine API user programs are written
//!   against: each step either computes, issues a syscall, or exits.
//! * [`programs`] — the programs the experiments run: the CPU-bound test
//!   program, `cp` (read/write copy), `scp` (splice copy), the §4 movie
//!   player, and network relays.
//!
//! The crate holds no event loop and never performs I/O itself: the kernel
//! in the `splice` crate owns the loop and interprets syscalls; everything
//! here is a deterministic state machine over `ksim` time.

pub mod cpu;
pub mod process;
pub mod program;
pub mod programs;
pub mod sched;
pub mod types;

pub use cpu::{Admit, CpuEngine, KernelRun, WorkClass};
pub use process::{ProcState, ProcTable, Process};
pub use program::{Program, Step, UserCtx};
pub use sched::{CurrentRun, RunKind, Scheduler};
pub use types::{
    Chan, ChanSpace, Errno, FcntlCmd, Fd, OpenFlags, Pid, Sig, SockAddr, SpliceCqe, SpliceLen,
    SpliceOutcome, SpliceReq, SpliceSqe, SyscallReq, SyscallRet,
};
