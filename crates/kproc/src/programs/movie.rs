//! The §4 example application: digitized movie playback.
//!
//! Reproduces the paper's code fragment: the audio track is spliced
//! asynchronously to `/dev/speaker` in one `SPLICE_EOF` call (the DAC
//! paces itself at the playback rate), while video frames are delivered
//! one per interval-timer tick with bounded synchronous splices —
//! "slowing the splice transfer rate is achieved by ensuring the FASYNC
//! property is not set, and adjusting the size parameter to specify a
//! limited transfer quantum (e.g. the size of a single frame)".

use ksim::Dur;

use crate::program::{Program, Step, UserCtx};
use crate::types::{FcntlCmd, Fd, OpenFlags, Sig, SpliceReq, SyscallReq, SyscallRet};

#[derive(Debug)]
enum St {
    Start,
    OpenAudio,
    OpenVideo,
    OpenAudioDev,
    OpenVideoDev,
    FcntlAudio,
    SpliceAudio,
    Sigaction,
    SetItimer,
    SpliceFrame,
    Pause,
    Done,
    Failed(&'static str),
}

/// The movie player program.
pub struct MoviePlayer {
    audio_file: String,
    video_file: String,
    audio_dev: String,
    video_dev: String,
    frame_size: u64,
    frame_interval: Dur,
    st: St,
    audiofile: Option<Fd>,
    videofile: Option<Fd>,
    audio_out: Option<Fd>,
    video_out: Option<Fd>,
    frames_played: u64,
}

impl MoviePlayer {
    /// Plays `video_file` to `video_dev` at one `frame_size` splice per
    /// `frame_interval`, with `audio_file` spliced to `audio_dev`
    /// asynchronously.
    pub fn new(
        audio_file: &str,
        video_file: &str,
        audio_dev: &str,
        video_dev: &str,
        frame_size: u64,
        frame_interval: Dur,
    ) -> MoviePlayer {
        MoviePlayer {
            audio_file: audio_file.to_string(),
            video_file: video_file.to_string(),
            audio_dev: audio_dev.to_string(),
            video_dev: video_dev.to_string(),
            frame_size,
            frame_interval,
            st: St::Start,
            audiofile: None,
            videofile: None,
            audio_out: None,
            video_out: None,
            frames_played: 0,
        }
    }

    /// Frames delivered so far.
    pub fn frames_played(&self) -> u64 {
        self.frames_played
    }

    /// Why the program failed, if it did (for test diagnostics).
    pub fn failed_reason(&self) -> Option<&'static str> {
        match self.st {
            St::Failed(why) => Some(why),
            _ => None,
        }
    }

    fn fail(&mut self, what: &'static str) -> Step {
        self.st = St::Failed(what);
        Step::Exit(1)
    }

    fn open(path: &str, flags: OpenFlags) -> Step {
        Step::Syscall(SyscallReq::Open {
            path: path.to_string(),
            flags,
        })
    }
}

impl Program for MoviePlayer {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            St::Start => {
                self.st = St::OpenAudio;
                Self::open(&self.audio_file.clone(), OpenFlags::RDONLY)
            }
            St::OpenAudio => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.audiofile = Some(fd),
                    _ => return self.fail("open audio file"),
                }
                self.st = St::OpenVideo;
                Self::open(&self.video_file.clone(), OpenFlags::RDONLY)
            }
            St::OpenVideo => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.videofile = Some(fd),
                    _ => return self.fail("open video file"),
                }
                self.st = St::OpenAudioDev;
                Self::open(&self.audio_dev.clone(), OpenFlags::WRONLY)
            }
            St::OpenAudioDev => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.audio_out = Some(fd),
                    _ => return self.fail("open audio dev"),
                }
                self.st = St::OpenVideoDev;
                Self::open(&self.video_dev.clone(), OpenFlags::WRONLY)
            }
            St::OpenVideoDev => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.video_out = Some(fd),
                    _ => return self.fail("open video dev"),
                }
                self.st = St::FcntlAudio;
                Step::Syscall(SyscallReq::Fcntl {
                    fd: self.audiofile.unwrap(),
                    cmd: FcntlCmd::SetAsync(true),
                })
            }
            St::FcntlAudio => {
                ctx.take_ret();
                self.st = St::SpliceAudio;
                // "Copy the audio information; return immediately."
                Step::splice(SpliceReq::new(
                    self.audiofile.unwrap(),
                    self.audio_out.unwrap(),
                ))
            }
            St::SpliceAudio => {
                match ctx.take_ret() {
                    SyscallRet::Val(_) => {}
                    _ => return self.fail("audio splice"),
                }
                self.st = St::Sigaction;
                Step::Syscall(SyscallReq::Sigaction {
                    sig: Sig::Alrm,
                    catch: true,
                })
            }
            St::Sigaction => {
                ctx.take_ret();
                self.st = St::SetItimer;
                Step::Syscall(SyscallReq::SetItimer {
                    interval: self.frame_interval,
                })
            }
            St::SetItimer => {
                ctx.take_ret();
                self.st = St::SpliceFrame;
                Step::splice(
                    SpliceReq::new(self.videofile.unwrap(), self.video_out.unwrap())
                        .bytes(self.frame_size),
                )
            }
            St::SpliceFrame => match ctx.take_ret() {
                SyscallRet::Val(n) if n > 0 => {
                    self.frames_played += 1;
                    self.st = St::Pause;
                    // "pause(); wait for timer to go off; it will reload
                    // automatically."
                    Step::Syscall(SyscallReq::Pause)
                }
                SyscallRet::Val(_) => {
                    // EOF: rval == 0 terminates the do/while loop.
                    self.st = St::Done;
                    Step::Syscall(SyscallReq::SetItimer {
                        interval: Dur::ZERO,
                    })
                }
                _ => self.fail("video splice"),
            },
            St::Pause => {
                ctx.take_ret();
                self.st = St::SpliceFrame;
                Step::splice(
                    SpliceReq::new(self.videofile.unwrap(), self.video_out.unwrap())
                        .bytes(self.frame_size),
                )
            }
            St::Done => {
                ctx.ret.take();
                Step::Exit(0)
            }
            St::Failed(_) => Step::Exit(1),
        }
    }

    fn name(&self) -> &str {
        "movie_player"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SpliceLen;

    fn drive_to_frames(p: &mut MoviePlayer, ctx: &mut UserCtx) {
        // Four opens.
        for fd in 3..=6 {
            p.step(ctx);
            ctx.ret = Some(SyscallRet::NewFd(Fd(fd)));
        }
        // fcntl FASYNC.
        let s = p.step(ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Fcntl { .. })));
        ctx.ret = Some(SyscallRet::Val(0));
        // Async audio splice returns immediately.
        let s = p.step(ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::Splice {
                req: SpliceReq {
                    src: Fd(3),
                    dst: Fd(5),
                    ..
                }
            })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        let s = p.step(ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::Sigaction { sig: Sig::Alrm, .. })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        let s = p.step(ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::SetItimer { .. })));
        ctx.ret = Some(SyscallRet::Val(0));
    }

    #[test]
    fn frame_loop_paces_with_pause() {
        let mut p = MoviePlayer::new(
            "/movie.audio",
            "/movie.video",
            "/dev/speaker",
            "/dev/video_dac",
            64 * 1024,
            Dur::from_ms(33),
        );
        let mut ctx = UserCtx::default();
        drive_to_frames(&mut p, &mut ctx);

        // First frame splice.
        let s = p.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::Splice {
                req: SpliceReq {
                    src: Fd(4),
                    dst: Fd(6),
                    len: SpliceLen::Bytes(n),
                    ..
                }
            }) if n == 64 * 1024
        ));
        ctx.ret = Some(SyscallRet::Val(64 * 1024));
        let s = p.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Pause)));
        ctx.ret = Some(SyscallRet::Val(0));
        ctx.signals = vec![Sig::Alrm];
        // Timer fired: next frame.
        let s = p.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Splice { .. })));
        assert_eq!(p.frames_played(), 1);

        // EOF ends playback and disarms the timer.
        ctx.ret = Some(SyscallRet::Val(0));
        ctx.signals.clear();
        let s = p.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::SetItimer { interval }) if interval.is_zero()
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
    }
}
