//! `cp`: the read/write baseline copy program (the CP environment, §6.1).
//!
//! A faithful copy loop: `open`, `open|creat|trunc`, then `read`/`write`
//! through a user buffer in `bufsize` chunks until EOF, `fsync` the
//! destination (the experiment "ensured write-through behavior … by
//! calling fsync() on the destination file for CP"), close both. Every
//! byte passes through user space twice — that is the copy splice removes.

use ksim::Dur;

use crate::program::{Program, Step, UserCtx};
use crate::types::{Fd, OpenFlags, SyscallReq, SyscallRet};

#[derive(Debug)]
enum St {
    Start,
    OpenSrc,
    OpenDst,
    Read,
    Write,
    Fsync,
    CloseSrc,
    CloseDst,
    Done,
    Failed(&'static str),
}

/// The read/write copy program.
pub struct Cp {
    src: String,
    dst: String,
    bufsize: usize,
    do_fsync: bool,
    /// Copies to perform back-to-back (sustained-contention runs).
    repeat: u32,
    /// Small user-mode cost per loop iteration (buffer management in cp
    /// itself).
    loop_overhead: Dur,
    st: St,
    src_fd: Option<Fd>,
    dst_fd: Option<Fd>,
    pending: Option<Vec<u8>>,
    copies_done: u32,
    bytes_copied: u64,
}

impl Cp {
    /// A single copy with an 8 KB buffer and fsync, like the experiment.
    pub fn new(src: &str, dst: &str) -> Cp {
        Cp::with_options(src, dst, 8192, true, 1)
    }

    /// Full control over buffer size, fsync, and repetition count.
    pub fn with_options(src: &str, dst: &str, bufsize: usize, do_fsync: bool, repeat: u32) -> Cp {
        assert!(bufsize > 0 && repeat > 0);
        Cp {
            src: src.to_string(),
            dst: dst.to_string(),
            bufsize,
            do_fsync,
            repeat,
            loop_overhead: Dur::from_us(20),
            st: St::Start,
            src_fd: None,
            dst_fd: None,
            pending: None,
            copies_done: 0,
            bytes_copied: 0,
        }
    }

    /// Total bytes moved across all completed copies.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Completed copy passes.
    pub fn copies_done(&self) -> u32 {
        self.copies_done
    }

    /// Why the program failed, if it did (for test diagnostics).
    pub fn failed_reason(&self) -> Option<&'static str> {
        match self.st {
            St::Failed(why) => Some(why),
            _ => None,
        }
    }

    fn fail(&mut self, what: &'static str) -> Step {
        self.st = St::Failed(what);
        Step::Exit(1)
    }
}

impl Program for Cp {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            St::Start => {
                self.st = St::OpenSrc;
                Step::Syscall(SyscallReq::Open {
                    path: self.src.clone(),
                    flags: OpenFlags::RDONLY,
                })
            }
            St::OpenSrc => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.src_fd = Some(fd),
                    _ => return self.fail("open src"),
                }
                self.st = St::OpenDst;
                Step::Syscall(SyscallReq::Open {
                    path: self.dst.clone(),
                    flags: OpenFlags::CREATE,
                })
            }
            St::OpenDst => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.dst_fd = Some(fd),
                    _ => return self.fail("open dst"),
                }
                self.st = St::Read;
                Step::Syscall(SyscallReq::Read {
                    fd: self.src_fd.unwrap(),
                    len: self.bufsize,
                })
            }
            St::Read => match ctx.take_ret() {
                SyscallRet::Data(d) if d.is_empty() => {
                    if self.do_fsync {
                        self.st = St::Fsync;
                        Step::Syscall(SyscallReq::Fsync(self.dst_fd.unwrap()))
                    } else {
                        self.st = St::CloseSrc;
                        Step::Syscall(SyscallReq::Close(self.src_fd.take().unwrap()))
                    }
                }
                SyscallRet::Data(d) => {
                    self.bytes_copied += d.len() as u64;
                    self.pending = Some(d);
                    self.st = St::Write;
                    // User-mode buffer management cost between the read
                    // completing and the write being issued; the next step
                    // (with `pending` set) issues the write itself.
                    Step::Compute(self.loop_overhead)
                }
                _ => self.fail("read"),
            },
            St::Write => {
                // Entered twice: once after the overhead compute (no ret),
                // once after the write completes.
                if let Some(data) = self.pending.take() {
                    return Step::Syscall(SyscallReq::Write {
                        fd: self.dst_fd.unwrap(),
                        data,
                    });
                }
                match ctx.take_ret() {
                    SyscallRet::Val(n) if n > 0 => {
                        self.st = St::Read;
                        Step::Syscall(SyscallReq::Read {
                            fd: self.src_fd.unwrap(),
                            len: self.bufsize,
                        })
                    }
                    _ => self.fail("write"),
                }
            }
            St::Fsync => {
                match ctx.take_ret() {
                    SyscallRet::Val(_) => {}
                    _ => return self.fail("fsync"),
                }
                self.st = St::CloseSrc;
                Step::Syscall(SyscallReq::Close(self.src_fd.take().unwrap()))
            }
            St::CloseSrc => {
                ctx.take_ret();
                self.st = St::CloseDst;
                Step::Syscall(SyscallReq::Close(self.dst_fd.take().unwrap()))
            }
            St::CloseDst => {
                ctx.take_ret();
                self.copies_done += 1;
                if self.copies_done < self.repeat {
                    self.st = St::Start;
                    // Re-enter immediately; the next step reopens.
                    self.step(ctx)
                } else {
                    self.st = St::Done;
                    Step::Exit(0)
                }
            }
            St::Done => Step::Exit(0),
            St::Failed(_) => Step::Exit(1),
        }
    }

    fn name(&self) -> &str {
        "cp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the program with canned kernel responses, checking the
    /// syscall sequence of one whole copy.
    #[test]
    fn issues_classic_copy_sequence() {
        let mut cp = Cp::new("/src", "/dst");
        let mut ctx = UserCtx::default();

        let s = cp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Open { ref path, .. }) if path == "/src"));
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));

        let s = cp.step(&mut ctx);
        assert!(
            matches!(s, Step::Syscall(SyscallReq::Open { ref path, flags }) if path == "/dst" && flags.create)
        );
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));

        let s = cp.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::Read {
                fd: Fd(3),
                len: 8192
            })
        ));

        // One block, then EOF.
        ctx.ret = Some(SyscallRet::Data(vec![9u8; 8192]));
        let s = cp.step(&mut ctx);
        assert!(matches!(s, Step::Compute(_)), "loop overhead after read");
        let s = cp.step(&mut ctx);
        let Step::Syscall(SyscallReq::Write { fd: Fd(4), data }) = s else {
            panic!("expected write, got {s:?}")
        };
        assert_eq!(data.len(), 8192);

        ctx.ret = Some(SyscallRet::Val(8192));
        let s = cp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Read { .. })));

        ctx.ret = Some(SyscallRet::Data(vec![])); // EOF
        let s = cp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Fsync(Fd(4)))));

        ctx.ret = Some(SyscallRet::Val(0));
        let s = cp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Close(Fd(3)))));
        ctx.ret = Some(SyscallRet::Val(0));
        let s = cp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Close(Fd(4)))));
        ctx.ret = Some(SyscallRet::Val(0));
        assert_eq!(cp.step(&mut ctx), Step::Exit(0));
        assert_eq!(cp.bytes_copied(), 8192);
        assert_eq!(cp.copies_done(), 1);
    }

    #[test]
    fn open_failure_exits_nonzero() {
        let mut cp = Cp::new("/missing", "/dst");
        let mut ctx = UserCtx::default();
        cp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Err(crate::types::Errno::Enoent));
        assert_eq!(cp.step(&mut ctx), Step::Exit(1));
    }

    #[test]
    fn repeat_reopens() {
        let mut cp = Cp::with_options("/s", "/d", 4096, false, 2);
        let mut ctx = UserCtx::default();
        // Copy 1: open, open, read -> EOF immediately, close, close.
        cp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        cp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        cp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Data(vec![]));
        cp.step(&mut ctx); // close src
        ctx.ret = Some(SyscallRet::Val(0));
        cp.step(&mut ctx); // close dst
        ctx.ret = Some(SyscallRet::Val(0));
        // Second copy begins with a fresh open of the source.
        let s = cp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Open { ref path, .. }) if path == "/s"));
    }
}
