//! The user programs the experiments run.
//!
//! Each program is a [`crate::Program`] state machine written purely in
//! terms of system calls, mirroring the C programs of the paper's §4 and
//! §6:
//!
//! * [`CpuBound`] — the availability test program: a fixed number of
//!   fixed-cost operations (§6.2).
//! * [`Cp`] — `cp`: a read/write copy loop through a user buffer, with
//!   `fsync` on the destination (§6.1's CP environment).
//! * [`Scp`] — `scp`: the splice-based copy, synchronous or
//!   `FASYNC`+`SIGIO` (§6.1's SCP environment).
//! * [`RingScp`] — batched splice copies through a splice ring (one
//!   submit/reap crossing per wave), with a legacy one-at-a-time mode
//!   for crossings-per-byte comparisons.
//! * [`MoviePlayer`] — the §4 example: async audio splice plus
//!   interval-timer-paced video frame splices.
//! * [`net`] — UDP senders/sinks and the two relay variants
//!   (read/write vs splice) for the socket-to-socket data path (§5.1).
//! * [`server`] — the connection-scale scenario: a listening
//!   [`SpliceServer`] (splice, splice-ring, or cp-relay modes) serving
//!   an open-loop fleet of [`ServerClient`]s, one file fetch each.
//! * [`Writer`] — creates files through the normal write path (exercises
//!   allocation + delayed writes).
//! * [`EndpointPair`] — a generic splice driver between any two endpoint
//!   specs; the endpoint-matrix tests and bench are built on it.

pub mod cp;
pub mod cpubound;
pub mod endpoint;
pub mod movie;
pub mod net;
pub mod repeat;
pub mod ring_scp;
pub mod scp;
pub mod server;
pub mod util;
pub mod writer;

pub use cp::Cp;
pub use cpubound::CpuBound;
pub use endpoint::{EndSpec, EndpointPair};
pub use movie::MoviePlayer;
pub use net::{UdpRelayRw, UdpRelaySplice, UdpSink, UdpSource};
pub use repeat::Repeat;
pub use ring_scp::RingScp;
pub use scp::{Scp, ScpMode};
pub use server::{
    open_loop_delays, scenario_stats, ScenarioStats, ServeMode, ServerClient, SharedScenario,
    SpliceServer,
};
pub use writer::Writer;
