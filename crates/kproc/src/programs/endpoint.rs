//! A generic splice driver for arbitrary endpoint pairs.
//!
//! [`EndpointPair`] opens any two splice endpoints — filesystem paths
//! (including character devices like `/dev/fb0` or `/dev/audio`), bound
//! sockets, or connected sockets — and issues one `splice(2)` between
//! them, recording the raw [`SyscallRet`]. The endpoint-matrix tests and
//! the `endpoint_matrix` bench both drive every supported (and every
//! rejected) source×destination combination through this one program.

use std::cell::RefCell;
use std::rc::Rc;

use crate::program::{Program, Step, UserCtx};
use crate::types::{Fd, OpenFlags, SockAddr, SpliceLen, SpliceReq, SyscallReq, SyscallRet};

/// How to materialise one end of the splice.
#[derive(Clone, Debug)]
pub enum EndSpec {
    /// `open(path, flags)` — regular files and character devices alike.
    File {
        /// Path to open.
        path: String,
        /// Open mode; sources want `RDONLY`, file sinks `CREATE`.
        flags: OpenFlags,
    },
    /// `socket()` + `bind(port)` — a datagram receive endpoint.
    SockBind {
        /// Local port to bind.
        port: u16,
    },
    /// `socket()` + `connect(addr)` — a datagram send endpoint.
    SockConnect {
        /// Remote peer.
        addr: SockAddr,
    },
}

impl EndSpec {
    /// Shorthand for a read-only file (or device) source.
    pub fn read(path: &str) -> EndSpec {
        EndSpec::File {
            path: path.into(),
            flags: OpenFlags::RDONLY,
        }
    }

    /// Shorthand for a created (write-only) file sink.
    pub fn create(path: &str) -> EndSpec {
        EndSpec::File {
            path: path.into(),
            flags: OpenFlags::CREATE,
        }
    }

    /// Shorthand for a write-only device sink.
    pub fn write(path: &str) -> EndSpec {
        EndSpec::File {
            path: path.into(),
            flags: OpenFlags::WRONLY,
        }
    }

    fn first_call(&self) -> SyscallReq {
        match self {
            EndSpec::File { path, flags } => SyscallReq::Open {
                path: path.clone(),
                flags: *flags,
            },
            EndSpec::SockBind { .. } | EndSpec::SockConnect { .. } => SyscallReq::Socket,
        }
    }

    fn second_call(&self, fd: Fd) -> Option<SyscallReq> {
        match self {
            EndSpec::File { .. } => None,
            EndSpec::SockBind { port } => Some(SyscallReq::Bind { fd, port: *port }),
            EndSpec::SockConnect { addr } => Some(SyscallReq::Connect { fd, addr: *addr }),
        }
    }
}

/// Shared cell the splice result lands in.
pub type ResultCell = Rc<RefCell<Option<SyscallRet>>>;

/// Opens `src` and `dst` per their [`EndSpec`]s, splices `len` between
/// them, and exits. Setup failures exit with status 2; the splice result
/// itself — success or errno — is recorded, never fatal.
pub struct EndpointPair {
    src: EndSpec,
    dst: EndSpec,
    len: SpliceLen,
    fsync_dst: bool,
    st: u32,
    src_fd: Option<Fd>,
    dst_fd: Option<Fd>,
    result: ResultCell,
}

impl EndpointPair {
    /// Build the program plus the cell its splice result will appear in.
    pub fn new(src: EndSpec, dst: EndSpec, len: SpliceLen) -> (EndpointPair, ResultCell) {
        let result: ResultCell = Rc::new(RefCell::new(None));
        (
            EndpointPair {
                src,
                dst,
                len,
                fsync_dst: false,
                st: 0,
                src_fd: None,
                dst_fd: None,
                result: result.clone(),
            },
            result,
        )
    }

    /// `fsync` the destination after the splice (file sinks only).
    pub fn with_fsync(mut self) -> EndpointPair {
        self.fsync_dst = true;
        self
    }
}

impl Program for EndpointPair {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(self.src.first_call())
            }
            1 => {
                self.src_fd = ctx.take_ret().as_fd();
                let Some(fd) = self.src_fd else {
                    return Step::Exit(2);
                };
                match self.src.second_call(fd) {
                    Some(req) => {
                        self.st = 2;
                        Step::Syscall(req)
                    }
                    None => {
                        self.st = 3;
                        self.step(ctx)
                    }
                }
            }
            2 => {
                if !matches!(ctx.take_ret(), SyscallRet::Val(_)) {
                    return Step::Exit(2);
                }
                self.st = 3;
                self.step(ctx)
            }
            3 => {
                self.st = 4;
                Step::Syscall(self.dst.first_call())
            }
            4 => {
                self.dst_fd = ctx.take_ret().as_fd();
                let Some(fd) = self.dst_fd else {
                    return Step::Exit(2);
                };
                match self.dst.second_call(fd) {
                    Some(req) => {
                        self.st = 5;
                        Step::Syscall(req)
                    }
                    None => {
                        self.st = 6;
                        self.step(ctx)
                    }
                }
            }
            5 => {
                if !matches!(ctx.take_ret(), SyscallRet::Val(_)) {
                    return Step::Exit(2);
                }
                self.st = 6;
                self.step(ctx)
            }
            6 => {
                self.st = 7;
                Step::splice(
                    SpliceReq::new(self.src_fd.unwrap(), self.dst_fd.unwrap()).len(self.len),
                )
            }
            7 => {
                let ret = ctx.take_ret();
                let ok = matches!(ret, SyscallRet::Val(_));
                *self.result.borrow_mut() = Some(ret);
                if self.fsync_dst && ok {
                    self.st = 8;
                    return Step::Syscall(SyscallReq::Fsync(self.dst_fd.unwrap()));
                }
                Step::Exit(0)
            }
            8 => {
                ctx.take_ret();
                Step::Exit(0)
            }
            _ => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "endpoint_pair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_to_socket_sequence() {
        let (mut p, result) = EndpointPair::new(
            EndSpec::read("/d0/src"),
            EndSpec::SockConnect {
                addr: SockAddr { host: 1, port: 9 },
            },
            SpliceLen::Bytes(4096),
        );
        let mut ctx = UserCtx::default();
        assert!(matches!(
            p.step(&mut ctx),
            Step::Syscall(SyscallReq::Open { .. })
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        assert!(matches!(
            p.step(&mut ctx),
            Step::Syscall(SyscallReq::Socket)
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        assert!(matches!(
            p.step(&mut ctx),
            Step::Syscall(SyscallReq::Connect { fd: Fd(4), .. })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            p.step(&mut ctx),
            Step::Syscall(SyscallReq::Splice {
                req: SpliceReq {
                    src: Fd(3),
                    dst: Fd(4),
                    len: SpliceLen::Bytes(4096),
                    ..
                }
            })
        ));
        ctx.ret = Some(SyscallRet::Val(4096));
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
        assert_eq!(*result.borrow(), Some(SyscallRet::Val(4096)));
    }

    #[test]
    fn errno_is_recorded_not_fatal() {
        let (mut p, result) = EndpointPair::new(
            EndSpec::read("/d0/src"),
            EndSpec::create("/d1/dst"),
            SpliceLen::Eof,
        );
        let mut ctx = UserCtx::default();
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Err(crate::Errno::Einval));
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
        assert_eq!(
            *result.borrow(),
            Some(SyscallRet::Err(crate::Errno::Einval))
        );
    }
}
