//! A program combinator: run a program repeatedly.
//!
//! Used by the availability harnesses to turn a one-shot copy program
//! into a sustained load ("execution of the test program concurrent with
//! a process executing cp", §6.2 — for the whole measurement window).

use crate::program::{Program, Step, UserCtx};

/// Runs `make()` instances back to back, `count` times (or forever with
/// `u32::MAX`), exiting early if an instance fails.
pub struct Repeat {
    make: Box<dyn Fn() -> Box<dyn Program>>,
    inner: Box<dyn Program>,
    remaining: u32,
    runs_done: u32,
}

impl Repeat {
    /// Repeats the program produced by `make`, `count` ≥ 1 times.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: u32, make: impl Fn() -> Box<dyn Program> + 'static) -> Repeat {
        assert!(count >= 1);
        let inner = make();
        Repeat {
            make: Box::new(make),
            inner,
            remaining: count,
            runs_done: 0,
        }
    }

    /// Completed inner runs so far.
    pub fn runs_done(&self) -> u32 {
        self.runs_done
    }
}

impl Program for Repeat {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        loop {
            match self.inner.step(ctx) {
                Step::Exit(0) => {
                    self.runs_done += 1;
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        return Step::Exit(0);
                    }
                    self.inner = (self.make)();
                    // Fall through: the fresh instance takes this step.
                    continue;
                }
                other => return other,
            }
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::Dur;

    struct TwoSteps {
        left: u32,
    }
    impl Program for TwoSteps {
        fn step(&mut self, _ctx: &mut UserCtx) -> Step {
            if self.left == 0 {
                return Step::Exit(0);
            }
            self.left -= 1;
            Step::Compute(Dur::from_ms(1))
        }
    }

    #[test]
    fn repeats_the_inner_program() {
        let mut p = Repeat::new(3, || Box::new(TwoSteps { left: 2 }));
        let mut ctx = UserCtx::default();
        let mut computes = 0;
        loop {
            match p.step(&mut ctx) {
                Step::Compute(_) => computes += 1,
                Step::Exit(0) => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(computes, 6);
        assert_eq!(p.runs_done(), 3);
    }

    struct FailFast;
    impl Program for FailFast {
        fn step(&mut self, _ctx: &mut UserCtx) -> Step {
            Step::Exit(1)
        }
    }

    #[test]
    fn inner_failure_stops_the_loop() {
        let mut p = Repeat::new(5, || Box::new(FailFast));
        let mut ctx = UserCtx::default();
        assert_eq!(p.step(&mut ctx), Step::Exit(1));
        assert_eq!(p.runs_done(), 0);
    }
}
