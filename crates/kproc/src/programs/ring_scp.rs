//! `ring_scp`: batched splice copies over a splice ring.
//!
//! Copies `n` source files to `n` destinations. In ring mode (depth ≥ 1)
//! the program opens every descriptor pair up front, creates one ring,
//! and then moves the whole set in waves: up to `depth` submissions per
//! `ring_submit` crossing, one `ring_reap` crossing per wave. In legacy
//! mode (depth 0) it performs the one-at-a-time baseline instead —
//! open/open/splice/close/close per pair, five crossings each — so a
//! bench can compare crossings-per-byte across the two APIs with the
//! same workload.

use crate::program::{Program, Step, UserCtx};
use crate::types::{Fd, OpenFlags, SpliceReq, SyscallReq, SyscallRet};

#[derive(Debug)]
enum St {
    Start,
    // Ring mode.
    OpenSrc(usize),
    OpenDst(usize),
    CreateRing,
    Submit,
    Reap,
    Close(usize),
    // Legacy one-at-a-time mode.
    LOpenSrc(usize),
    LOpenDst(usize),
    LSplice(usize),
    LCloseSrc(usize),
    LCloseDst(usize),
    Done,
    Failed(&'static str),
}

/// Batched splice copier: `n` file pairs through one splice ring.
pub struct RingScp {
    src_prefix: String,
    dst_prefix: String,
    n: usize,
    depth: u32,
    st: St,
    ring: u64,
    src_fds: Vec<Fd>,
    dst_fds: Vec<Fd>,
    submitted: usize,
    reaped: usize,
    wave: u32,
    bytes_copied: u64,
}

impl RingScp {
    /// Copies `{src_prefix}{i}` → `{dst_prefix}{i}` for `i` in `0..n`.
    /// `depth` ≥ 1 selects ring mode with that ring depth; `depth` 0
    /// selects the legacy sequential-splice baseline.
    pub fn new(src_prefix: &str, dst_prefix: &str, n: usize, depth: u32) -> RingScp {
        assert!(n > 0);
        RingScp {
            src_prefix: src_prefix.to_string(),
            dst_prefix: dst_prefix.to_string(),
            n,
            depth,
            st: St::Start,
            ring: 0,
            src_fds: Vec::new(),
            dst_fds: Vec::new(),
            submitted: 0,
            reaped: 0,
            wave: 0,
            bytes_copied: 0,
        }
    }

    /// Bytes reported moved across all completions.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Completed file copies.
    pub fn copies_done(&self) -> usize {
        self.reaped
    }

    /// Why the program failed, if it did (for test diagnostics).
    pub fn failed_reason(&self) -> Option<&'static str> {
        match self.st {
            St::Failed(why) => Some(why),
            _ => None,
        }
    }

    fn fail(&mut self, what: &'static str) -> Step {
        self.st = St::Failed(what);
        Step::Exit(1)
    }

    fn open(&self, src: bool, i: usize) -> Step {
        let (prefix, flags) = if src {
            (&self.src_prefix, OpenFlags::RDONLY)
        } else {
            (&self.dst_prefix, OpenFlags::CREATE)
        };
        Step::Syscall(SyscallReq::Open {
            path: format!("{prefix}{i}"),
            flags,
        })
    }

    /// The next wave of submissions: up to `depth` pairs.
    fn submit_wave(&mut self) -> Step {
        let end = (self.submitted + self.depth as usize).min(self.n);
        let sqes = (self.submitted..end)
            .map(|i| SpliceReq::new(self.src_fds[i], self.dst_fds[i]).sqe(i as u64))
            .collect::<Vec<_>>();
        self.wave = sqes.len() as u32;
        self.st = St::Submit;
        Step::Syscall(SyscallReq::RingSubmit {
            ring: self.ring,
            sqes,
        })
    }
}

impl Program for RingScp {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            St::Start => {
                if self.depth == 0 {
                    self.st = St::LOpenSrc(0);
                    return self.open(true, 0);
                }
                self.st = St::OpenSrc(0);
                self.open(true, 0)
            }

            // ----- ring mode ------------------------------------------------
            St::OpenSrc(i) => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.src_fds.push(fd),
                    _ => return self.fail("open src"),
                }
                self.st = St::OpenDst(i);
                self.open(false, i)
            }
            St::OpenDst(i) => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.dst_fds.push(fd),
                    _ => return self.fail("open dst"),
                }
                if i + 1 < self.n {
                    self.st = St::OpenSrc(i + 1);
                    return self.open(true, i + 1);
                }
                self.st = St::CreateRing;
                Step::Syscall(SyscallReq::RingCreate {
                    depth: self.depth,
                    sigio: false,
                })
            }
            St::CreateRing => {
                match ctx.take_ret() {
                    SyscallRet::Val(id) if id > 0 => self.ring = id as u64,
                    _ => return self.fail("ring create"),
                }
                self.submit_wave()
            }
            St::Submit => {
                match ctx.take_ret() {
                    SyscallRet::Val(accepted) if accepted as u32 == self.wave => {
                        self.submitted += accepted as usize;
                    }
                    _ => return self.fail("ring submit"),
                }
                self.st = St::Reap;
                Step::Syscall(SyscallReq::RingReap {
                    ring: self.ring,
                    min: self.wave,
                })
            }
            St::Reap => {
                match ctx.take_ret() {
                    SyscallRet::Cqes(cqes) => {
                        for cqe in &cqes {
                            if cqe.outcome.error.is_some() {
                                return self.fail("splice error in cqe");
                            }
                            self.bytes_copied += cqe.outcome.bytes_moved;
                        }
                        self.reaped += cqes.len();
                    }
                    _ => return self.fail("ring reap"),
                }
                if self.submitted < self.n {
                    return self.submit_wave();
                }
                self.st = St::Close(0);
                Step::Syscall(SyscallReq::Close(self.src_fds[0]))
            }
            St::Close(i) => {
                ctx.take_ret();
                // Closes interleave src then dst for each pair.
                let next = i + 1;
                if next < 2 * self.n {
                    self.st = St::Close(next);
                    let fd = if next % 2 == 0 {
                        self.src_fds[next / 2]
                    } else {
                        self.dst_fds[next / 2]
                    };
                    return Step::Syscall(SyscallReq::Close(fd));
                }
                self.st = St::Done;
                Step::Exit(0)
            }

            // ----- legacy one-at-a-time mode --------------------------------
            St::LOpenSrc(i) => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.src_fds.push(fd),
                    _ => return self.fail("open src"),
                }
                self.st = St::LOpenDst(i);
                self.open(false, i)
            }
            St::LOpenDst(i) => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.dst_fds.push(fd),
                    _ => return self.fail("open dst"),
                }
                self.st = St::LSplice(i);
                Step::splice(SpliceReq::new(self.src_fds[i], self.dst_fds[i]))
            }
            St::LSplice(i) => {
                match ctx.take_ret() {
                    SyscallRet::Val(n) if n >= 0 => self.bytes_copied += n as u64,
                    _ => return self.fail("splice"),
                }
                self.st = St::LCloseSrc(i);
                Step::Syscall(SyscallReq::Close(self.src_fds[i]))
            }
            St::LCloseSrc(i) => {
                ctx.take_ret();
                self.st = St::LCloseDst(i);
                Step::Syscall(SyscallReq::Close(self.dst_fds[i]))
            }
            St::LCloseDst(i) => {
                ctx.take_ret();
                self.reaped += 1;
                if i + 1 < self.n {
                    self.st = St::LOpenSrc(i + 1);
                    return self.open(true, i + 1);
                }
                self.st = St::Done;
                Step::Exit(0)
            }

            St::Done => Step::Exit(0),
            St::Failed(_) => Step::Exit(1),
        }
    }

    fn name(&self) -> &str {
        "ring_scp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{SpliceCqe, SpliceOutcome};

    #[test]
    fn ring_mode_batches_submissions() {
        let mut p = RingScp::new("/d0/f", "/d1/c", 3, 2);
        let mut ctx = UserCtx::default();
        // Six opens.
        for fd in 3..9 {
            let s = p.step(&mut ctx);
            assert!(matches!(s, Step::Syscall(SyscallReq::Open { .. })));
            ctx.ret = Some(SyscallRet::NewFd(Fd(fd)));
        }
        // Ring create.
        let s = p.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::RingCreate {
                depth: 2,
                sigio: false
            })
        ));
        ctx.ret = Some(SyscallRet::Val(1));
        // First wave: two SQEs.
        let s = p.step(&mut ctx);
        match s {
            Step::Syscall(SyscallReq::RingSubmit { ring: 1, ref sqes }) => {
                assert_eq!(sqes.len(), 2);
                assert_eq!(sqes[0].user_data, 0);
                assert_eq!(sqes[1].user_data, 1);
            }
            other => panic!("expected submit, got {other:?}"),
        }
        ctx.ret = Some(SyscallRet::Val(2));
        let s = p.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::RingReap { ring: 1, min: 2 })
        ));
        let cqe = |ud| SpliceCqe {
            user_data: ud,
            outcome: SpliceOutcome {
                bytes_moved: 100,
                error: None,
            },
        };
        ctx.ret = Some(SyscallRet::Cqes(vec![cqe(0), cqe(1)]));
        // Second wave: the remaining pair.
        let s = p.step(&mut ctx);
        match s {
            Step::Syscall(SyscallReq::RingSubmit { ring: 1, ref sqes }) => {
                assert_eq!(sqes.len(), 1)
            }
            other => panic!("expected submit, got {other:?}"),
        }
        ctx.ret = Some(SyscallRet::Val(1));
        let s = p.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::RingReap { ring: 1, min: 1 })
        ));
        ctx.ret = Some(SyscallRet::Cqes(vec![cqe(2)]));
        // Six closes, then exit.
        for _ in 0..6 {
            let s = p.step(&mut ctx);
            assert!(matches!(s, Step::Syscall(SyscallReq::Close(_))));
            ctx.ret = Some(SyscallRet::Val(0));
        }
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
        assert_eq!(p.bytes_copied(), 300);
        assert_eq!(p.copies_done(), 3);
    }

    #[test]
    fn legacy_mode_is_one_at_a_time() {
        let mut p = RingScp::new("/d0/f", "/d1/c", 2, 0);
        let mut ctx = UserCtx::default();
        for _ in 0..2 {
            let s = p.step(&mut ctx);
            assert!(matches!(s, Step::Syscall(SyscallReq::Open { .. })));
            ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
            let s = p.step(&mut ctx);
            assert!(matches!(s, Step::Syscall(SyscallReq::Open { .. })));
            ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
            let s = p.step(&mut ctx);
            assert!(matches!(s, Step::Syscall(SyscallReq::Splice { .. })));
            ctx.ret = Some(SyscallRet::Val(50));
            let s = p.step(&mut ctx);
            assert!(matches!(s, Step::Syscall(SyscallReq::Close(_))));
            ctx.ret = Some(SyscallRet::Val(0));
            let s = p.step(&mut ctx);
            assert!(matches!(s, Step::Syscall(SyscallReq::Close(_))));
            ctx.ret = Some(SyscallRet::Val(0));
        }
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
        assert_eq!(p.bytes_copied(), 100);
    }
}
