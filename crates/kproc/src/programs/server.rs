//! The million-connection server scenario: an open-loop client fleet
//! fetching one file each from a listening splice server.
//!
//! Three serving modes reproduce the paper's comparison at connection
//! scale: one-at-a-time `splice(2)` per connection (a 1993 `sendfile`),
//! batched submission through a depth-k splice ring (one crossing per
//! wave), and a user-space `cp`-relay baseline (`read` into a user
//! buffer, `send` back out — the double-copy path splice exists to
//! remove).
//!
//! Clients are **open-loop**: each sleeps a pre-drawn offset into the
//! arrival window (interval timer, not CPU burn — a sleeping client
//! must not perturb the availability measurement), then connects, sends
//! a zero-byte request, and receives the file, pattern-checking every
//! datagram. Results aggregate into a [`ScenarioStats`] shared by all
//! clients of a run.

use std::cell::RefCell;
use std::rc::Rc;

use ksim::{Dur, Hist, SimTime};

use crate::program::{Program, Step, UserCtx};
use crate::programs::util::pattern_check;
use crate::types::{Fd, OpenFlags, Sig, SockAddr, SpliceReq, SyscallReq, SyscallRet};

/// Aggregated results of one server scenario run, shared by every
/// client (single-threaded simulation: `Rc<RefCell>` is the idiom the
/// endpoint pairs already use for result sharing).
#[derive(Default)]
pub struct ScenarioStats {
    /// Clients that received their whole file, byte-exact.
    pub completed: u64,
    /// Connections the server finished serving.
    pub served: u64,
    /// Payload bytes pulled off client sockets (counted even when the
    /// datagram then fails the pattern check, so lossy-run byte
    /// accounting stays exact).
    pub bytes_received: u64,
    /// Clients that saw a pattern mismatch (a bug on a loss-free link;
    /// an expected truncation artifact when the link drops datagrams).
    pub mismatches: u64,
    /// Request→last-byte response latency, nanoseconds.
    pub latency: Hist,
}

/// Shared handle to a run's [`ScenarioStats`].
pub type SharedScenario = Rc<RefCell<ScenarioStats>>;

/// A fresh stats block for one scenario run.
pub fn scenario_stats() -> SharedScenario {
    Rc::new(RefCell::new(ScenarioStats::default()))
}

/// splitmix64, for the arrival draw (same generator as the link model).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws `n` client arrival offsets uniformly over `window`, from
/// `seed`. Deterministic and ≥ 1 µs each (a zero interval would disarm
/// the arrival timer instead of arming it).
pub fn open_loop_delays(n: usize, window: Dur, seed: u64) -> Vec<Dur> {
    let span = window.as_ns().max(1);
    (0..n as u64)
        .map(|i| {
            let draw = splitmix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Dur::from_ns((draw % span).max(1_000))
        })
        .collect()
}

/// One short-lived client: sleep to its arrival offset, connect, send a
/// zero-byte request, receive `file_bytes` of pattern `seed`, verify,
/// close, exit. Exit code 0 on byte-exact delivery, 1 on mismatch.
pub struct ServerClient {
    server: SockAddr,
    file_bytes: u64,
    seed: u64,
    delay: Dur,
    stats: SharedScenario,
    st: u32,
    fd: Option<Fd>,
    got: u64,
    start: SimTime,
}

impl ServerClient {
    /// Builds a client arriving `delay` after spawn.
    pub fn new(
        server: SockAddr,
        file_bytes: u64,
        seed: u64,
        delay: Dur,
        stats: SharedScenario,
    ) -> ServerClient {
        ServerClient {
            server,
            file_bytes,
            seed,
            delay: if delay.is_zero() {
                Dur::from_us(1)
            } else {
                delay
            },
            stats,
            st: 0,
            fd: None,
            got: 0,
            start: SimTime::ZERO,
        }
    }
}

impl Program for ServerClient {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            // Arrival sleep: catch SIGALRM, arm the timer, pause, disarm.
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Sigaction {
                    sig: Sig::Alrm,
                    catch: true,
                })
            }
            1 => {
                ctx.take_ret();
                self.st = 2;
                Step::Syscall(SyscallReq::SetItimer {
                    interval: self.delay,
                })
            }
            2 => {
                ctx.take_ret();
                self.st = 3;
                Step::Syscall(SyscallReq::Pause)
            }
            3 => {
                ctx.take_ret();
                self.st = 4;
                Step::Syscall(SyscallReq::SetItimer {
                    interval: Dur::ZERO,
                })
            }
            4 => {
                ctx.take_ret();
                self.st = 5;
                Step::Syscall(SyscallReq::Socket)
            }
            5 => {
                self.fd = ctx.take_ret().as_fd();
                self.st = 6;
                Step::Syscall(SyscallReq::Connect {
                    fd: self.fd.unwrap(),
                    addr: self.server,
                })
            }
            6 => {
                ctx.take_ret();
                self.start = ctx.now;
                self.st = 7;
                Step::Syscall(SyscallReq::Send {
                    fd: self.fd.unwrap(),
                    data: Vec::new(),
                })
            }
            7 => {
                ctx.take_ret();
                self.st = 8;
                Step::Syscall(SyscallReq::Recv {
                    fd: self.fd.unwrap(),
                    max_len: 64 * 1024,
                })
            }
            8 => {
                let SyscallRet::Data(d) = ctx.take_ret() else {
                    return Step::Exit(2);
                };
                // Every pulled byte counts, even on a mismatch — the
                // scenario invariants account delivered bytes exactly.
                self.stats.borrow_mut().bytes_received += d.len() as u64;
                if pattern_check(self.seed, self.got, &d).is_some() {
                    self.stats.borrow_mut().mismatches += 1;
                    return Step::Exit(1);
                }
                self.got += d.len() as u64;
                if self.got >= self.file_bytes {
                    let mut s = self.stats.borrow_mut();
                    s.completed += 1;
                    s.latency.record(ctx.now.since(self.start).as_ns());
                    self.st = 9;
                    return Step::Syscall(SyscallReq::Close(self.fd.unwrap()));
                }
                Step::Syscall(SyscallReq::Recv {
                    fd: self.fd.unwrap(),
                    max_len: 64 * 1024,
                })
            }
            9 => {
                ctx.take_ret();
                Step::Exit(0)
            }
            _ => unreachable!("client state {}", self.st),
        }
    }
}

/// How the server moves file bytes onto each connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServeMode {
    /// One synchronous `splice(2)` per connection.
    Splice,
    /// Batched: waves of up to `depth` accepted connections submitted
    /// through one splice ring (one submit + one reap crossing per
    /// wave).
    Ring {
        /// Ring depth (also the wave size and file-descriptor pool).
        depth: u32,
    },
    /// User-space baseline: `read` 8 KB into a user buffer, `send` it —
    /// two copies per block.
    CpRelay,
}

/// Chunk the cp-relay baseline reads and sends.
const RELAY_CHUNK: usize = 8 * 1024;

/// The file server: listen, then serve exactly `n_conns` connections
/// with `file_bytes` of `path` each, via the configured [`ServeMode`].
/// Exit code 0 when all connections served; 2 on an unexpected syscall
/// failure.
pub struct SpliceServer {
    port: u16,
    path: String,
    file_bytes: u64,
    n_conns: usize,
    backlog: u32,
    mode: ServeMode,
    /// Optional pause between `listen` and the first `accept` (lets the
    /// backlog-overflow scenario pile clients onto the backlog).
    warmup: Option<Dur>,
    stats: SharedScenario,
    st: u32,
    lfd: Option<Fd>,
    ffd: Option<Fd>,
    ring: u64,
    file_fds: Vec<Fd>,
    conn_fds: Vec<Fd>,
    conn: Option<Fd>,
    served: usize,
    wave: usize,
    i: usize,
    sent: u64,
}

impl SpliceServer {
    /// Builds a server for `n_conns` connections on `port`.
    pub fn new(
        port: u16,
        path: &str,
        file_bytes: u64,
        n_conns: usize,
        backlog: u32,
        mode: ServeMode,
        stats: SharedScenario,
    ) -> SpliceServer {
        SpliceServer {
            port,
            path: path.to_string(),
            file_bytes,
            n_conns,
            backlog,
            mode,
            warmup: None,
            stats,
            st: 0,
            lfd: None,
            ffd: None,
            ring: 0,
            file_fds: Vec::new(),
            conn_fds: Vec::new(),
            conn: None,
            served: 0,
            wave: 0,
            i: 0,
            sent: 0,
        }
    }

    /// Delays the first `accept` by `d` after `listen`.
    pub fn warmup(mut self, d: Dur) -> SpliceServer {
        self.warmup = Some(d);
        self
    }

    /// First syscall of the mode-specific open phase.
    fn open_phase(&mut self) -> Step {
        match self.mode {
            ServeMode::Splice | ServeMode::CpRelay => {
                self.st = 10;
                Step::Syscall(SyscallReq::Open {
                    path: self.path.clone(),
                    flags: OpenFlags::RDONLY,
                })
            }
            ServeMode::Ring { depth } => {
                self.st = 30;
                Step::Syscall(SyscallReq::RingCreate {
                    depth,
                    sigio: false,
                })
            }
        }
    }

    /// One connection finished: count it, then accept the next or wind
    /// down.
    fn conn_done(&mut self) -> Step {
        self.served += 1;
        self.stats.borrow_mut().served += 1;
        if self.served < self.n_conns {
            self.st = 11;
            Step::Syscall(SyscallReq::Accept {
                fd: self.lfd.unwrap(),
            })
        } else {
            self.st = 15;
            Step::Syscall(SyscallReq::Close(self.lfd.unwrap()))
        }
    }

    /// Starts a ring wave: accept up to `depth` connections.
    fn start_wave(&mut self) -> Step {
        let ServeMode::Ring { depth } = self.mode else {
            unreachable!()
        };
        self.wave = (depth as usize).min(self.n_conns - self.served);
        self.conn_fds.clear();
        self.st = 33;
        Step::Syscall(SyscallReq::Accept {
            fd: self.lfd.unwrap(),
        })
    }
}

impl Program for SpliceServer {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Socket)
            }
            1 => {
                self.lfd = ctx.take_ret().as_fd();
                self.st = 2;
                Step::Syscall(SyscallReq::Bind {
                    fd: self.lfd.unwrap(),
                    port: self.port,
                })
            }
            2 => {
                ctx.take_ret();
                self.st = 3;
                Step::Syscall(SyscallReq::Listen {
                    fd: self.lfd.unwrap(),
                    backlog: self.backlog,
                })
            }
            3 => {
                if ctx.take_ret() != SyscallRet::Val(0) {
                    return Step::Exit(2);
                }
                if self.warmup.is_some() {
                    self.st = 4;
                    Step::Syscall(SyscallReq::Sigaction {
                        sig: Sig::Alrm,
                        catch: true,
                    })
                } else {
                    self.open_phase()
                }
            }
            4 => {
                ctx.take_ret();
                self.st = 5;
                Step::Syscall(SyscallReq::SetItimer {
                    interval: self.warmup.unwrap(),
                })
            }
            5 => {
                ctx.take_ret();
                self.st = 6;
                Step::Syscall(SyscallReq::Pause)
            }
            6 => {
                ctx.take_ret();
                self.st = 7;
                Step::Syscall(SyscallReq::SetItimer {
                    interval: Dur::ZERO,
                })
            }
            7 => {
                ctx.take_ret();
                self.open_phase()
            }

            // ---- splice / cp-relay: one connection at a time ----------
            10 => {
                self.ffd = ctx.take_ret().as_fd();
                if self.n_conns == 0 {
                    self.st = 15;
                    return Step::Syscall(SyscallReq::Close(self.lfd.unwrap()));
                }
                self.st = 11;
                Step::Syscall(SyscallReq::Accept {
                    fd: self.lfd.unwrap(),
                })
            }
            11 => {
                self.conn = ctx.take_ret().as_fd();
                if self.conn.is_none() {
                    return Step::Exit(2);
                }
                // The file fd is reused: rewind it for this connection.
                self.st = if self.mode == ServeMode::Splice {
                    12
                } else {
                    20
                };
                Step::Syscall(SyscallReq::Lseek {
                    fd: self.ffd.unwrap(),
                    pos: 0,
                })
            }
            12 => {
                ctx.take_ret();
                self.st = 13;
                Step::Syscall(
                    SpliceReq::new(self.ffd.unwrap(), self.conn.unwrap())
                        .bytes(self.file_bytes)
                        .req(),
                )
            }
            13 => {
                if ctx.take_ret() != SyscallRet::Val(self.file_bytes as i64) {
                    return Step::Exit(2);
                }
                self.st = 14;
                Step::Syscall(SyscallReq::Close(self.conn.unwrap()))
            }
            14 => {
                ctx.take_ret();
                self.conn_done()
            }
            15 => {
                ctx.take_ret();
                Step::Exit(0)
            }

            // ---- cp-relay inner loop ----------------------------------
            20 => {
                ctx.take_ret();
                self.sent = 0;
                self.st = 21;
                Step::Syscall(SyscallReq::Read {
                    fd: self.ffd.unwrap(),
                    len: RELAY_CHUNK,
                })
            }
            21 => {
                let SyscallRet::Data(d) = ctx.take_ret() else {
                    return Step::Exit(2);
                };
                if d.is_empty() {
                    // EOF before file_bytes: short file, still a served
                    // connection.
                    self.st = 14;
                    return Step::Syscall(SyscallReq::Close(self.conn.unwrap()));
                }
                self.sent += d.len() as u64;
                self.st = 22;
                Step::Syscall(SyscallReq::Send {
                    fd: self.conn.unwrap(),
                    data: d,
                })
            }
            22 => {
                ctx.take_ret();
                if self.sent >= self.file_bytes {
                    self.st = 14;
                    Step::Syscall(SyscallReq::Close(self.conn.unwrap()))
                } else {
                    self.st = 21;
                    Step::Syscall(SyscallReq::Read {
                        fd: self.ffd.unwrap(),
                        len: RELAY_CHUNK,
                    })
                }
            }

            // ---- ring mode: waves of depth connections ----------------
            30 => {
                let ret = ctx.take_ret();
                if ret.as_val() < 0 {
                    return Step::Exit(2);
                }
                self.ring = ret.as_val() as u64;
                // One source fd per in-flight splice: concurrent splices
                // advance their descriptor offsets independently.
                let ServeMode::Ring { depth } = self.mode else {
                    unreachable!()
                };
                let nfds = (depth as usize).min(self.n_conns.max(1));
                self.file_fds.clear();
                self.i = nfds;
                self.st = 31;
                Step::Syscall(SyscallReq::Open {
                    path: self.path.clone(),
                    flags: OpenFlags::RDONLY,
                })
            }
            31 => {
                self.file_fds.push(ctx.take_ret().as_fd().unwrap());
                if self.file_fds.len() < self.i {
                    return Step::Syscall(SyscallReq::Open {
                        path: self.path.clone(),
                        flags: OpenFlags::RDONLY,
                    });
                }
                if self.n_conns == 0 {
                    self.st = 15;
                    return Step::Syscall(SyscallReq::Close(self.lfd.unwrap()));
                }
                self.start_wave()
            }
            33 => {
                let fd = ctx.take_ret().as_fd();
                let Some(fd) = fd else {
                    return Step::Exit(2);
                };
                self.conn_fds.push(fd);
                if self.conn_fds.len() < self.wave {
                    return Step::Syscall(SyscallReq::Accept {
                        fd: self.lfd.unwrap(),
                    });
                }
                self.i = 0;
                self.st = 34;
                Step::Syscall(SyscallReq::Lseek {
                    fd: self.file_fds[0],
                    pos: 0,
                })
            }
            34 => {
                ctx.take_ret();
                self.i += 1;
                if self.i < self.wave {
                    return Step::Syscall(SyscallReq::Lseek {
                        fd: self.file_fds[self.i],
                        pos: 0,
                    });
                }
                let sqes = (0..self.wave)
                    .map(|j| {
                        SpliceReq::new(self.file_fds[j], self.conn_fds[j])
                            .bytes(self.file_bytes)
                            .sqe(j as u64)
                    })
                    .collect();
                self.st = 35;
                Step::Syscall(SyscallReq::RingSubmit {
                    ring: self.ring,
                    sqes,
                })
            }
            35 => {
                if ctx.take_ret().as_val() != self.wave as i64 {
                    return Step::Exit(2);
                }
                self.st = 36;
                Step::Syscall(SyscallReq::RingReap {
                    ring: self.ring,
                    min: self.wave as u32,
                })
            }
            36 => {
                let SyscallRet::Cqes(cqes) = ctx.take_ret() else {
                    return Step::Exit(2);
                };
                if cqes.len() != self.wave
                    || cqes.iter().any(|c| {
                        c.outcome.error.is_some() || c.outcome.bytes_moved != self.file_bytes
                    })
                {
                    return Step::Exit(2);
                }
                self.i = 0;
                self.st = 37;
                Step::Syscall(SyscallReq::Close(self.conn_fds[0]))
            }
            37 => {
                ctx.take_ret();
                self.served += 1;
                self.stats.borrow_mut().served += 1;
                self.i += 1;
                if self.i < self.wave {
                    return Step::Syscall(SyscallReq::Close(self.conn_fds[self.i]));
                }
                if self.served < self.n_conns {
                    self.start_wave()
                } else {
                    self.st = 15;
                    Step::Syscall(SyscallReq::Close(self.lfd.unwrap()))
                }
            }
            _ => unreachable!("server state {}", self.st),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(ret: SyscallRet) -> UserCtx {
        UserCtx {
            ret: Some(ret),
            signals: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn delays_are_deterministic_positive_and_bounded() {
        let w = Dur::from_ms(100);
        let a = open_loop_delays(1000, w, 7);
        let b = open_loop_delays(1000, w, 7);
        assert_eq!(a, b);
        assert_ne!(a, open_loop_delays(1000, w, 8));
        assert!(a.iter().all(|d| !d.is_zero() && *d <= w));
        // Spread: not all in one half of the window.
        let half = a.iter().filter(|d| d.as_ns() < w.as_ns() / 2).count();
        assert!(half > 250 && half < 750, "poorly spread: {half}/1000");
    }

    #[test]
    fn client_walks_sleep_connect_fetch() {
        let stats = scenario_stats();
        let addr = SockAddr { host: 1, port: 80 };
        let mut c = ServerClient::new(addr, 16, 3, Dur::from_ms(5), Rc::clone(&stats));
        let mut ctx = UserCtx {
            ret: None,
            signals: Vec::new(),
            now: SimTime::ZERO,
        };
        // Sigaction → SetItimer → Pause → SetItimer(0) → Socket.
        assert!(matches!(
            c.step(&mut ctx),
            Step::Syscall(SyscallReq::Sigaction { sig: Sig::Alrm, .. })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            c.step(&mut ctx),
            Step::Syscall(SyscallReq::SetItimer { interval }) if interval == Dur::from_ms(5)
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(c.step(&mut ctx), Step::Syscall(SyscallReq::Pause)));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            c.step(&mut ctx),
            Step::Syscall(SyscallReq::SetItimer { interval }) if interval.is_zero()
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            c.step(&mut ctx),
            Step::Syscall(SyscallReq::Socket)
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        assert!(matches!(
            c.step(&mut ctx),
            Step::Syscall(SyscallReq::Connect { fd: Fd(3), .. })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        let send = c.step(&mut ctx);
        let Step::Syscall(SyscallReq::Send { data, .. }) = send else {
            panic!("expected zero-byte request, got {send:?}")
        };
        assert!(data.is_empty());
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            c.step(&mut ctx),
            Step::Syscall(SyscallReq::Recv { .. })
        ));
        // Two pattern datagrams of 8 bytes each complete the 16-byte file.
        use crate::programs::util::pattern_bytes;
        ctx.ret = Some(SyscallRet::Data(pattern_bytes(3, 0, 8)));
        assert!(matches!(
            c.step(&mut ctx),
            Step::Syscall(SyscallReq::Recv { .. })
        ));
        ctx.ret = Some(SyscallRet::Data(pattern_bytes(3, 8, 8)));
        assert!(matches!(
            c.step(&mut ctx),
            Step::Syscall(SyscallReq::Close(Fd(3)))
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(c.step(&mut ctx), Step::Exit(0)));
        let s = stats.borrow();
        assert_eq!(s.completed, 1);
        assert_eq!(s.bytes_received, 16);
        assert_eq!(s.latency.count(), 1);
        assert_eq!(s.mismatches, 0);
    }

    #[test]
    fn client_flags_corruption() {
        let stats = scenario_stats();
        let addr = SockAddr { host: 1, port: 80 };
        let mut c = ServerClient::new(addr, 8, 3, Dur::from_us(1), Rc::clone(&stats));
        // Fast-forward to the recv state.
        let mut ctx = UserCtx {
            ret: None,
            signals: Vec::new(),
            now: SimTime::ZERO,
        };
        c.step(&mut ctx); // Sigaction
        for ret in [
            SyscallRet::Val(0), // SetItimer
            SyscallRet::Val(0), // Pause
            SyscallRet::Val(0), // SetItimer 0
            SyscallRet::Val(0), // Socket (next takes fd)
        ] {
            ctx.ret = Some(ret);
            c.step(&mut ctx);
        }
        ctx.ret = Some(SyscallRet::NewFd(Fd(3))); // → Connect
        c.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Val(0)); // → Send
        c.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Val(0)); // → Recv
        c.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Data(vec![0xFF; 8]));
        assert!(matches!(c.step(&mut ctx), Step::Exit(1)));
        assert_eq!(stats.borrow().mismatches, 1);
    }

    #[test]
    fn server_listens_then_serves_one_splice_conn() {
        let stats = scenario_stats();
        let mut s = SpliceServer::new(
            80,
            "/d0/f",
            8192,
            1,
            8,
            ServeMode::Splice,
            Rc::clone(&stats),
        );
        let mut ctx = UserCtx {
            ret: None,
            signals: Vec::new(),
            now: SimTime::ZERO,
        };
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Socket)
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Bind {
                fd: Fd(3),
                port: 80
            })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Listen {
                fd: Fd(3),
                backlog: 8
            })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Open { .. })
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Accept { fd: Fd(3) })
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(5)));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Lseek { fd: Fd(4), pos: 0 })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        let sp = s.step(&mut ctx);
        assert!(
            matches!(
                sp,
                Step::Syscall(SyscallReq::Splice { req })
                    if req.src == Fd(4) && req.dst == Fd(5)
            ),
            "got {sp:?}"
        );
        ctx.ret = Some(SyscallRet::Val(8192));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Close(Fd(5)))
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        // Last connection served: close the listener, exit clean.
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Close(Fd(3)))
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(s.step(&mut ctx), Step::Exit(0)));
        assert_eq!(stats.borrow().served, 1);
    }

    #[test]
    fn ring_server_submits_waves() {
        let stats = scenario_stats();
        let mut s = SpliceServer::new(
            80,
            "/d0/f",
            8192,
            2,
            8,
            ServeMode::Ring { depth: 2 },
            Rc::clone(&stats),
        );
        let mut ctx = ctx_with(SyscallRet::Val(0));
        ctx.ret = None;
        s.step(&mut ctx); // Socket
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        s.step(&mut ctx); // Bind
        ctx.ret = Some(SyscallRet::Val(0));
        s.step(&mut ctx); // Listen
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::RingCreate { depth: 2, .. })
        ));
        ctx.ret = Some(SyscallRet::Val(9)); // ring id
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Open { .. })
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Open { .. })
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(5)));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Accept { .. })
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(6)));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Accept { .. })
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(7)));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Lseek { fd: Fd(4), .. })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Lseek { fd: Fd(5), .. })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        let submit = s.step(&mut ctx);
        let Step::Syscall(SyscallReq::RingSubmit { ring: 9, sqes }) = submit else {
            panic!("expected submit, got {submit:?}")
        };
        assert_eq!(sqes.len(), 2);
        assert_eq!(sqes[0].req.src, Fd(4));
        assert_eq!(sqes[0].req.dst, Fd(6));
        ctx.ret = Some(SyscallRet::Val(2));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::RingReap { ring: 9, min: 2 })
        ));
        use crate::types::{SpliceCqe, SpliceOutcome};
        let cqe = |ud| SpliceCqe {
            user_data: ud,
            outcome: SpliceOutcome {
                bytes_moved: 8192,
                error: None,
            },
        };
        ctx.ret = Some(SyscallRet::Cqes(vec![cqe(0), cqe(1)]));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Close(Fd(6)))
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Close(Fd(7)))
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        // Both served: listener close, then exit.
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Close(Fd(3)))
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(s.step(&mut ctx), Step::Exit(0)));
        assert_eq!(stats.borrow().served, 2);
    }

    #[test]
    fn cp_relay_reads_then_sends() {
        let stats = scenario_stats();
        let mut s = SpliceServer::new(
            80,
            "/d0/f",
            16384,
            1,
            4,
            ServeMode::CpRelay,
            Rc::clone(&stats),
        );
        let mut ctx = ctx_with(SyscallRet::Val(0));
        ctx.ret = None;
        s.step(&mut ctx); // Socket
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        s.step(&mut ctx); // Bind
        ctx.ret = Some(SyscallRet::Val(0));
        s.step(&mut ctx); // Listen
        ctx.ret = Some(SyscallRet::Val(0));
        s.step(&mut ctx); // Open
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        s.step(&mut ctx); // Accept
        ctx.ret = Some(SyscallRet::NewFd(Fd(5)));
        s.step(&mut ctx); // Lseek
        ctx.ret = Some(SyscallRet::Val(0));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Read {
                fd: Fd(4),
                len: RELAY_CHUNK
            })
        ));
        ctx.ret = Some(SyscallRet::Data(vec![1; RELAY_CHUNK]));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Send { fd: Fd(5), .. })
        ));
        ctx.ret = Some(SyscallRet::Val(RELAY_CHUNK as i64));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Read { .. })
        ));
        ctx.ret = Some(SyscallRet::Data(vec![1; RELAY_CHUNK]));
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Send { .. })
        ));
        ctx.ret = Some(SyscallRet::Val(RELAY_CHUNK as i64));
        // 16384 bytes moved: close the connection.
        assert!(matches!(
            s.step(&mut ctx),
            Step::Syscall(SyscallReq::Close(Fd(5)))
        ));
    }
}
