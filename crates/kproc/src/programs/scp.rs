//! `scp`: the splice-based copy program (the SCP environment, §6.1).
//!
//! Opens source and destination, then moves the whole file with a single
//! `splice(src, dst, SPLICE_EOF)`. Two completion disciplines exist, per
//! §3: a *synchronous* splice blocks the caller until EOF; with `FASYNC`
//! set on a descriptor the call returns immediately and completion is
//! announced with `SIGIO`, which the program waits for in `pause()`.

use crate::program::{Program, Step, UserCtx};
use crate::types::{FcntlCmd, Fd, OpenFlags, Sig, SpliceReq, SyscallReq, SyscallRet};

/// How `scp` waits for the transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScpMode {
    /// Synchronous splice: the process sleeps inside the system call.
    Sync,
    /// `FASYNC` + `SIGIO`: the call returns immediately; the process
    /// pauses until the completion signal (the paper's headline mode).
    Async,
}

#[derive(Debug)]
enum St {
    Start,
    OpenSrc,
    OpenDst,
    Sigaction,
    Fcntl,
    Splice,
    Pause,
    CloseSrc,
    CloseDst,
    Done,
    Failed(&'static str),
}

/// The splice copy program.
pub struct Scp {
    src: String,
    dst: String,
    mode: ScpMode,
    repeat: u32,
    st: St,
    src_fd: Option<Fd>,
    dst_fd: Option<Fd>,
    copies_done: u32,
    bytes_copied: u64,
}

impl Scp {
    /// A single asynchronous splice copy (the paper's configuration).
    pub fn new(src: &str, dst: &str) -> Scp {
        Scp::with_options(src, dst, ScpMode::Async, 1)
    }

    /// Full control of mode and repetition.
    pub fn with_options(src: &str, dst: &str, mode: ScpMode, repeat: u32) -> Scp {
        assert!(repeat > 0);
        Scp {
            src: src.to_string(),
            dst: dst.to_string(),
            mode,
            repeat,
            st: St::Start,
            src_fd: None,
            dst_fd: None,
            copies_done: 0,
            bytes_copied: 0,
        }
    }

    /// Bytes reported moved across completed copies.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Completed copy passes.
    pub fn copies_done(&self) -> u32 {
        self.copies_done
    }

    /// Why the program failed, if it did (for test diagnostics).
    pub fn failed_reason(&self) -> Option<&'static str> {
        match self.st {
            St::Failed(why) => Some(why),
            _ => None,
        }
    }

    fn fail(&mut self, what: &'static str) -> Step {
        self.st = St::Failed(what);
        Step::Exit(1)
    }
}

impl Program for Scp {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            St::Start => {
                self.st = St::OpenSrc;
                Step::Syscall(SyscallReq::Open {
                    path: self.src.clone(),
                    flags: OpenFlags::RDONLY,
                })
            }
            St::OpenSrc => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.src_fd = Some(fd),
                    _ => return self.fail("open src"),
                }
                self.st = St::OpenDst;
                Step::Syscall(SyscallReq::Open {
                    path: self.dst.clone(),
                    flags: OpenFlags::CREATE,
                })
            }
            St::OpenDst => {
                match ctx.take_ret() {
                    SyscallRet::NewFd(fd) => self.dst_fd = Some(fd),
                    _ => return self.fail("open dst"),
                }
                match self.mode {
                    ScpMode::Sync => {
                        self.st = St::Splice;
                        Step::splice(SpliceReq::new(self.src_fd.unwrap(), self.dst_fd.unwrap()))
                    }
                    ScpMode::Async => {
                        self.st = St::Sigaction;
                        Step::Syscall(SyscallReq::Sigaction {
                            sig: Sig::Io,
                            catch: true,
                        })
                    }
                }
            }
            St::Sigaction => {
                ctx.take_ret();
                self.st = St::Fcntl;
                Step::Syscall(SyscallReq::Fcntl {
                    fd: self.src_fd.unwrap(),
                    cmd: FcntlCmd::SetAsync(true),
                })
            }
            St::Fcntl => {
                ctx.take_ret();
                self.st = St::Splice;
                Step::splice(SpliceReq::new(self.src_fd.unwrap(), self.dst_fd.unwrap()))
            }
            St::Splice => match ctx.take_ret() {
                SyscallRet::Val(n) if n >= 0 => match self.mode {
                    ScpMode::Sync => {
                        self.bytes_copied += n as u64;
                        self.st = St::CloseSrc;
                        Step::Syscall(SyscallReq::Close(self.src_fd.take().unwrap()))
                    }
                    ScpMode::Async => {
                        // Async splice returns immediately; wait for SIGIO.
                        if ctx.got_signal(Sig::Io) {
                            // Completion raced ahead of us.
                            self.st = St::CloseSrc;
                            return Step::Syscall(SyscallReq::Close(self.src_fd.take().unwrap()));
                        }
                        self.st = St::Pause;
                        Step::Syscall(SyscallReq::Pause)
                    }
                },
                _ => self.fail("splice"),
            },
            St::Pause => {
                ctx.take_ret();
                if !ctx.got_signal(Sig::Io) {
                    // Some other signal woke us; pause again.
                    return Step::Syscall(SyscallReq::Pause);
                }
                self.st = St::CloseSrc;
                Step::Syscall(SyscallReq::Close(self.src_fd.take().unwrap()))
            }
            St::CloseSrc => {
                ctx.take_ret();
                self.st = St::CloseDst;
                Step::Syscall(SyscallReq::Close(self.dst_fd.take().unwrap()))
            }
            St::CloseDst => {
                ctx.take_ret();
                self.copies_done += 1;
                if self.copies_done < self.repeat {
                    self.st = St::Start;
                    self.step(ctx)
                } else {
                    self.st = St::Done;
                    Step::Exit(0)
                }
            }
            St::Done => Step::Exit(0),
            St::Failed(_) => Step::Exit(1),
        }
    }

    fn name(&self) -> &str {
        "scp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SpliceLen;

    #[test]
    fn sync_mode_single_splice() {
        let mut scp = Scp::with_options("/s", "/d", ScpMode::Sync, 1);
        let mut ctx = UserCtx::default();
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        let s = scp.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::Splice {
                req: SpliceReq {
                    src: Fd(3),
                    dst: Fd(4),
                    len: SpliceLen::Eof,
                    ..
                }
            })
        ));
        ctx.ret = Some(SyscallRet::Val(8 << 20));
        let s = scp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Close(Fd(3)))));
        ctx.ret = Some(SyscallRet::Val(0));
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Val(0));
        assert_eq!(scp.step(&mut ctx), Step::Exit(0));
        assert_eq!(scp.bytes_copied(), 8 << 20);
    }

    #[test]
    fn async_mode_sets_fasync_and_pauses() {
        let mut scp = Scp::new("/s", "/d");
        let mut ctx = UserCtx::default();
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        let s = scp.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::Sigaction {
                sig: Sig::Io,
                catch: true
            })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        let s = scp.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::Fcntl {
                fd: Fd(3),
                cmd: FcntlCmd::SetAsync(true)
            })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        let s = scp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Splice { .. })));
        // Returns immediately (0), program pauses.
        ctx.ret = Some(SyscallRet::Val(0));
        let s = scp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Pause)));
        // SIGIO arrives: pause returns, program closes down.
        ctx.ret = Some(SyscallRet::Val(0));
        ctx.signals = vec![Sig::Io];
        let s = scp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Close(_))));
    }

    #[test]
    fn spurious_wakeup_pauses_again() {
        let mut scp = Scp::new("/s", "/d");
        let mut ctx = UserCtx::default();
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Val(0));
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Val(0));
        scp.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Val(0));
        scp.step(&mut ctx); // pause
                            // Woken by SIGALRM instead of SIGIO.
        ctx.ret = Some(SyscallRet::Val(0));
        ctx.signals = vec![Sig::Alrm];
        let s = scp.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Pause)));
    }
}
