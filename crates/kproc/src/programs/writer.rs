//! A file writer: creates a file through the normal `write(2)` path.
//!
//! Exercises block allocation, copyin, and delayed writes — used by tests
//! and by harnesses that want the source file produced "the hard way"
//! rather than with the setup-only direct store access.

use crate::program::{Program, Step, UserCtx};
use crate::programs::util::pattern_bytes;
use crate::types::{Fd, OpenFlags, SyscallReq, SyscallRet};

/// Writes `total` pattern bytes to `path` in `chunk`-byte writes, then
/// fsyncs and closes.
pub struct Writer {
    path: String,
    total: u64,
    chunk: usize,
    seed: u64,
    st: u32,
    fd: Option<Fd>,
    written: u64,
}

impl Writer {
    /// A pattern writer.
    pub fn new(path: &str, total: u64, chunk: usize, seed: u64) -> Writer {
        assert!(chunk > 0);
        Writer {
            path: path.to_string(),
            total,
            chunk,
            seed,
            st: 0,
            fd: None,
            written: 0,
        }
    }

    /// Bytes written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl Program for Writer {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Open {
                    path: self.path.clone(),
                    flags: OpenFlags::CREATE,
                })
            }
            1 => {
                self.fd = ctx.take_ret().as_fd();
                if self.fd.is_none() {
                    return Step::Exit(1);
                }
                self.st = 2;
                self.step(ctx)
            }
            2 => {
                if self.written >= self.total {
                    self.st = 3;
                    return Step::Syscall(SyscallReq::Fsync(self.fd.unwrap()));
                }
                let n = self.chunk.min((self.total - self.written) as usize);
                let data = pattern_bytes(self.seed, self.written, n);
                self.st = 4;
                Step::Syscall(SyscallReq::Write {
                    fd: self.fd.unwrap(),
                    data,
                })
            }
            4 => {
                match ctx.take_ret() {
                    SyscallRet::Val(n) if n > 0 => self.written += n as u64,
                    _ => return Step::Exit(1),
                }
                self.st = 2;
                self.step(ctx)
            }
            3 => {
                ctx.take_ret();
                self.st = 5;
                Step::Syscall(SyscallReq::Close(self.fd.take().unwrap()))
            }
            5 => {
                ctx.take_ret();
                Step::Exit(0)
            }
            _ => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "writer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_in_chunks_then_fsyncs() {
        let mut w = Writer::new("/f", 10_000, 4096, 1);
        let mut ctx = UserCtx::default();
        w.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        // 4096 + 4096 + 1808.
        let s = w.step(&mut ctx);
        let Step::Syscall(SyscallReq::Write { data, .. }) = s else {
            panic!()
        };
        assert_eq!(data.len(), 4096);
        ctx.ret = Some(SyscallRet::Val(4096));
        let s = w.step(&mut ctx);
        let Step::Syscall(SyscallReq::Write { data, .. }) = s else {
            panic!()
        };
        assert_eq!(data.len(), 4096);
        ctx.ret = Some(SyscallRet::Val(4096));
        let s = w.step(&mut ctx);
        let Step::Syscall(SyscallReq::Write { data, .. }) = s else {
            panic!()
        };
        assert_eq!(data.len(), 1808);
        ctx.ret = Some(SyscallRet::Val(1808));
        let s = w.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Fsync(_))));
        ctx.ret = Some(SyscallRet::Val(0));
        let s = w.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Close(_))));
        ctx.ret = Some(SyscallRet::Val(0));
        assert_eq!(w.step(&mut ctx), Step::Exit(0));
        assert_eq!(w.written(), 10_000);
    }

    #[test]
    fn pattern_is_position_correct() {
        let mut w = Writer::new("/f", 8192, 4096, 9);
        let mut ctx = UserCtx::default();
        w.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        let Step::Syscall(SyscallReq::Write { data: d1, .. }) = w.step(&mut ctx) else {
            panic!()
        };
        ctx.ret = Some(SyscallRet::Val(4096));
        let Step::Syscall(SyscallReq::Write { data: d2, .. }) = w.step(&mut ctx) else {
            panic!()
        };
        assert_eq!(d1, pattern_bytes(9, 0, 4096));
        assert_eq!(d2, pattern_bytes(9, 4096, 4096));
    }
}
