//! The CPU-availability test program (§6.2).
//!
//! "Baseline performance indices are obtained by executing the test
//! program in the IDLE environment and noting how long a fixed set of
//! operations take to complete." The program performs `ops` operations of
//! `op_cost` user CPU each and exits; the harness compares wall-clock
//! completion times across environments.

use ksim::Dur;

use crate::program::{Program, Step, UserCtx};

/// A fixed amount of pure user-mode computation.
pub struct CpuBound {
    op_cost: Dur,
    ops_total: u64,
    ops_done: u64,
}

impl CpuBound {
    /// `ops` operations of `op_cost` each.
    pub fn new(ops: u64, op_cost: Dur) -> CpuBound {
        CpuBound {
            op_cost,
            ops_total: ops,
            ops_done: 0,
        }
    }

    /// Convenience: a workload of `total` CPU time in 1 ms operations.
    pub fn with_total(total: Dur) -> CpuBound {
        let op = Dur::from_ms(1);
        CpuBound::new(total.as_ns().div_ceil(op.as_ns()), op)
    }

    /// Operations completed so far.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// The total user CPU the full run needs.
    pub fn total_cpu(&self) -> Dur {
        self.op_cost * self.ops_total
    }
}

impl Program for CpuBound {
    fn step(&mut self, _ctx: &mut UserCtx) -> Step {
        if self.ops_done < self.ops_total {
            self.ops_done += 1;
            Step::Compute(self.op_cost)
        } else {
            Step::Exit(0)
        }
    }

    fn name(&self) -> &str {
        "cpubound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_exact_op_count() {
        let mut p = CpuBound::new(3, Dur::from_ms(2));
        let mut ctx = UserCtx::default();
        for _ in 0..3 {
            assert_eq!(p.step(&mut ctx), Step::Compute(Dur::from_ms(2)));
        }
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
        assert_eq!(p.ops_done(), 3);
    }

    #[test]
    fn with_total_rounds_up() {
        let p = CpuBound::with_total(Dur::from_ms(10) + Dur::from_us(1));
        assert_eq!(p.total_cpu(), Dur::from_ms(11));
    }
}
