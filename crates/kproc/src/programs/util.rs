//! Deterministic test-data generation shared by programs and harnesses.

/// Produces `len` bytes of a position-dependent pattern: byte at absolute
/// offset `o` of stream `seed` is a mix of `o` and `seed`. Any slice of
/// the stream can be regenerated independently, which lets integrity
/// checks verify huge copies without holding both sides in memory.
pub fn pattern_bytes(seed: u64, offset: u64, len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| {
            let o = offset + i;
            // A cheap mix with full-byte diffusion; not a PRNG, just a
            // position-dependent fingerprint.
            let x = o
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
            (x >> 56) as u8
        })
        .collect()
}

/// Verifies that `data` equals the pattern stream `seed` at `offset`.
/// Returns the index of the first mismatch, if any.
pub fn pattern_check(seed: u64, offset: u64, data: &[u8]) -> Option<usize> {
    let expect = pattern_bytes(seed, offset, data.len());
    data.iter().zip(&expect).position(|(a, b)| a != b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_compose() {
        let whole = pattern_bytes(7, 0, 100);
        let a = pattern_bytes(7, 0, 40);
        let b = pattern_bytes(7, 40, 60);
        assert_eq!(whole[..40], a[..]);
        assert_eq!(whole[40..], b[..]);
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(pattern_bytes(1, 0, 64), pattern_bytes(2, 0, 64));
    }

    #[test]
    fn check_detects_corruption() {
        let mut d = pattern_bytes(3, 100, 32);
        assert_eq!(pattern_check(3, 100, &d), None);
        d[17] ^= 1;
        assert_eq!(pattern_check(3, 100, &d), Some(17));
    }

    #[test]
    fn bytes_are_not_constant() {
        let d = pattern_bytes(0, 0, 256);
        let first = d[0];
        assert!(d.iter().any(|&b| b != first), "pattern must vary");
    }
}
