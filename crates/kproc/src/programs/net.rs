//! UDP workload programs: sources, sinks, and the two relay variants.
//!
//! §5.1 lists socket-to-socket splices for UDP among the supported splice
//! classes. The relay pair here compares the conventional user-space relay
//! (`recv` + `send` per datagram, two user/kernel copies) with an in-kernel
//! splice of one socket to another.

use ksim::Dur;

use crate::program::{Program, Step, UserCtx};
use crate::programs::util::pattern_bytes;
use crate::types::{Fd, SockAddr, SpliceReq, SyscallReq, SyscallRet};

/// Sends `count` datagrams of `size` bytes to `dest`, pacing each send
/// with a small user-mode gap.
pub struct UdpSource {
    dest: SockAddr,
    size: usize,
    count: u64,
    gap: Dur,
    seed: u64,
    st: u32,
    fd: Option<Fd>,
    sent: u64,
}

impl UdpSource {
    /// A pattern-stamped datagram source.
    pub fn new(dest: SockAddr, size: usize, count: u64, gap: Dur, seed: u64) -> UdpSource {
        UdpSource {
            dest,
            size,
            count,
            gap,
            seed,
            st: 0,
            fd: None,
            sent: 0,
        }
    }

    /// Datagrams sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Program for UdpSource {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Socket)
            }
            1 => {
                self.fd = ctx.take_ret().as_fd();
                if self.fd.is_none() {
                    return Step::Exit(1);
                }
                self.st = 2;
                Step::Syscall(SyscallReq::Connect {
                    fd: self.fd.unwrap(),
                    addr: self.dest,
                })
            }
            2 => {
                ctx.take_ret();
                self.st = 3;
                Step::Compute(self.gap)
            }
            3 => {
                // Alternate gap → send → gap → send.
                if self.sent >= self.count {
                    return Step::Exit(0);
                }
                let off = self.sent * self.size as u64;
                self.sent += 1;
                self.st = 4;
                Step::Syscall(SyscallReq::Send {
                    fd: self.fd.unwrap(),
                    data: pattern_bytes(self.seed, off, self.size),
                })
            }
            4 => {
                ctx.take_ret();
                self.st = 3;
                if self.gap.is_zero() {
                    self.step(ctx)
                } else {
                    Step::Compute(self.gap)
                }
            }
            _ => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "udp_source"
    }
}

/// Receives `count` datagrams on `port`, recording how many bytes arrived.
pub struct UdpSink {
    port: u16,
    count: u64,
    st: u32,
    fd: Option<Fd>,
    received: u64,
    bytes: u64,
}

impl UdpSink {
    /// A datagram sink on `port` expecting `count` datagrams.
    pub fn new(port: u16, count: u64) -> UdpSink {
        UdpSink {
            port,
            count,
            st: 0,
            fd: None,
            received: 0,
            bytes: 0,
        }
    }

    /// Datagrams received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Payload bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Program for UdpSink {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Socket)
            }
            1 => {
                self.fd = ctx.take_ret().as_fd();
                if self.fd.is_none() {
                    return Step::Exit(1);
                }
                self.st = 2;
                Step::Syscall(SyscallReq::Bind {
                    fd: self.fd.unwrap(),
                    port: self.port,
                })
            }
            2 => {
                ctx.take_ret();
                self.st = 3;
                Step::Syscall(SyscallReq::Recv {
                    fd: self.fd.unwrap(),
                    max_len: 65536,
                })
            }
            3 => {
                match ctx.take_ret() {
                    SyscallRet::Data(d) => {
                        self.received += 1;
                        self.bytes += d.len() as u64;
                    }
                    _ => return Step::Exit(1),
                }
                if self.received >= self.count {
                    return Step::Exit(0);
                }
                Step::Syscall(SyscallReq::Recv {
                    fd: self.fd.unwrap(),
                    max_len: 65536,
                })
            }
            _ => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "udp_sink"
    }
}

/// The conventional relay: `recv` on one socket, `send` on another, one
/// datagram at a time through user space.
pub struct UdpRelayRw {
    in_port: u16,
    out_addr: SockAddr,
    count: u64,
    st: u32,
    in_fd: Option<Fd>,
    out_fd: Option<Fd>,
    relayed: u64,
    pending: Option<Vec<u8>>,
}

impl UdpRelayRw {
    /// Relays `count` datagrams from `in_port` to `out_addr`.
    pub fn new(in_port: u16, out_addr: SockAddr, count: u64) -> UdpRelayRw {
        UdpRelayRw {
            in_port,
            out_addr,
            count,
            st: 0,
            in_fd: None,
            out_fd: None,
            relayed: 0,
            pending: None,
        }
    }

    /// Datagrams relayed.
    pub fn relayed(&self) -> u64 {
        self.relayed
    }
}

impl Program for UdpRelayRw {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Socket)
            }
            1 => {
                self.in_fd = ctx.take_ret().as_fd();
                self.st = 2;
                Step::Syscall(SyscallReq::Bind {
                    fd: self.in_fd.unwrap(),
                    port: self.in_port,
                })
            }
            2 => {
                ctx.take_ret();
                self.st = 3;
                Step::Syscall(SyscallReq::Socket)
            }
            3 => {
                self.out_fd = ctx.take_ret().as_fd();
                self.st = 4;
                Step::Syscall(SyscallReq::Connect {
                    fd: self.out_fd.unwrap(),
                    addr: self.out_addr,
                })
            }
            4 => {
                ctx.take_ret();
                self.st = 5;
                Step::Syscall(SyscallReq::Recv {
                    fd: self.in_fd.unwrap(),
                    max_len: 65536,
                })
            }
            5 => {
                match ctx.take_ret() {
                    SyscallRet::Data(d) => self.pending = Some(d),
                    _ => return Step::Exit(1),
                }
                self.st = 6;
                Step::Syscall(SyscallReq::Send {
                    fd: self.out_fd.unwrap(),
                    data: self.pending.take().unwrap(),
                })
            }
            6 => {
                ctx.take_ret();
                self.relayed += 1;
                if self.relayed >= self.count {
                    return Step::Exit(0);
                }
                self.st = 5;
                Step::Syscall(SyscallReq::Recv {
                    fd: self.in_fd.unwrap(),
                    max_len: 65536,
                })
            }
            _ => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "udp_relay_rw"
    }
}

/// The splice relay: one `splice(in_sock, out_sock, len)` moves the whole
/// stream inside the kernel.
pub struct UdpRelaySplice {
    in_port: u16,
    out_addr: SockAddr,
    total_bytes: u64,
    st: u32,
    in_fd: Option<Fd>,
    out_fd: Option<Fd>,
    bytes: u64,
}

impl UdpRelaySplice {
    /// Relays `total_bytes` of datagram payload from `in_port` to
    /// `out_addr` with a single synchronous splice.
    pub fn new(in_port: u16, out_addr: SockAddr, total_bytes: u64) -> UdpRelaySplice {
        UdpRelaySplice {
            in_port,
            out_addr,
            total_bytes,
            st: 0,
            in_fd: None,
            out_fd: None,
            bytes: 0,
        }
    }

    /// Bytes the splice reported moving.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Program for UdpRelaySplice {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Socket)
            }
            1 => {
                self.in_fd = ctx.take_ret().as_fd();
                self.st = 2;
                Step::Syscall(SyscallReq::Bind {
                    fd: self.in_fd.unwrap(),
                    port: self.in_port,
                })
            }
            2 => {
                ctx.take_ret();
                self.st = 3;
                Step::Syscall(SyscallReq::Socket)
            }
            3 => {
                self.out_fd = ctx.take_ret().as_fd();
                self.st = 4;
                Step::Syscall(SyscallReq::Connect {
                    fd: self.out_fd.unwrap(),
                    addr: self.out_addr,
                })
            }
            4 => {
                ctx.take_ret();
                self.st = 5;
                Step::splice(
                    SpliceReq::new(self.in_fd.unwrap(), self.out_fd.unwrap())
                        .bytes(self.total_bytes),
                )
            }
            5 => {
                match ctx.take_ret() {
                    SyscallRet::Val(n) if n >= 0 => self.bytes = n as u64,
                    _ => return Step::Exit(1),
                }
                Step::Exit(0)
            }
            _ => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "udp_relay_splice"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SpliceLen;

    #[test]
    fn source_sends_expected_count() {
        let dest = SockAddr { host: 2, port: 9 };
        let mut p = UdpSource::new(dest, 1024, 2, Dur::ZERO, 5);
        let mut ctx = UserCtx::default();
        assert!(matches!(
            p.step(&mut ctx),
            Step::Syscall(SyscallReq::Socket)
        ));
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        assert!(matches!(
            p.step(&mut ctx),
            Step::Syscall(SyscallReq::Connect { .. })
        ));
        ctx.ret = Some(SyscallRet::Val(0));
        // Zero gap: first compute is zero then direct sends.
        let s = p.step(&mut ctx);
        assert!(matches!(s, Step::Compute(_)));
        let s = p.step(&mut ctx);
        let Step::Syscall(SyscallReq::Send { data, .. }) = s else {
            panic!()
        };
        assert_eq!(data.len(), 1024);
        ctx.ret = Some(SyscallRet::Val(1024));
        let s = p.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Send { .. })));
        ctx.ret = Some(SyscallRet::Val(1024));
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
        assert_eq!(p.sent(), 2);
    }

    #[test]
    fn sink_counts_bytes() {
        let mut p = UdpSink::new(9, 2);
        let mut ctx = UserCtx::default();
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Val(0));
        let s = p.step(&mut ctx);
        assert!(matches!(s, Step::Syscall(SyscallReq::Recv { .. })));
        ctx.ret = Some(SyscallRet::Data(vec![0; 100]));
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Data(vec![0; 50]));
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
        assert_eq!(p.received(), 2);
        assert_eq!(p.bytes(), 150);
    }

    #[test]
    fn splice_relay_issues_single_splice() {
        let out = SockAddr { host: 3, port: 11 };
        let mut p = UdpRelaySplice::new(8, out, 1 << 20);
        let mut ctx = UserCtx::default();
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(3)));
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Val(0));
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::NewFd(Fd(4)));
        p.step(&mut ctx);
        ctx.ret = Some(SyscallRet::Val(0));
        let s = p.step(&mut ctx);
        assert!(matches!(
            s,
            Step::Syscall(SyscallReq::Splice {
                req: SpliceReq {
                    src: Fd(3),
                    dst: Fd(4),
                    len: SpliceLen::Bytes(n),
                    ..
                }
            }) if n == 1 << 20
        ));
        ctx.ret = Some(SyscallRet::Val(1 << 20));
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
        assert_eq!(p.bytes(), 1 << 20);
    }
}
