//! The user-program state-machine API.
//!
//! A simulated user program is a state machine the kernel advances: each
//! [`Program::step`] returns what the program does next — burn CPU, issue
//! a system call, or exit. The kernel runs the step's action, and on the
//! following `step` call delivers the result (syscall return value, data
//! read, signals taken) in the [`UserCtx`].
//!
//! Programs never see kernel internals; they interact purely through the
//! syscall vocabulary in [`crate::types`], like real processes.

use ksim::{Dur, SimTime};

use crate::types::{Sig, SpliceReq, SyscallReq, SyscallRet};

/// What a program does next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Execute user-mode instructions for this long.
    Compute(Dur),
    /// Trap into the kernel.
    Syscall(SyscallReq),
    /// Terminate with a status.
    Exit(i32),
}

impl Step {
    /// Issues `splice(2)` with the given request — sugar for
    /// `Step::Syscall(req.req())`.
    pub fn splice(req: SpliceReq) -> Step {
        Step::Syscall(req.req())
    }
}

/// What the kernel tells the program at each step.
#[derive(Clone, Debug, Default)]
pub struct UserCtx {
    /// Return value of the syscall issued by the previous step, if any.
    pub ret: Option<SyscallRet>,
    /// Signals delivered since the previous step, in delivery order.
    pub signals: Vec<Sig>,
    /// Current simulated time. Programs should treat this as
    /// `gettimeofday` output — fine for pacing decisions, not a hidden
    /// side channel (measurement harnesses read the kernel clock
    /// directly).
    pub now: SimTime,
}

impl UserCtx {
    /// Takes the syscall return, panicking if none is present — for
    /// program states that by construction follow a syscall.
    ///
    /// # Panics
    ///
    /// Panics if the previous step was not a syscall.
    pub fn take_ret(&mut self) -> SyscallRet {
        self.ret
            .take()
            .expect("program state expected a syscall return")
    }

    /// True if `sig` was delivered since the last step.
    pub fn got_signal(&self, sig: Sig) -> bool {
        self.signals.contains(&sig)
    }
}

/// A simulated user program.
pub trait Program {
    /// Advances the program. `ctx` carries the previous step's results.
    fn step(&mut self, ctx: &mut UserCtx) -> Step;

    /// A short name for traces and reports.
    fn name(&self) -> &str {
        "program"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoStep {
        n: u32,
    }

    impl Program for TwoStep {
        fn step(&mut self, _ctx: &mut UserCtx) -> Step {
            self.n += 1;
            match self.n {
                1 => Step::Compute(Dur::from_ms(1)),
                _ => Step::Exit(0),
            }
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut p: Box<dyn Program> = Box::new(TwoStep { n: 0 });
        let mut ctx = UserCtx::default();
        assert_eq!(p.step(&mut ctx), Step::Compute(Dur::from_ms(1)));
        assert_eq!(p.step(&mut ctx), Step::Exit(0));
    }

    #[test]
    #[should_panic(expected = "expected a syscall return")]
    fn take_ret_guards_state_machines() {
        let mut ctx = UserCtx::default();
        ctx.take_ret();
    }

    #[test]
    fn signal_query() {
        let ctx = UserCtx {
            signals: vec![Sig::Alrm],
            ..Default::default()
        };
        assert!(ctx.got_signal(Sig::Alrm));
        assert!(!ctx.got_signal(Sig::Io));
    }
}
