//! The single-CPU execution engine.
//!
//! Everything that costs cycles funnels through here so the availability
//! numbers mean something. Two admission classes exist:
//!
//! * [`WorkClass::Intr`] — interrupt-level work (device interrupt service,
//!   hardclock, the SCSI pseudo-DMA bounce copy, context switches). Runs
//!   as soon as the kernel is free, always; preempts user execution.
//! * [`WorkClass::Soft`] — deferrable kernel work: softclock callout
//!   dispatch and the splice handler chains they drive (read handlers,
//!   write handlers, RAM-disk strategy `bcopy`s). Per clock tick at most
//!   `soft_budget` of this may run at kernel priority; the rest must wait
//!   until the CPU is otherwise idle ([`CpuEngine::admit_idle`]). This is
//!   the policy that lets a splice saturate an idle machine while taking
//!   only a bounded slice from a busy one — the behaviour Table 1
//!   measures. (Ultrix implemented this implicitly through interrupt
//!   priority levels and callout pacing; modern kernels implement it
//!   explicitly as the softirq budget + `ksoftirqd`.)
//!
//! Kernel work is serialised (`busy_until`): a work item admitted at `t`
//! starts when the previous one finishes. User-visible delay is reported
//! to the caller, which adds it to the running process's completion time.

use ksim::{Dur, SimTime, Stats};

/// Admission class for kernel work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkClass {
    /// Non-deferrable interrupt-level work.
    Intr,
    /// Deferrable softclock-level work, subject to the per-tick budget.
    Soft,
}

/// A granted execution window for one kernel work item.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KernelRun {
    /// When the work begins executing.
    pub start: SimTime,
    /// When it finishes (schedule completion effects here).
    pub end: SimTime,
}

impl KernelRun {
    /// The window's length.
    pub fn cost(&self) -> Dur {
        self.end.since(self.start)
    }
}

/// Outcome of admitting kernel work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admit {
    /// The work runs in this window.
    Run(KernelRun),
    /// Over the soft budget: the caller must queue it and retry at the
    /// next tick or when the CPU idles.
    Deferred,
}

/// The CPU engine. See the module docs.
pub struct CpuEngine {
    busy_until: SimTime,
    soft_budget: Dur,
    tick_soft_used: Dur,
    stats: Stats,
}

impl CpuEngine {
    /// Creates an engine with the given per-tick soft-work budget.
    pub fn new(soft_budget: Dur) -> CpuEngine {
        CpuEngine {
            busy_until: SimTime::ZERO,
            soft_budget,
            tick_soft_used: Dur::ZERO,
            stats: Stats::new(),
        }
    }

    /// The instant the kernel becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Remaining soft budget in the current tick.
    pub fn soft_budget_left(&self) -> Dur {
        self.soft_budget.saturating_sub(self.tick_soft_used)
    }

    /// Accumulated accounting (`cpu.intr`, `cpu.soft`, `cpu.idle_soft`
    /// durations; counters per admission).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the soft budget; call from the hardclock handler each tick.
    pub fn new_tick(&mut self) {
        self.tick_soft_used = Dur::ZERO;
    }

    fn run(&mut self, now: SimTime, cost: Dur) -> KernelRun {
        let start = if now > self.busy_until {
            now
        } else {
            self.busy_until
        };
        let end = start + cost;
        self.busy_until = end;
        KernelRun { start, end }
    }

    /// Admits kernel work of `class` at `now` costing `cost`.
    pub fn admit(&mut self, now: SimTime, cost: Dur, class: WorkClass) -> Admit {
        match class {
            WorkClass::Intr => {
                self.stats.bump("cpu.intr_items");
                self.stats.add_dur("cpu.intr", cost);
                Admit::Run(self.run(now, cost))
            }
            WorkClass::Soft => {
                // Threshold semantics: work is admitted while the tick's
                // usage is under budget; one item may overshoot (otherwise
                // an item larger than the whole budget would starve
                // forever).
                if self.tick_soft_used >= self.soft_budget {
                    self.stats.bump("cpu.soft_deferred");
                    return Admit::Deferred;
                }
                self.tick_soft_used += cost;
                self.stats.bump("cpu.soft_items");
                self.stats.add_dur("cpu.soft", cost);
                Admit::Run(self.run(now, cost))
            }
        }
    }

    /// Admits deferred soft work while the CPU is otherwise idle: no
    /// budget is charged, because nobody is being starved.
    pub fn admit_idle(&mut self, now: SimTime, cost: Dur) -> KernelRun {
        self.stats.bump("cpu.idle_soft_items");
        self.stats.add_dur("cpu.idle_soft", cost);
        self.run(now, cost)
    }

    /// Total kernel time consumed so far (all classes).
    pub fn kernel_time(&self) -> Dur {
        self.stats.get_dur("cpu.intr")
            + self.stats.get_dur("cpu.soft")
            + self.stats.get_dur("cpu.idle_soft")
    }

    /// Kernel time broken down by admission class, for the resource
    /// accounting snapshot: `(intr, soft, idle_soft)`.
    pub fn kernel_time_by_class(&self) -> (Dur, Dur, Dur) {
        (
            self.stats.get_dur("cpu.intr"),
            self.stats.get_dur("cpu.soft"),
            self.stats.get_dur("cpu.idle_soft"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_us(us)
    }

    #[test]
    fn intr_work_serialises() {
        let mut cpu = CpuEngine::new(Dur::from_us(100));
        let Admit::Run(a) = cpu.admit(t(0), Dur::from_us(50), WorkClass::Intr) else {
            panic!()
        };
        assert_eq!(a.start, t(0));
        assert_eq!(a.end, t(50));
        // Second item at the same instant queues behind the first.
        let Admit::Run(b) = cpu.admit(t(0), Dur::from_us(30), WorkClass::Intr) else {
            panic!()
        };
        assert_eq!(b.start, t(50));
        assert_eq!(b.end, t(80));
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut cpu = CpuEngine::new(Dur::from_us(100));
        cpu.admit(t(0), Dur::from_us(10), WorkClass::Intr);
        let Admit::Run(b) = cpu.admit(t(500), Dur::from_us(10), WorkClass::Intr) else {
            panic!()
        };
        assert_eq!(b.start, t(500), "work starts at arrival after idle gap");
    }

    #[test]
    fn soft_budget_enforced_per_tick() {
        let mut cpu = CpuEngine::new(Dur::from_us(100));
        assert!(matches!(
            cpu.admit(t(0), Dur::from_us(60), WorkClass::Soft),
            Admit::Run(_)
        ));
        // Still under budget (60 < 100): admitted, overshooting to 120.
        assert!(matches!(
            cpu.admit(t(0), Dur::from_us(60), WorkClass::Soft),
            Admit::Run(_)
        ));
        // Over budget now: deferred.
        assert!(matches!(
            cpu.admit(t(0), Dur::from_us(1), WorkClass::Soft),
            Admit::Deferred
        ));
        // New tick refills.
        cpu.new_tick();
        assert!(matches!(
            cpu.admit(t(100), Dur::from_us(60), WorkClass::Soft),
            Admit::Run(_)
        ));
    }

    #[test]
    fn oversized_soft_item_cannot_starve() {
        // An item bigger than the whole budget still runs once per tick.
        let mut cpu = CpuEngine::new(Dur::from_us(100));
        assert!(matches!(
            cpu.admit(t(0), Dur::from_us(900), WorkClass::Soft),
            Admit::Run(_)
        ));
        assert!(matches!(
            cpu.admit(t(0), Dur::from_us(900), WorkClass::Soft),
            Admit::Deferred
        ));
        cpu.new_tick();
        assert!(matches!(
            cpu.admit(t(100), Dur::from_us(900), WorkClass::Soft),
            Admit::Run(_)
        ));
    }

    #[test]
    fn intr_ignores_soft_budget() {
        let mut cpu = CpuEngine::new(Dur::ZERO);
        assert!(matches!(
            cpu.admit(t(0), Dur::from_us(60), WorkClass::Intr),
            Admit::Run(_)
        ));
    }

    #[test]
    fn idle_admission_bypasses_budget() {
        let mut cpu = CpuEngine::new(Dur::ZERO);
        let run = cpu.admit_idle(t(0), Dur::from_us(500));
        assert_eq!(run.cost(), Dur::from_us(500));
        assert_eq!(cpu.stats().get("cpu.idle_soft_items"), 1);
    }

    #[test]
    fn kernel_time_accumulates_across_classes() {
        let mut cpu = CpuEngine::new(Dur::from_us(1000));
        cpu.admit(t(0), Dur::from_us(10), WorkClass::Intr);
        cpu.admit(t(0), Dur::from_us(20), WorkClass::Soft);
        cpu.admit_idle(t(100), Dur::from_us(30));
        assert_eq!(cpu.kernel_time(), Dur::from_us(60));
    }
}
