//! Round-robin scheduler state.
//!
//! The scheduler holds the run queue and the record of what is on the CPU
//! right now. The kernel event loop (in the `splice` crate) drives the
//! transitions; this module keeps the bookkeeping honest:
//!
//! * a process is never queued twice,
//! * there is at most one current run,
//! * every run chunk carries a generation so stale completion events can
//!   be recognised after a preemption or penalty reschedule.
//!
//! Kernel work that preempts the running process does not generate
//! explicit preemption events; instead its duration accumulates in
//! [`CurrentRun::penalty`], and the chunk-completion event re-arms itself
//! for the remaining time (see the event loop). This models "interrupts
//! steal cycles from whoever is running", which is exactly the effect the
//! paper's CPU-availability experiment measures.

use std::collections::{HashSet, VecDeque};

use ksim::{Dur, SimTime};

use crate::types::Pid;

/// Why the current process is on the CPU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunKind {
    /// Executing user-mode compute; this much remains after the current
    /// chunk.
    Compute {
        /// Compute remaining beyond the current chunk (for quantum
        /// slicing).
        remaining: Dur,
    },
    /// Executing the CPU portion of a system call.
    SyscallCpu,
}

/// The record of the chunk currently executing on the CPU.
#[derive(Clone, Copy, Debug)]
pub struct CurrentRun {
    /// Who is running.
    pub pid: Pid,
    /// Generation of the scheduled completion event.
    pub gen: u64,
    /// What kind of execution this is.
    pub kind: RunKind,
    /// When the chunk began executing.
    pub started: SimTime,
    /// The chunk's own CPU demand (excluding stolen kernel time).
    pub nominal: Dur,
    /// Nominal completion time (excluding penalties accrued after
    /// scheduling).
    pub chunk_end: SimTime,
    /// Kernel time stolen from this chunk since it was (re)armed; the
    /// completion handler pushes the chunk out by this much.
    pub penalty: Dur,
    /// Total kernel time stolen since the chunk began (for preemption
    /// arithmetic).
    pub stolen: Dur,
    /// Quantum remaining after this chunk completes.
    pub quantum_left: Dur,
}

impl CurrentRun {
    /// User CPU actually executed by `now` (wall time minus kernel
    /// steals), clamped to the chunk's demand.
    pub fn executed_by(&self, now: SimTime) -> Dur {
        let total_stolen = self.stolen + self.penalty;
        now.saturating_since(self.started)
            .saturating_sub(total_stolen)
            .min(self.nominal)
    }

    /// User CPU still owed at `now`.
    pub fn remaining_at(&self, now: SimTime) -> Dur {
        self.nominal.saturating_sub(self.executed_by(now))
    }
}

/// Run queue + current-run bookkeeping.
pub struct Scheduler {
    runq: VecDeque<Pid>,
    /// Mirror of `runq` membership, so the never-queued-twice invariant
    /// is O(1) to check however long the queue grows (tens of thousands
    /// of runnable clients in the connection-scale scenarios).
    queued_set: HashSet<Pid>,
    current: Option<CurrentRun>,
    quantum: Dur,
    next_gen: u64,
}

impl Scheduler {
    /// Creates a scheduler with the given time quantum.
    pub fn new(quantum: Dur) -> Scheduler {
        Scheduler {
            runq: VecDeque::new(),
            queued_set: HashSet::new(),
            current: None,
            quantum,
            next_gen: 0,
        }
    }

    /// The configured quantum.
    pub fn quantum(&self) -> Dur {
        self.quantum
    }

    /// Adds a process to the tail of the run queue.
    ///
    /// # Panics
    ///
    /// Panics if the process is already queued or current.
    pub fn enqueue(&mut self, pid: Pid) {
        assert!(
            self.queued_set.insert(pid),
            "{pid:?} already on the run queue"
        );
        assert!(
            self.current.map(|c| c.pid) != Some(pid),
            "{pid:?} is already running"
        );
        self.runq.push_back(pid);
    }

    /// Removes and returns the process at the head of the run queue.
    pub fn take_next(&mut self) -> Option<Pid> {
        let pid = self.runq.pop_front();
        if let Some(pid) = pid {
            self.queued_set.remove(&pid);
        }
        pid
    }

    /// Adds a process to the *head* of the run queue (it was about to be
    /// dispatched and lost a race; it keeps its turn).
    ///
    /// # Panics
    ///
    /// Panics if the process is already queued or current.
    pub fn enqueue_front(&mut self, pid: Pid) {
        assert!(
            self.queued_set.insert(pid),
            "{pid:?} already on the run queue"
        );
        assert!(
            self.current.map(|c| c.pid) != Some(pid),
            "{pid:?} is already running"
        );
        self.runq.push_front(pid);
    }

    /// The run queue length.
    pub fn queued(&self) -> usize {
        self.runq.len()
    }

    /// The current run record, if a process is on the CPU.
    pub fn current(&self) -> Option<&CurrentRun> {
        self.current.as_ref()
    }

    /// Mutable access to the current run (penalty accumulation).
    pub fn current_mut(&mut self) -> Option<&mut CurrentRun> {
        self.current.as_mut()
    }

    /// Installs a new current run, allocating its generation.
    ///
    /// # Panics
    ///
    /// Panics if something is already running.
    pub fn start_run(
        &mut self,
        pid: Pid,
        kind: RunKind,
        started: SimTime,
        nominal: Dur,
        quantum_left: Dur,
    ) -> u64 {
        assert!(self.current.is_none(), "CPU already occupied");
        let gen = self.next_gen;
        self.next_gen += 1;
        self.current = Some(CurrentRun {
            pid,
            gen,
            kind,
            started,
            nominal,
            chunk_end: started + nominal,
            penalty: Dur::ZERO,
            stolen: Dur::ZERO,
            quantum_left,
        });
        gen
    }

    /// Replaces the completion target of the current run (penalty
    /// reschedule), allocating a fresh generation.
    ///
    /// # Panics
    ///
    /// Panics if nothing is running.
    pub fn rearm_current(&mut self, chunk_end: SimTime) -> u64 {
        let gen = self.next_gen;
        self.next_gen += 1;
        let cur = self.current.as_mut().expect("no current run to re-arm");
        cur.gen = gen;
        cur.chunk_end = chunk_end;
        cur.stolen += cur.penalty;
        cur.penalty = Dur::ZERO;
        gen
    }

    /// Removes and returns the current run (the chunk finished, the
    /// process blocked, was preempted, or exited).
    pub fn stop_current(&mut self) -> Option<CurrentRun> {
        self.current.take()
    }

    /// True if `gen` matches the current run's generation for `pid` —
    /// i.e. the completion event that fired is not stale.
    pub fn is_current(&self, pid: Pid, gen: u64) -> bool {
        self.current
            .as_ref()
            .is_some_and(|c| c.pid == pid && c.gen == gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_us(us)
    }

    #[test]
    fn fifo_order() {
        let mut s = Scheduler::new(Dur::from_ms(40));
        s.enqueue(Pid(1));
        s.enqueue(Pid(2));
        assert_eq!(s.take_next(), Some(Pid(1)));
        assert_eq!(s.take_next(), Some(Pid(2)));
        assert_eq!(s.take_next(), None);
    }

    #[test]
    #[should_panic(expected = "already on the run queue")]
    fn double_enqueue_panics() {
        let mut s = Scheduler::new(Dur::from_ms(40));
        s.enqueue(Pid(1));
        s.enqueue(Pid(1));
    }

    #[test]
    fn run_lifecycle_and_generations() {
        let mut s = Scheduler::new(Dur::from_ms(40));
        let g1 = s.start_run(
            Pid(1),
            RunKind::SyscallCpu,
            t(0),
            Dur::from_us(100),
            Dur::from_ms(40),
        );
        assert!(s.is_current(Pid(1), g1));
        assert!(!s.is_current(Pid(1), g1 + 1));
        assert!(!s.is_current(Pid(2), g1));
        // Penalty reschedule invalidates the old generation.
        s.current_mut().unwrap().penalty = Dur::from_us(50);
        let g2 = s.rearm_current(t(150));
        assert!(!s.is_current(Pid(1), g1));
        assert!(s.is_current(Pid(1), g2));
        let run = s.stop_current().unwrap();
        assert_eq!(run.chunk_end, t(150));
        assert_eq!(run.stolen, Dur::from_us(50), "rearm folds penalty in");
        assert!(s.current().is_none());
    }

    #[test]
    fn executed_and_remaining_account_for_steals() {
        let mut s = Scheduler::new(Dur::from_ms(40));
        s.start_run(
            Pid(1),
            RunKind::Compute {
                remaining: Dur::ZERO,
            },
            t(0),
            Dur::from_us(1000),
            Dur::from_ms(40),
        );
        // 400 us in, 100 us stolen: 300 us executed, 700 us left.
        s.current_mut().unwrap().penalty = Dur::from_us(100);
        let cur = s.current().unwrap();
        assert_eq!(cur.executed_by(t(0) + Dur::from_us(400)), Dur::from_us(300));
        assert_eq!(
            cur.remaining_at(t(0) + Dur::from_us(400)),
            Dur::from_us(700)
        );
        // Executed never exceeds the demand.
        assert_eq!(cur.executed_by(t(0) + Dur::from_ms(10)), Dur::from_us(1000));
    }

    #[test]
    #[should_panic(expected = "CPU already occupied")]
    fn double_start_panics() {
        let mut s = Scheduler::new(Dur::from_ms(40));
        s.start_run(Pid(1), RunKind::SyscallCpu, t(1), Dur::ZERO, Dur::ZERO);
        s.start_run(Pid(2), RunKind::SyscallCpu, t(1), Dur::ZERO, Dur::ZERO);
    }

    #[test]
    fn penalty_accumulates() {
        let mut s = Scheduler::new(Dur::from_ms(40));
        s.start_run(
            Pid(1),
            RunKind::Compute {
                remaining: Dur::ZERO,
            },
            t(100),
            Dur::from_us(1),
            Dur::from_ms(40),
        );
        s.current_mut().unwrap().penalty += Dur::from_us(30);
        s.current_mut().unwrap().penalty += Dur::from_us(12);
        assert_eq!(s.current().unwrap().penalty, Dur::from_us(42));
    }
}
