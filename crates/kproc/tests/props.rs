//! Property tests for the CPU engine and scheduler bookkeeping.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use proptest::prelude::*;

use kproc::{Admit, CpuEngine, CurrentRun, Pid, RunKind, Scheduler, WorkClass};
use ksim::{Dur, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kernel_work_windows_never_overlap(
        items in prop::collection::vec((0u64..10_000, 1u64..2_000, any::<bool>()), 1..100)
    ) {
        let mut cpu = CpuEngine::new(Dur::from_us(500));
        let mut now = SimTime::ZERO;
        let mut last_end = SimTime::ZERO;
        let mut total_run = Dur::ZERO;
        for (gap_us, cost_us, soft) in items {
            now += Dur::from_us(gap_us);
            let class = if soft { WorkClass::Soft } else { WorkClass::Intr };
            match cpu.admit(now, Dur::from_us(cost_us), class) {
                Admit::Run(w) => {
                    // Serialised: every window begins at or after the
                    // previous one ends, and at or after its arrival.
                    prop_assert!(w.start >= last_end);
                    prop_assert!(w.start >= now);
                    prop_assert_eq!(w.cost(), Dur::from_us(cost_us));
                    last_end = w.end;
                    total_run += w.cost();
                }
                Admit::Deferred => {
                    prop_assert!(soft, "Intr work is never deferred");
                }
            }
        }
        prop_assert_eq!(cpu.kernel_time(), total_run);
    }

    #[test]
    fn soft_budget_resets_each_tick(
        costs in prop::collection::vec(1u64..400, 1..40)
    ) {
        let budget = Dur::from_us(500);
        let mut cpu = CpuEngine::new(budget);
        let mut admitted_this_tick = Dur::ZERO;
        for (i, c) in costs.iter().enumerate() {
            if i % 5 == 0 {
                cpu.new_tick();
                admitted_this_tick = Dur::ZERO;
            }
            let cost = Dur::from_us(*c);
            match cpu.admit(SimTime::ZERO + Dur::from_ms(i as u64), cost, WorkClass::Soft) {
                Admit::Run(_) => {
                    // Threshold semantics: admission happened while usage
                    // was under budget.
                    prop_assert!(admitted_this_tick < budget);
                    admitted_this_tick += cost;
                }
                Admit::Deferred => {
                    prop_assert!(admitted_this_tick >= budget);
                }
            }
        }
    }

    #[test]
    fn run_generations_are_unique_and_current(
        chunks in prop::collection::vec((1u64..10_000, 0u64..500), 1..60)
    ) {
        let mut s = Scheduler::new(Dur::from_ms(40));
        let mut seen = std::collections::HashSet::new();
        let mut now = SimTime::ZERO;
        for (dur_us, penalty_us) in chunks {
            let g = s.start_run(
                Pid(1),
                RunKind::SyscallCpu,
                now,
                Dur::from_us(dur_us),
                Dur::from_ms(40),
            );
            prop_assert!(seen.insert(g), "generation reuse");
            prop_assert!(s.is_current(Pid(1), g));
            if penalty_us > 0 {
                s.current_mut().unwrap().penalty = Dur::from_us(penalty_us);
                let end = s.current().unwrap().chunk_end + Dur::from_us(penalty_us);
                let g2 = s.rearm_current(end);
                prop_assert!(seen.insert(g2), "generation reuse after rearm");
                prop_assert!(!s.is_current(Pid(1), g), "old generation stays stale");
                prop_assert!(s.is_current(Pid(1), g2));
            }
            let run: CurrentRun = s.stop_current().unwrap();
            // Total stolen time is what was folded in by rearm.
            prop_assert_eq!(run.stolen, Dur::from_us(penalty_us));
            now = run.chunk_end;
        }
    }
}
