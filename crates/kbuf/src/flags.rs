//! Buffer header flags, mirroring the 4.2BSD `b_flags` bits that matter
//! for the splice implementation.

use std::fmt;

/// A set of buffer state flags.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct BufFlags(u16);

impl BufFlags {
    /// Buffer is checked out (I/O in progress or held by a context).
    pub const BUSY: BufFlags = BufFlags(1 << 0);
    /// Contents are valid (I/O has completed).
    pub const DONE: BufFlags = BufFlags(1 << 1);
    /// Dirty: must be written back before the buffer is recycled.
    pub const DELWRI: BufFlags = BufFlags(1 << 2);
    /// Release automatically when the I/O completes.
    pub const ASYNC: BufFlags = BufFlags(1 << 3);
    /// Current I/O is a read.
    pub const READ: BufFlags = BufFlags(1 << 4);
    /// Invoke the `b_iodone` handler on completion (the paper's `B_CALL`).
    pub const CALL: BufFlags = BufFlags(1 << 5);
    /// Contents are not valid; recycle eagerly and do not serve hits.
    pub const INVAL: BufFlags = BufFlags(1 << 6);
    /// The last I/O on this buffer failed.
    pub const ERROR: BufFlags = BufFlags(1 << 7);
    /// Someone is sleeping on this buffer; wake them at release.
    pub const WANTED: BufFlags = BufFlags(1 << 8);

    /// The empty flag set.
    pub const fn empty() -> Self {
        BufFlags(0)
    }

    /// True if every bit of `other` is set in `self`.
    pub const fn contains(self, other: BufFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Sets the bits of `other`.
    pub fn insert(&mut self, other: BufFlags) {
        self.0 |= other.0;
    }

    /// Clears the bits of `other`.
    pub fn remove(&mut self, other: BufFlags) {
        self.0 &= !other.0;
    }

    /// Returns `self` with the bits of `other` set.
    pub const fn with(self, other: BufFlags) -> BufFlags {
        BufFlags(self.0 | other.0)
    }
}

impl std::ops::BitOr for BufFlags {
    type Output = BufFlags;
    fn bitor(self, rhs: BufFlags) -> BufFlags {
        BufFlags(self.0 | rhs.0)
    }
}

impl fmt::Debug for BufFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (BufFlags::BUSY, "BUSY"),
            (BufFlags::DONE, "DONE"),
            (BufFlags::DELWRI, "DELWRI"),
            (BufFlags::ASYNC, "ASYNC"),
            (BufFlags::READ, "READ"),
            (BufFlags::CALL, "CALL"),
            (BufFlags::INVAL, "INVAL"),
            (BufFlags::ERROR, "ERROR"),
            (BufFlags::WANTED, "WANTED"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut f = BufFlags::empty();
        f.insert(BufFlags::BUSY | BufFlags::READ);
        assert!(f.contains(BufFlags::BUSY));
        assert!(f.contains(BufFlags::READ));
        assert!(!f.contains(BufFlags::DONE));
        f.remove(BufFlags::READ);
        assert!(!f.contains(BufFlags::READ));
        assert!(f.contains(BufFlags::BUSY));
    }

    #[test]
    fn contains_requires_all_bits() {
        let f = BufFlags::BUSY;
        assert!(!f.contains(BufFlags::BUSY | BufFlags::DONE));
    }

    #[test]
    fn debug_renders_names() {
        let f = BufFlags::BUSY | BufFlags::DELWRI;
        let s = format!("{f:?}");
        assert!(s.contains("BUSY") && s.contains("DELWRI"));
        assert_eq!(format!("{:?}", BufFlags::empty()), "0");
    }
}
