//! The buffer cache proper: hash lookup, LRU recycling, and the classic
//! BSD entry points plus the paper's splice-specific variants.
//!
//! All operations are synchronous state transitions; anything that needs
//! the outside world (starting device I/O, waking a sleeping process) is
//! returned as an [`Effect`] for the kernel to perform. "Blocking" is
//! expressed as an outcome (`Busy`, `NoBuffers`) that tells the caller to
//! sleep and retry — processes via the scheduler, splice via a callout.

use std::collections::HashMap;

use crate::data::BufData;
use crate::flags::BufFlags;
use crate::{BufId, DevId, IodoneTag, SpliceRef};

/// Direction of a device transfer requested by the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoDir {
    /// Device → buffer.
    Read,
    /// Buffer → device.
    Write,
}

/// Side effects the kernel must carry out after a cache operation.
#[derive(Debug, PartialEq, Eq)]
pub enum Effect {
    /// Start a device transfer for `buf` (the buffer is busy for the
    /// duration; call [`Cache::biodone`] when the device completes).
    StartIo {
        /// Buffer involved.
        buf: BufId,
        /// Device to address.
        dev: DevId,
        /// Physical block number (in units of the cache block size).
        blkno: u64,
        /// Transfer length in bytes.
        len: usize,
        /// Direction.
        dir: IoDir,
    },
    /// Wake every context sleeping on `buf` (getblk collisions, biowait).
    Wakeup {
        /// Buffer whose sleepers should run.
        buf: BufId,
    },
    /// The free list went from empty to non-empty: wake contexts sleeping
    /// for *any* buffer.
    BuffersAvailable,
}

/// Result of [`Cache::getblk`].
#[derive(Debug, PartialEq, Eq)]
pub enum GetblkOutcome {
    /// The buffer is checked out to the caller ([`BufFlags::BUSY`] set).
    /// Check [`BufFlags::DONE`] to know whether the contents are valid.
    Held(BufId),
    /// The block exists but is checked out elsewhere; sleep on it and
    /// retry ([`BufFlags::WANTED`] has been set).
    Busy(BufId),
    /// Every buffer is checked out; sleep until [`Effect::BuffersAvailable`].
    NoBuffers,
}

/// Result of [`Cache::bread`] and variants.
#[derive(Debug, PartialEq, Eq)]
pub enum BreadOutcome {
    /// Valid data already cached; buffer checked out to the caller.
    Hit(BufId),
    /// A read was started (see the returned effects); the caller must wait
    /// for completion (`biowait`, or a `B_CALL` handler for splice).
    Miss(BufId),
    /// Block is checked out elsewhere; sleep and retry.
    Busy(BufId),
    /// No buffers available; sleep and retry.
    NoBuffers,
}

/// Cumulative cache counters.
#[derive(Default, Clone, Copy, Debug)]
pub struct CacheStats {
    /// `bread` served from cache.
    pub hits: u64,
    /// `bread` that had to go to the device.
    pub misses: u64,
    /// Delayed-write buffers flushed to reclaim space.
    pub reclaim_flushes: u64,
    /// Read-ahead transfers started.
    pub readaheads: u64,
    /// Valid blocks evicted to recycle their buffer.
    pub evictions: u64,
    /// `biodone` completions routed to a `B_CALL` handler (the splice
    /// engine's asynchronous read/write completion path, §5.2.1).
    pub bcall_completions: u64,
}

struct Buf {
    dev: Option<DevId>,
    blkno: u64,
    bcount: usize,
    flags: BufFlags,
    data: BufData,
    iodone: Option<IodoneTag>,
    splice: Option<SpliceRef>,
    /// True for the fixed pool buffers that own real cache memory; false
    /// for splice write headers, which share another buffer's data area.
    pool: bool,
    /// Non-pool headers that have been destroyed await reuse.
    dead: bool,
    /// Intrusive LRU free-list links (slab indices; [`LRU_NIL`] = end).
    lru_prev: u32,
    lru_next: u32,
    /// True while this buffer is linked on the free list.
    on_free: bool,
}

/// Sentinel slab index: end of the intrusive LRU free list.
const LRU_NIL: u32 = u32::MAX;

/// One cache occurrence for the kernel's typed trace.
///
/// The cache is a pure state machine with no clock, so it cannot stamp
/// trace records itself; instead it appends to an opt-in event log that
/// the kernel drains (and timestamps) after each dispatched event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEvent {
    /// `bread` served `(dev, blkno)` from the cache.
    Hit {
        /// Device the block lives on.
        dev: DevId,
        /// Physical block number.
        blkno: u64,
    },
    /// `bread` had to start a device read for `(dev, blkno)`.
    Miss {
        /// Device the block lives on.
        dev: DevId,
        /// Physical block number.
        blkno: u64,
    },
    /// A valid block was evicted to recycle its buffer.
    Evict {
        /// Device the block lived on.
        dev: DevId,
        /// Physical block number.
        blkno: u64,
    },
}

/// The buffer cache. See the crate docs for the overall contract.
pub struct Cache {
    bufs: Vec<Buf>,
    hash: HashMap<(DevId, u64), BufId>,
    /// LRU free list of pool buffers (front = next victim), threaded
    /// through the buffers' intrusive `lru_prev`/`lru_next` links so
    /// removing a specific buffer (getblk hit, flush claim, purge) is
    /// O(1) instead of a positional scan.
    lru_head: u32,
    lru_tail: u32,
    free_len: usize,
    /// Recycled non-pool header slots.
    free_headers: Vec<BufId>,
    bufsize: usize,
    pool_size: usize,
    stats: CacheStats,
    /// Opt-in trace event log; empty and untouched unless enabled.
    log: Vec<CacheEvent>,
    logging: bool,
}

impl Cache {
    /// Creates a cache of `nbufs` buffers of `bufsize` bytes each.
    ///
    /// The paper's configuration is a 3.2 MB cache of 8 KB buffers: 400
    /// buffers.
    pub fn new(nbufs: usize, bufsize: usize) -> Self {
        assert!(nbufs > 0 && bufsize > 0);
        let mut bufs = Vec::with_capacity(nbufs);
        for i in 0..nbufs {
            bufs.push(Buf {
                dev: None,
                blkno: 0,
                bcount: bufsize,
                flags: BufFlags::empty(),
                data: BufData::zeroed(bufsize),
                iodone: None,
                splice: None,
                pool: true,
                dead: false,
                // Boot order doubles as the initial LRU order.
                lru_prev: if i == 0 { LRU_NIL } else { (i - 1) as u32 },
                lru_next: if i + 1 == nbufs {
                    LRU_NIL
                } else {
                    (i + 1) as u32
                },
                on_free: true,
            });
        }
        Cache {
            bufs,
            hash: HashMap::new(),
            lru_head: 0,
            lru_tail: (nbufs - 1) as u32,
            free_len: nbufs,
            free_headers: Vec::new(),
            bufsize,
            pool_size: nbufs,
            stats: CacheStats::default(),
            log: Vec::new(),
            logging: false,
        }
    }

    /// Enables (or disables) the trace event log. While enabled, hits,
    /// misses, and evictions accumulate until [`Cache::take_events`].
    pub fn set_event_log(&mut self, on: bool) {
        self.logging = on;
        if !on {
            self.log.clear();
        }
    }

    /// Drains the accumulated trace events (oldest first).
    pub fn take_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.log)
    }

    /// The configured buffer size in bytes.
    pub fn bufsize(&self) -> usize {
        self.bufsize
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of buffers on the free list.
    pub fn free_count(&self) -> usize {
        self.free_len
    }

    // ----- intrusive LRU free list ----------------------------------------

    /// Links `id` at the front of the free list (next victim).
    fn free_push_front(&mut self, id: BufId) {
        let b = &mut self.bufs[id.0 as usize];
        debug_assert!(!b.on_free, "{id:?} already on free list");
        b.on_free = true;
        b.lru_prev = LRU_NIL;
        b.lru_next = self.lru_head;
        if self.lru_head != LRU_NIL {
            self.bufs[self.lru_head as usize].lru_prev = id.0;
        } else {
            self.lru_tail = id.0;
        }
        self.lru_head = id.0;
        self.free_len += 1;
    }

    /// Links `id` at the back of the free list (survives longest).
    fn free_push_back(&mut self, id: BufId) {
        let b = &mut self.bufs[id.0 as usize];
        debug_assert!(!b.on_free, "{id:?} already on free list");
        b.on_free = true;
        b.lru_next = LRU_NIL;
        b.lru_prev = self.lru_tail;
        if self.lru_tail != LRU_NIL {
            self.bufs[self.lru_tail as usize].lru_next = id.0;
        } else {
            self.lru_head = id.0;
        }
        self.lru_tail = id.0;
        self.free_len += 1;
    }

    /// Unlinks and returns the front of the free list (LRU victim).
    fn free_pop_front(&mut self) -> Option<BufId> {
        if self.lru_head == LRU_NIL {
            return None;
        }
        let id = BufId(self.lru_head);
        self.free_unlink(id, "free list head must be on free list");
        Some(id)
    }

    /// Unlinks a specific buffer from the free list in O(1).
    ///
    /// # Panics
    ///
    /// Panics with `msg` if `id` is not on the free list.
    fn free_unlink(&mut self, id: BufId, msg: &str) {
        let (prev, next) = {
            let b = &mut self.bufs[id.0 as usize];
            assert!(b.on_free, "{msg}");
            b.on_free = false;
            (b.lru_prev, b.lru_next)
        };
        if prev != LRU_NIL {
            self.bufs[prev as usize].lru_next = next;
        } else {
            self.lru_head = next;
        }
        if next != LRU_NIL {
            self.bufs[next as usize].lru_prev = prev;
        } else {
            self.lru_tail = prev;
        }
        self.free_len -= 1;
    }

    /// Number of pool buffers configured at construction.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Number of cached block identities currently resident — the
    /// occupancy gauge the profiler samples (`resident / pool_size`
    /// is the cache fill fraction).
    pub fn resident_count(&self) -> usize {
        self.hash.len()
    }

    /// Number of pool buffers holding delayed-write (dirty) data.
    pub fn dirty_count(&self) -> usize {
        (0..self.pool_size)
            .filter(|&i| self.bufs[i].flags.contains(BufFlags::DELWRI))
            .count()
    }

    fn buf(&self, id: BufId) -> &Buf {
        let b = &self.bufs[id.0 as usize];
        assert!(!b.dead, "access to destroyed buffer {id:?}");
        b
    }

    fn buf_mut(&mut self, id: BufId) -> &mut Buf {
        let b = &mut self.bufs[id.0 as usize];
        assert!(!b.dead, "access to destroyed buffer {id:?}");
        b
    }

    // ----- accessors used by the kernel and tests ------------------------

    /// Current flags of `id`.
    pub fn flags(&self, id: BufId) -> BufFlags {
        self.buf(id).flags
    }

    /// Shared handle to the buffer's data area.
    pub fn data(&self, id: BufId) -> BufData {
        self.buf(id).data.clone()
    }

    /// The `(dev, blkno)` identity, if the buffer has one.
    pub fn identity(&self, id: BufId) -> Option<(DevId, u64)> {
        let b = self.buf(id);
        b.dev.map(|d| (d, b.blkno))
    }

    /// Valid byte count of the buffer.
    pub fn bcount(&self, id: BufId) -> usize {
        self.buf(id).bcount
    }

    /// The splice descriptor/logical-block fields (§5.2.2).
    pub fn splice_ref(&self, id: BufId) -> Option<SpliceRef> {
        self.buf(id).splice
    }

    /// Sets the splice descriptor/logical-block fields.
    pub fn set_splice_ref(&mut self, id: BufId, r: Option<SpliceRef>) {
        self.buf_mut(id).splice = r;
    }

    /// Sets the completion handler tag and `B_CALL`.
    pub fn set_iodone(&mut self, id: BufId, tag: IodoneTag) {
        let b = self.buf_mut(id);
        b.iodone = Some(tag);
        b.flags.insert(BufFlags::CALL);
    }

    /// True if the block is present in the cache with valid contents.
    pub fn incore(&self, dev: DevId, blkno: u64) -> bool {
        self.hash
            .get(&(dev, blkno))
            .is_some_and(|&b| !self.buf(b).flags.contains(BufFlags::INVAL))
    }

    // ----- getblk / bread -------------------------------------------------

    /// Checks out the buffer for `(dev, blkno)`, recycling an LRU buffer on
    /// a miss. May emit flush I/O for dirty victims.
    pub fn getblk(
        &mut self,
        dev: DevId,
        blkno: u64,
        len: usize,
        effects: &mut Vec<Effect>,
    ) -> GetblkOutcome {
        assert!(len > 0 && len <= self.bufsize, "bad block length {len}");
        if let Some(&id) = self.hash.get(&(dev, blkno)) {
            let b = self.buf_mut(id);
            if b.flags.contains(BufFlags::BUSY) {
                b.flags.insert(BufFlags::WANTED);
                return GetblkOutcome::Busy(id);
            }
            b.flags.insert(BufFlags::BUSY);
            if b.bcount != len {
                // Reallocation to a different size invalidates contents.
                b.bcount = len;
                b.flags.remove(BufFlags::DONE);
            }
            // Remove from the free list.
            self.free_unlink(id, "non-busy cached buffer must be on free list");
            return GetblkOutcome::Held(id);
        }

        // Miss: recycle from the LRU free list, flushing dirty victims.
        loop {
            let Some(victim) = self.free_pop_front() else {
                return GetblkOutcome::NoBuffers;
            };
            if self.buf(victim).flags.contains(BufFlags::DELWRI) {
                // Write it back asynchronously and keep looking.
                self.stats.reclaim_flushes += 1;
                let (vdev, vblk, vlen) = {
                    let b = self.buf_mut(victim);
                    b.flags.remove(BufFlags::DELWRI);
                    b.flags.insert(BufFlags::BUSY | BufFlags::ASYNC);
                    (b.dev.expect("dirty buffer has identity"), b.blkno, b.bcount)
                };
                effects.push(Effect::StartIo {
                    buf: victim,
                    dev: vdev,
                    blkno: vblk,
                    len: vlen,
                    dir: IoDir::Write,
                });
                continue;
            }
            // Clean victim: evict and take over.
            let old = {
                let b = self.buf(victim);
                b.dev.map(|d| (d, b.blkno))
            };
            if let Some((edev, eblk)) = old {
                self.hash.remove(&(edev, eblk));
                self.stats.evictions += 1;
                if self.logging {
                    self.log.push(CacheEvent::Evict {
                        dev: edev,
                        blkno: eblk,
                    });
                }
            }
            let fresh_data = {
                let b = self.buf(victim);
                b.data.sharers() > 1
            };
            let bufsize = self.bufsize;
            let b = self.buf_mut(victim);
            if fresh_data {
                // The old data area is still aliased by a splice header;
                // give this buffer a private area instead of clobbering it.
                b.data = BufData::zeroed(bufsize);
            }
            b.dev = Some(dev);
            b.blkno = blkno;
            b.bcount = len;
            b.flags = BufFlags::BUSY;
            b.iodone = None;
            b.splice = None;
            self.hash.insert((dev, blkno), victim);
            return GetblkOutcome::Held(victim);
        }
    }

    /// Reads block `(dev, blkno)`: cache hit checks the buffer out with
    /// valid data; a miss starts the device read (caller must `biowait`).
    pub fn bread(
        &mut self,
        dev: DevId,
        blkno: u64,
        len: usize,
        effects: &mut Vec<Effect>,
    ) -> BreadOutcome {
        match self.getblk(dev, blkno, len, effects) {
            GetblkOutcome::Held(id) => {
                let flags = self.buf(id).flags;
                if flags.contains(BufFlags::DONE) && !flags.contains(BufFlags::INVAL) {
                    self.stats.hits += 1;
                    if self.logging {
                        self.log.push(CacheEvent::Hit { dev, blkno });
                    }
                    BreadOutcome::Hit(id)
                } else {
                    self.stats.misses += 1;
                    if self.logging {
                        self.log.push(CacheEvent::Miss { dev, blkno });
                    }
                    self.buf_mut(id).flags.insert(BufFlags::READ);
                    effects.push(Effect::StartIo {
                        buf: id,
                        dev,
                        blkno,
                        len,
                        dir: IoDir::Read,
                    });
                    BreadOutcome::Miss(id)
                }
            }
            GetblkOutcome::Busy(id) => BreadOutcome::Busy(id),
            GetblkOutcome::NoBuffers => BreadOutcome::NoBuffers,
        }
    }

    /// The paper's modified `bread` (§5.2.1): like [`Cache::bread`] but the
    /// completion invokes handler `tag` instead of waking a sleeping
    /// process — "a call to the new `bread()` will schedule a read request
    /// and return immediately, instead of blocking in `biowait()`".
    pub fn bread_call(
        &mut self,
        dev: DevId,
        blkno: u64,
        len: usize,
        tag: IodoneTag,
        sref: SpliceRef,
        effects: &mut Vec<Effect>,
    ) -> BreadOutcome {
        let out = self.bread(dev, blkno, len, effects);
        if let BreadOutcome::Miss(id) | BreadOutcome::Hit(id) = out {
            let b = self.buf_mut(id);
            b.splice = Some(sref);
            if matches!(out, BreadOutcome::Miss(_)) {
                b.iodone = Some(tag);
                b.flags.insert(BufFlags::CALL);
            }
        }
        out
    }

    /// Starts an asynchronous read-ahead of `(dev, blkno)` if it is not
    /// already cached and a buffer is free (the `breada` side path used by
    /// the `read(2)` fast path). Returns the buffer if a transfer started.
    pub fn start_readahead(
        &mut self,
        dev: DevId,
        blkno: u64,
        len: usize,
        effects: &mut Vec<Effect>,
    ) -> Option<BufId> {
        if self.incore(dev, blkno) || self.free_len == 0 {
            return None;
        }
        match self.getblk(dev, blkno, len, effects) {
            GetblkOutcome::Held(id) => {
                if self.buf(id).flags.contains(BufFlags::DONE) {
                    // Raced into validity; just release it.
                    self.brelse(id, effects);
                    return None;
                }
                self.stats.readaheads += 1;
                self.buf_mut(id)
                    .flags
                    .insert(BufFlags::READ | BufFlags::ASYNC);
                effects.push(Effect::StartIo {
                    buf: id,
                    dev,
                    blkno,
                    len,
                    dir: IoDir::Read,
                });
                Some(id)
            }
            _ => None,
        }
    }

    // ----- write paths ----------------------------------------------------

    /// Synchronous write: starts the transfer; the caller must `biowait`
    /// and then release the buffer.
    pub fn bwrite(&mut self, id: BufId, effects: &mut Vec<Effect>) {
        let (dev, blkno, len) = self.write_common(id);
        effects.push(Effect::StartIo {
            buf: id,
            dev,
            blkno,
            len,
            dir: IoDir::Write,
        });
    }

    /// Asynchronous write (`bawrite`): starts the transfer and releases the
    /// buffer automatically at completion.
    pub fn bawrite(&mut self, id: BufId, effects: &mut Vec<Effect>) {
        self.buf_mut(id).flags.insert(BufFlags::ASYNC);
        let (dev, blkno, len) = self.write_common(id);
        effects.push(Effect::StartIo {
            buf: id,
            dev,
            blkno,
            len,
            dir: IoDir::Write,
        });
    }

    /// Asynchronous write whose completion runs handler `tag` (the splice
    /// write side: `b_iodone` assigned, then `bawrite`, §5.2.2).
    pub fn bawrite_call(&mut self, id: BufId, tag: IodoneTag, effects: &mut Vec<Effect>) {
        {
            let b = self.buf_mut(id);
            b.iodone = Some(tag);
            b.flags.insert(BufFlags::CALL);
        }
        let (dev, blkno, len) = self.write_common(id);
        effects.push(Effect::StartIo {
            buf: id,
            dev,
            blkno,
            len,
            dir: IoDir::Write,
        });
    }

    /// Delayed write (`bdwrite`): mark dirty and release without I/O; the
    /// data goes to the device when the buffer is reclaimed or flushed.
    pub fn bdwrite(&mut self, id: BufId, effects: &mut Vec<Effect>) {
        {
            let b = self.buf_mut(id);
            assert!(b.pool, "cannot delay-write a shared splice header");
            b.flags.insert(BufFlags::DELWRI | BufFlags::DONE);
        }
        self.brelse(id, effects);
    }

    fn write_common(&mut self, id: BufId) -> (DevId, u64, usize) {
        let b = self.buf_mut(id);
        assert!(b.flags.contains(BufFlags::BUSY), "write of unheld buffer");
        b.flags
            .remove(BufFlags::DELWRI | BufFlags::DONE | BufFlags::READ);
        (
            b.dev.expect("write needs a device identity"),
            b.blkno,
            b.bcount,
        )
    }

    // ----- release / completion -------------------------------------------

    /// Releases a held buffer back to the cache (`brelse`).
    pub fn brelse(&mut self, id: BufId, effects: &mut Vec<Effect>) {
        let was_empty = self.free_len == 0;
        let b = &mut self.bufs[id.0 as usize];
        assert!(!b.dead, "double release of {id:?}");
        assert!(b.flags.contains(BufFlags::BUSY), "release of unheld buffer");
        if b.flags.contains(BufFlags::WANTED) {
            effects.push(Effect::Wakeup { buf: id });
        }
        b.flags
            .remove(BufFlags::BUSY | BufFlags::WANTED | BufFlags::ASYNC | BufFlags::CALL);
        b.iodone = None;

        if !b.pool {
            // Splice write header: restore of the saved data pointer means
            // the header owns nothing; destroy it.
            let key = b.dev.map(|d| (d, b.blkno));
            b.dead = true;
            b.dev = None;
            b.splice = None;
            b.data = BufData::zeroed(0);
            if let Some(key) = key {
                if self.hash.get(&key) == Some(&id) {
                    self.hash.remove(&key);
                }
            }
            self.free_headers.push(id);
            return;
        }

        let invalid = b.flags.contains(BufFlags::INVAL)
            || b.flags.contains(BufFlags::ERROR)
            || !b.flags.contains(BufFlags::DONE);
        if invalid {
            // Useless contents: forget identity, recycle first.
            let key = b.dev.map(|d| (d, b.blkno));
            b.dev = None;
            b.flags = BufFlags::empty();
            b.splice = None;
            if let Some(key) = key {
                if self.hash.get(&key) == Some(&id) {
                    self.hash.remove(&key);
                }
            }
            self.free_push_front(id);
        } else {
            b.splice = None;
            self.free_push_back(id);
        }
        if was_empty && self.free_len > 0 {
            effects.push(Effect::BuffersAvailable);
        }
    }

    /// Marks the buffer's I/O complete (`biodone`). Returns the completion
    /// handler tag if `B_CALL` was set — the kernel must run that handler,
    /// and the buffer stays checked out for it. Otherwise async buffers are
    /// released and sleepers woken.
    pub fn biodone(
        &mut self,
        id: BufId,
        error: bool,
        effects: &mut Vec<Effect>,
    ) -> Option<IodoneTag> {
        let call = {
            let b = self.buf_mut(id);
            assert!(b.flags.contains(BufFlags::BUSY), "biodone on idle buffer");
            b.flags.insert(BufFlags::DONE);
            b.flags.remove(BufFlags::READ);
            if error {
                b.flags.insert(BufFlags::ERROR);
            }
            b.flags.contains(BufFlags::CALL)
        };
        if call {
            self.stats.bcall_completions += 1;
            let b = self.buf_mut(id);
            b.flags.remove(BufFlags::CALL);
            let tag = b.iodone.take().expect("B_CALL without b_iodone");
            return Some(tag);
        }
        if self.buf(id).flags.contains(BufFlags::ASYNC) {
            self.brelse(id, effects);
            return None;
        }
        // Synchronous I/O: wake the biowait sleeper(s).
        let b = self.buf_mut(id);
        if b.flags.contains(BufFlags::WANTED) {
            b.flags.remove(BufFlags::WANTED);
            effects.push(Effect::Wakeup { buf: id });
        } else {
            // biowait may not have gone to sleep yet; emit anyway so the
            // kernel's sleep bookkeeping stays simple.
            effects.push(Effect::Wakeup { buf: id });
        }
        None
    }

    /// True once the buffer's pending I/O has completed (`biowait` test).
    pub fn io_done(&self, id: BufId) -> bool {
        self.buf(id).flags.contains(BufFlags::DONE)
    }

    /// Marks a held buffer invalid so its contents are discarded on
    /// release.
    pub fn set_invalid(&mut self, id: BufId) {
        self.buf_mut(id).flags.insert(BufFlags::INVAL);
    }

    // ----- splice write headers -------------------------------------------

    /// The paper's modified `getblk` (§5.2.2): allocates a buffer *header*
    /// for the destination block without allocating data memory; the
    /// header's data pointer aliases `data` (the read-side buffer's area).
    ///
    /// Returns `None` if the destination block is currently checked out
    /// (the splice must retry); any clean cached copy of the destination
    /// block is invalidated so the cache never serves stale data.
    pub fn alloc_shared_header(
        &mut self,
        dev: DevId,
        blkno: u64,
        data: BufData,
        len: usize,
        sref: SpliceRef,
    ) -> Option<BufId> {
        if let Some(&existing) = self.hash.get(&(dev, blkno)) {
            let b = self.buf(existing);
            if b.flags.contains(BufFlags::BUSY) {
                return None;
            }
            // Invalidate the stale cached copy (it is about to be
            // overwritten on disk by the splice).
            self.free_unlink(existing, "non-busy cached buffer must be on free list");
            self.free_push_front(existing);
            let b = &mut self.bufs[existing.0 as usize];
            b.dev = None;
            b.flags = BufFlags::empty();
            self.hash.remove(&(dev, blkno));
        }

        let id = if let Some(id) = self.free_headers.pop() {
            id
        } else {
            self.bufs.push(Buf {
                dev: None,
                blkno: 0,
                bcount: 0,
                flags: BufFlags::empty(),
                data: BufData::zeroed(0),
                iodone: None,
                splice: None,
                pool: false,
                dead: true,
                lru_prev: LRU_NIL,
                lru_next: LRU_NIL,
                on_free: false,
            });
            BufId((self.bufs.len() - 1) as u32)
        };
        let b = &mut self.bufs[id.0 as usize];
        b.dead = false;
        b.dev = Some(dev);
        b.blkno = blkno;
        b.bcount = len;
        b.flags = BufFlags::BUSY;
        b.data = data;
        b.iodone = None;
        b.splice = Some(sref);
        self.hash.insert((dev, blkno), id);
        Some(id)
    }

    // ----- maintenance -----------------------------------------------------

    /// All dirty (delayed-write), not-busy buffers of `dev` — the `fsync` /
    /// `update` work list.
    pub fn dirty_bufs(&self, dev: DevId) -> Vec<BufId> {
        (0..self.pool_size)
            .map(|i| BufId(i as u32))
            .filter(|&id| {
                let b = &self.bufs[id.0 as usize];
                b.dev == Some(dev)
                    && b.flags.contains(BufFlags::DELWRI)
                    && !b.flags.contains(BufFlags::BUSY)
            })
            .collect()
    }

    /// Checks out a specific dirty buffer for flushing (fsync path).
    /// Returns false if it is busy or no longer dirty.
    pub fn claim_for_flush(&mut self, id: BufId) -> bool {
        let b = self.buf_mut(id);
        if b.flags.contains(BufFlags::BUSY) || !b.flags.contains(BufFlags::DELWRI) {
            return false;
        }
        b.flags.insert(BufFlags::BUSY);
        self.free_unlink(id, "non-busy buffer must be on free list");
        true
    }

    /// Drops the cached copies of specific blocks — the truncate/unlink
    /// path: when a file's blocks are freed, their cached contents must
    /// not survive to alias a future owner of the same physical blocks.
    ///
    /// * Clean idle buffers are recycled immediately.
    /// * Dirty buffers are *discarded* — the file's data is being thrown
    ///   away, so writing it back would be wasted (and wrong once the
    ///   block is reallocated).
    /// * Busy buffers (I/O in flight, or held by a splice) are marked
    ///   invalid and lose their identity now; they die when released.
    ///   Any in-flight write lands on a freed block, which is harmless
    ///   unless that block is reallocated and rewritten within the same
    ///   request window — the classic UNIX truncate-during-I/O hazard.
    ///
    /// Returns `(purged, detached_busy)` counts.
    pub fn purge_blocks(
        &mut self,
        dev: DevId,
        blknos: impl Iterator<Item = u64>,
    ) -> (usize, usize) {
        let mut purged = 0;
        let mut detached = 0;
        for blkno in blknos {
            let Some(&id) = self.hash.get(&(dev, blkno)) else {
                continue;
            };
            let b = &mut self.bufs[id.0 as usize];
            if b.flags.contains(BufFlags::BUSY) {
                // Detach: the holder finishes with a buffer that no longer
                // names a live block; release discards it.
                b.flags.insert(BufFlags::INVAL);
                self.hash.remove(&(dev, blkno));
                detached += 1;
                continue;
            }
            b.dev = None;
            b.flags = BufFlags::empty();
            b.splice = None;
            self.hash.remove(&(dev, blkno));
            // Move to the head of the free list for quick reuse.
            self.free_unlink(id, "non-busy buffer must be on free list");
            self.free_push_front(id);
            purged += 1;
        }
        (purged, detached)
    }

    /// Drops every clean cached block (cold-cache reset between
    /// experiments, §6.1's "read cache cold start").
    ///
    /// # Panics
    ///
    /// Panics if any buffer is busy or dirty — sync first.
    pub fn invalidate_all(&mut self) {
        for i in 0..self.pool_size {
            let b = &mut self.bufs[i];
            assert!(
                !b.flags.contains(BufFlags::BUSY),
                "invalidate_all with busy buffer {i}"
            );
            assert!(
                !b.flags.contains(BufFlags::DELWRI),
                "invalidate_all with dirty buffer {i}"
            );
            b.dev = None;
            b.flags = BufFlags::empty();
            b.splice = None;
        }
        self.hash.clear();
    }

    /// Structural invariants; called by tests after every operation
    /// sequence.
    ///
    /// # Panics
    ///
    /// Panics (with a description) on the first violated invariant.
    pub fn check_invariants(&self) {
        // Free list: unique, pool-only, not busy, links intact.
        let mut seen = std::collections::HashSet::new();
        let mut cursor = self.lru_head;
        let mut prev = LRU_NIL;
        while cursor != LRU_NIL {
            let id = BufId(cursor);
            assert!(seen.insert(id), "duplicate {id:?} on free list");
            let b = &self.bufs[id.0 as usize];
            assert!(b.on_free, "linked {id:?} not marked on_free");
            assert_eq!(b.lru_prev, prev, "broken lru_prev link at {id:?}");
            assert!(b.pool, "non-pool {id:?} on free list");
            assert!(!b.dead, "dead {id:?} on free list");
            assert!(
                !b.flags.contains(BufFlags::BUSY),
                "busy {id:?} on free list"
            );
            prev = cursor;
            cursor = b.lru_next;
        }
        assert_eq!(self.lru_tail, prev, "lru_tail does not match list walk");
        assert_eq!(self.free_len, seen.len(), "free_len does not match list");
        // Every live pool buffer is busy xor free.
        for i in 0..self.pool_size {
            let id = BufId(i as u32);
            let b = &self.bufs[i];
            let on_free = seen.contains(&id);
            assert_eq!(b.on_free, on_free, "on_free flag mismatch for {id:?}");
            let busy = b.flags.contains(BufFlags::BUSY);
            assert!(
                on_free != busy,
                "pool {id:?} busy={busy} on_free={on_free} (must be exactly one)"
            );
        }
        // Hash entries point at buffers with matching identity.
        for (&(dev, blkno), &id) in &self.hash {
            let b = &self.bufs[id.0 as usize];
            assert!(!b.dead, "hash points at dead {id:?}");
            assert_eq!(b.dev, Some(dev), "hash dev mismatch for {id:?}");
            assert_eq!(b.blkno, blkno, "hash blkno mismatch for {id:?}");
        }
        // Live non-pool headers are always busy (they exist only while a
        // splice write is in flight).
        for (i, b) in self.bufs.iter().enumerate().skip(self.pool_size) {
            if !b.dead {
                assert!(
                    b.flags.contains(BufFlags::BUSY),
                    "idle live splice header {i}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEV: DevId = DevId(1);
    const BS: usize = 8192;

    fn take_start_io(effects: &[Effect]) -> Vec<(BufId, IoDir, u64)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::StartIo {
                    buf, dir, blkno, ..
                } => Some((*buf, *dir, *blkno)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(8, BS);
        let mut fx = Vec::new();
        let out = c.bread(DEV, 5, BS, &mut fx);
        let BreadOutcome::Miss(id) = out else {
            panic!("expected miss")
        };
        assert_eq!(take_start_io(&fx), vec![(id, IoDir::Read, 5)]);
        // Device completes; no handler, sync read → wakeup.
        fx.clear();
        assert_eq!(c.biodone(id, false, &mut fx), None);
        assert!(c.io_done(id));
        c.brelse(id, &mut fx);
        // Second read hits.
        fx.clear();
        let out = c.bread(DEV, 5, BS, &mut fx);
        assert!(matches!(out, BreadOutcome::Hit(_)));
        assert!(take_start_io(&fx).is_empty());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        c.check_invariants();
    }

    #[test]
    fn busy_collision_sets_wanted() {
        let mut c = Cache::new(8, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 5, BS, &mut fx) else {
            panic!()
        };
        let out = c.bread(DEV, 5, BS, &mut fx);
        assert_eq!(out, BreadOutcome::Busy(id));
        assert!(c.flags(id).contains(BufFlags::WANTED));
        // Completion wakes the sleeper.
        fx.clear();
        c.biodone(id, false, &mut fx);
        assert!(fx.contains(&Effect::Wakeup { buf: id }));
        c.check_invariants();
    }

    #[test]
    fn cache_exhaustion_reports_no_buffers() {
        let mut c = Cache::new(2, BS);
        let mut fx = Vec::new();
        let a = c.bread(DEV, 0, BS, &mut fx);
        let b = c.bread(DEV, 1, BS, &mut fx);
        assert!(matches!(a, BreadOutcome::Miss(_)));
        assert!(matches!(b, BreadOutcome::Miss(_)));
        assert_eq!(c.bread(DEV, 2, BS, &mut fx), BreadOutcome::NoBuffers);
        c.check_invariants();
    }

    #[test]
    fn release_makes_buffers_available() {
        let mut c = Cache::new(1, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 0, BS, &mut fx) else {
            panic!()
        };
        c.biodone(id, false, &mut fx);
        fx.clear();
        c.brelse(id, &mut fx);
        assert!(fx.contains(&Effect::BuffersAvailable));
        c.check_invariants();
    }

    #[test]
    fn lru_evicts_oldest_clean_block() {
        let mut c = Cache::new(2, BS);
        let mut fx = Vec::new();
        for blk in 0..2u64 {
            let BreadOutcome::Miss(id) = c.bread(DEV, blk, BS, &mut fx) else {
                panic!()
            };
            c.biodone(id, false, &mut fx);
            c.brelse(id, &mut fx);
        }
        // Touch block 0 so block 1 becomes LRU.
        let BreadOutcome::Hit(id) = c.bread(DEV, 0, BS, &mut fx) else {
            panic!()
        };
        c.brelse(id, &mut fx);
        // A new block must evict block 1, keeping 0.
        let BreadOutcome::Miss(id) = c.bread(DEV, 9, BS, &mut fx) else {
            panic!()
        };
        c.biodone(id, false, &mut fx);
        c.brelse(id, &mut fx);
        assert!(c.incore(DEV, 0));
        assert!(!c.incore(DEV, 1));
        c.check_invariants();
    }

    #[test]
    fn dirty_victim_is_flushed_not_lost() {
        let mut c = Cache::new(1, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 0, BS, &mut fx) else {
            panic!()
        };
        c.biodone(id, false, &mut fx);
        c.data(id).bytes_mut()[0] = 42;
        c.bdwrite(id, &mut fx);
        // Reusing the only buffer forces the flush first.
        fx.clear();
        let out = c.bread(DEV, 7, BS, &mut fx);
        assert_eq!(out, BreadOutcome::NoBuffers, "victim busy flushing");
        let ios = take_start_io(&fx);
        assert_eq!(ios, vec![(id, IoDir::Write, 0)]);
        assert_eq!(c.stats().reclaim_flushes, 1);
        // Flush completes (ASYNC → auto-release), then the retry succeeds.
        fx.clear();
        assert_eq!(c.biodone(id, false, &mut fx), None);
        assert!(fx.contains(&Effect::BuffersAvailable));
        let out = c.bread(DEV, 7, BS, &mut fx);
        assert!(matches!(out, BreadOutcome::Miss(_)));
        c.check_invariants();
    }

    #[test]
    fn bdwrite_keeps_data_valid_in_cache() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 3, BS, &mut fx) else {
            panic!()
        };
        c.biodone(id, false, &mut fx);
        c.data(id).bytes_mut()[7] = 9;
        c.bdwrite(id, &mut fx);
        let BreadOutcome::Hit(id2) = c.bread(DEV, 3, BS, &mut fx) else {
            panic!("dirty block must still hit")
        };
        assert_eq!(c.data(id2).bytes()[7], 9);
        c.check_invariants();
    }

    #[test]
    fn bread_call_returns_tag_on_completion() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        let tag = IodoneTag(77);
        let sref = SpliceRef { desc: 1, lblk: 4 };
        let BreadOutcome::Miss(id) = c.bread_call(DEV, 10, BS, tag, sref, &mut fx) else {
            panic!()
        };
        assert_eq!(c.splice_ref(id), Some(sref));
        fx.clear();
        let got = c.biodone(id, false, &mut fx);
        assert_eq!(got, Some(tag));
        // Buffer stays busy for the handler.
        assert!(c.flags(id).contains(BufFlags::BUSY));
        c.check_invariants();
    }

    #[test]
    fn shared_header_aliases_data_and_dies_on_release() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(src) = c.bread(DEV, 0, BS, &mut fx) else {
            panic!()
        };
        c.biodone(src, false, &mut fx);
        let data = c.data(src);
        let dst_dev = DevId(2);
        let sref = SpliceRef { desc: 1, lblk: 0 };
        let hdr = c
            .alloc_shared_header(dst_dev, 99, data.clone(), BS, sref)
            .expect("fresh destination block");
        assert!(c.data(hdr).shares_with(&data), "no copy between buffers");
        // Async write with completion handler.
        c.bawrite_call(hdr, IodoneTag(5), &mut fx);
        let tag = c.biodone(hdr, false, &mut fx);
        assert_eq!(tag, Some(IodoneTag(5)));
        // Handler frees both.
        c.brelse(hdr, &mut fx);
        c.brelse(src, &mut fx);
        assert!(!c.incore(dst_dev, 99), "splice header must not linger");
        c.check_invariants();
    }

    #[test]
    fn shared_header_invalidates_stale_cached_destination() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        // Destination block cached with old contents.
        let BreadOutcome::Miss(old) = c.bread(DEV, 50, BS, &mut fx) else {
            panic!()
        };
        c.biodone(old, false, &mut fx);
        c.brelse(old, &mut fx);
        assert!(c.incore(DEV, 50));
        // Splice claims the destination.
        let data = BufData::from_vec(vec![1u8; BS]);
        let hdr = c
            .alloc_shared_header(DEV, 50, data, BS, SpliceRef { desc: 0, lblk: 0 })
            .unwrap();
        // Old copy is gone; the header owns the identity.
        assert_eq!(c.identity(hdr), Some((DEV, 50)));
        c.check_invariants();
    }

    #[test]
    fn shared_header_defers_when_destination_busy() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(_) = c.bread(DEV, 50, BS, &mut fx) else {
            panic!()
        };
        // Still busy (no biodone yet).
        let data = BufData::from_vec(vec![1u8; BS]);
        assert!(c
            .alloc_shared_header(DEV, 50, data, BS, SpliceRef { desc: 0, lblk: 0 })
            .is_none());
        c.check_invariants();
    }

    #[test]
    fn readahead_populates_cache_asynchronously() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        let ra = c.start_readahead(DEV, 8, BS, &mut fx).expect("started");
        assert_eq!(take_start_io(&fx), vec![(ra, IoDir::Read, 8)]);
        // Async completion releases it with valid contents.
        fx.clear();
        assert_eq!(c.biodone(ra, false, &mut fx), None);
        assert!(c.incore(DEV, 8));
        let out = c.bread(DEV, 8, BS, &mut fx);
        assert!(matches!(out, BreadOutcome::Hit(_)));
        assert_eq!(c.stats().readaheads, 1);
        c.check_invariants();
    }

    #[test]
    fn readahead_skips_cached_and_exhausted() {
        let mut c = Cache::new(1, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 0, BS, &mut fx) else {
            panic!()
        };
        // No free buffer: no read-ahead.
        assert!(c.start_readahead(DEV, 1, BS, &mut fx).is_none());
        c.biodone(id, false, &mut fx);
        c.brelse(id, &mut fx);
        // Cached: no read-ahead.
        assert!(c.start_readahead(DEV, 0, BS, &mut fx).is_none());
        c.check_invariants();
    }

    #[test]
    fn error_io_discards_buffer() {
        let mut c = Cache::new(2, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 0, BS, &mut fx) else {
            panic!()
        };
        c.biodone(id, true, &mut fx);
        c.brelse(id, &mut fx);
        assert!(!c.incore(DEV, 0), "errored block must not be cached");
        c.check_invariants();
    }

    #[test]
    fn fsync_worklist_and_claim() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        for blk in [1u64, 2] {
            let BreadOutcome::Miss(id) = c.bread(DEV, blk, BS, &mut fx) else {
                panic!()
            };
            c.biodone(id, false, &mut fx);
            c.bdwrite(id, &mut fx);
        }
        let dirty = c.dirty_bufs(DEV);
        assert_eq!(dirty.len(), 2);
        assert!(c.claim_for_flush(dirty[0]));
        assert!(!c.claim_for_flush(dirty[0]), "already claimed");
        c.check_invariants();
    }

    #[test]
    fn invalidate_all_resets_clean_cache() {
        let mut c = Cache::new(2, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 0, BS, &mut fx) else {
            panic!()
        };
        c.biodone(id, false, &mut fx);
        c.brelse(id, &mut fx);
        c.invalidate_all();
        assert!(!c.incore(DEV, 0));
        c.check_invariants();
    }

    #[test]
    #[should_panic(expected = "dirty buffer")]
    fn invalidate_all_rejects_dirty() {
        let mut c = Cache::new(2, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 0, BS, &mut fx) else {
            panic!()
        };
        c.biodone(id, false, &mut fx);
        c.bdwrite(id, &mut fx);
        c.invalidate_all();
    }

    #[test]
    fn getblk_resize_invalidates_contents() {
        let mut c = Cache::new(2, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 0, BS, &mut fx) else {
            panic!()
        };
        c.biodone(id, false, &mut fx);
        c.brelse(id, &mut fx);
        let GetblkOutcome::Held(id2) = c.getblk(DEV, 0, 4096, &mut fx) else {
            panic!()
        };
        assert_eq!(id, id2);
        assert!(!c.flags(id2).contains(BufFlags::DONE));
        assert_eq!(c.bcount(id2), 4096);
        c.check_invariants();
    }

    #[test]
    fn purge_blocks_forgets_clean_blocks() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        for blk in [3u64, 4] {
            let BreadOutcome::Miss(id) = c.bread(DEV, blk, BS, &mut fx) else {
                panic!()
            };
            c.biodone(id, false, &mut fx);
            c.brelse(id, &mut fx);
        }
        assert_eq!(c.purge_blocks(DEV, [3u64, 4, 5].into_iter()), (2, 0));
        assert!(!c.incore(DEV, 3));
        assert!(!c.incore(DEV, 4));
        c.check_invariants();
    }

    #[test]
    fn purge_blocks_discards_dirty_data() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        let BreadOutcome::Miss(id) = c.bread(DEV, 3, BS, &mut fx) else {
            panic!()
        };
        c.biodone(id, false, &mut fx);
        c.bdwrite(id, &mut fx);
        // The file is being truncated: the dirty data goes with it, with
        // no write-back.
        assert_eq!(c.purge_blocks(DEV, [3u64].into_iter()), (1, 0));
        assert!(!c.incore(DEV, 3));
        assert!(c.dirty_bufs(DEV).is_empty(), "no zombie delayed write");
        c.check_invariants();
    }

    #[test]
    fn purge_blocks_detaches_busy_buffers() {
        let mut c = Cache::new(4, BS);
        let mut fx = Vec::new();
        // A read in flight when its block is freed.
        let BreadOutcome::Miss(id) = c.bread(DEV, 3, BS, &mut fx) else {
            panic!()
        };
        assert_eq!(c.purge_blocks(DEV, [3u64].into_iter()), (0, 1));
        // Completion + release discard it; nothing lingers in the hash.
        c.biodone(id, false, &mut fx);
        c.brelse(id, &mut fx);
        assert!(!c.incore(DEV, 3));
        c.check_invariants();
    }
}
