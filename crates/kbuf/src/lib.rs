#![warn(missing_docs)]

//! The 4.2BSD-style buffer cache.
//!
//! This is the substrate the paper's splice implementation modifies (§5.1):
//! fixed-size cache buffers identified by `(device, physical block)`,
//! looked up through a hash table, recycled through an LRU free list, with
//! the classic entry points — [`Cache::bread`], [`Cache::getblk`],
//! [`Cache::bwrite`], [`Cache::bawrite`], [`Cache::bdwrite`],
//! [`Cache::brelse`], [`Cache::biodone`] — plus the completion-handler
//! mechanism (`B_CALL` / `b_iodone`) splice uses to chain I/O without a
//! process context, and the shared-data-area header allocation
//! ([`Cache::alloc_shared_header`]) that lets the write side reuse the read
//! side's data without a copy (§5.2.2).
//!
//! The cache is a pure state machine: operations mutate cache state and
//! return [`Effect`]s (start a device I/O, wake sleepers) for the kernel to
//! carry out. It never calls upward, which keeps it independently testable
//! and keeps the crate graph acyclic.

pub mod cache;
pub mod data;
pub mod flags;

pub use cache::{BreadOutcome, Cache, CacheEvent, CacheStats, Effect, GetblkOutcome, IoDir};
pub use data::BufData;
pub use flags::BufFlags;

/// Index of a buffer header (pool buffer or splice header).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BufId(pub u32);

/// A device as the buffer cache sees it: an opaque identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DevId(pub u32);

/// Opaque completion-handler tag (`b_iodone`); the kernel interprets it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IodoneTag(pub u64);

/// The splice bookkeeping the paper adds to the buffer header (§5.2.2):
/// "New fields in the buffer header structure indicate the splice
/// descriptor and logical block number a buffer's data is associated with."
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpliceRef {
    /// Splice descriptor identity.
    pub desc: u64,
    /// Logical block number within the spliced file.
    pub lblk: u64,
}
