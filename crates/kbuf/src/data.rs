//! Shared buffer data areas.
//!
//! The key trick of the paper's write side (§5.2.2): "The data pointer in
//! the new buffer header is saved and altered to point to the same address
//! the data pointer in the read-side buffer does, so both buffers share a
//! common data area. We thus avoid copying between cache buffers."
//!
//! [`BufData`] models that data pointer: a cheaply clonable, shared,
//! interior-mutable byte area. Sharing is observable (`shares_with`), which
//! lets tests assert that a splice moved data without a cache-to-cache copy
//! while a read/write copy did not.

use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

/// A reference-counted byte area used as a buffer's data pointer.
#[derive(Clone)]
pub struct BufData(Rc<RefCell<Vec<u8>>>);

impl BufData {
    /// Allocates a zeroed data area of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        BufData(Rc::new(RefCell::new(vec![0u8; len])))
    }

    /// Wraps existing bytes.
    pub fn from_vec(v: Vec<u8>) -> Self {
        BufData(Rc::new(RefCell::new(v)))
    }

    /// Length of the data area.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when the data area is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable view of the bytes.
    pub fn bytes(&self) -> Ref<'_, Vec<u8>> {
        self.0.borrow()
    }

    /// Mutable view of the bytes.
    pub fn bytes_mut(&self) -> RefMut<'_, Vec<u8>> {
        self.0.borrow_mut()
    }

    /// Replaces the contents with `src` (a modelled `bcopy` target — the
    /// caller is responsible for charging the copy cost).
    pub fn fill_from(&self, src: &[u8]) {
        let mut b = self.0.borrow_mut();
        b.clear();
        b.extend_from_slice(src);
    }

    /// Copies the contents out (again, the caller charges the cost).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.borrow().clone()
    }

    /// True if `self` and `other` are the *same* data area — i.e. the
    /// splice shared-pointer case.
    pub fn shares_with(&self, other: &BufData) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }

    /// Number of headers currently sharing this area.
    pub fn sharers(&self) -> usize {
        Rc::strong_count(&self.0)
    }
}

impl std::fmt::Debug for BufData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BufData(len={}, sharers={})", self.len(), self.sharers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_allocation() {
        let d = BufData::zeroed(16);
        assert_eq!(d.len(), 16);
        assert!(d.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn sharing_is_aliasing() {
        let a = BufData::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        assert!(a.shares_with(&b));
        b.bytes_mut()[0] = 9;
        assert_eq!(a.bytes()[0], 9, "shared areas alias");
        assert_eq!(a.sharers(), 2);
    }

    #[test]
    fn distinct_areas_do_not_share() {
        let a = BufData::from_vec(vec![1]);
        let b = BufData::from_vec(vec![1]);
        assert!(!a.shares_with(&b));
    }

    #[test]
    fn fill_from_replaces() {
        let d = BufData::zeroed(4);
        d.fill_from(&[7, 8]);
        assert_eq!(*d.bytes(), vec![7, 8]);
        assert_eq!(d.to_vec(), vec![7, 8]);
    }
}
