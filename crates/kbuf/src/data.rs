//! Shared buffer data areas, recycled through a free-list arena.
//!
//! The key trick of the paper's write side (§5.2.2): "The data pointer in
//! the new buffer header is saved and altered to point to the same address
//! the data pointer in the read-side buffer does, so both buffers share a
//! common data area. We thus avoid copying between cache buffers."
//!
//! [`BufData`] models that data pointer: a cheaply clonable, shared,
//! interior-mutable byte area. Sharing is observable (`shares_with`), which
//! lets tests assert that a splice moved data without a cache-to-cache copy
//! while a read/write copy did not.
//!
//! # Arena
//!
//! Steady-state splice traffic retires one data area and allocates one
//! fresh one per spliced block (the destination header keeps aliasing the
//! source's area, so `getblk` must give the source a new one). Rather than
//! hitting the allocator each time, dead areas — last reference dropped —
//! are parked on a thread-local free list keyed by block size, and
//! [`BufData::zeroed`] re-zeroes and reuses a parked area of the same size
//! when one exists. The simulation is single-threaded by design, so a
//! thread-local pool is exact; recycling is capped per size class so the
//! arena cannot outgrow the working set. Observable behaviour (zeroed
//! contents, sharing, lengths) is identical to plain allocation — the
//! differential property suite in `tests/props.rs` pins that.

use std::cell::{Ref, RefCell, RefMut};
use std::collections::HashMap;
use std::rc::Rc;

/// Smallest data area worth pooling: tiny and empty areas (dead headers,
/// odd-sized device scratch) go straight to the allocator.
const POOL_MIN_LEN: usize = 512;
/// Parked areas retained per size class; beyond this, dead areas are freed.
const POOL_CAP_PER_CLASS: usize = 1024;

#[derive(Default)]
struct Pool {
    classes: HashMap<usize, Vec<Rc<RefCell<Vec<u8>>>>>,
    reused: u64,
    recycled: u64,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// `(reused, recycled)` counters for this thread's arena: areas handed back
/// out by [`BufData::zeroed`], and dead areas parked for reuse. Test hook.
pub fn pool_counters() -> (u64, u64) {
    POOL.with(|p| {
        let p = p.borrow();
        (p.reused, p.recycled)
    })
}

/// A reference-counted byte area used as a buffer's data pointer.
pub struct BufData(Rc<RefCell<Vec<u8>>>);

impl Clone for BufData {
    fn clone(&self) -> Self {
        BufData(Rc::clone(&self.0))
    }
}

impl Drop for BufData {
    fn drop(&mut self) {
        // Last handle to a poolable area: park it for reuse instead of
        // freeing. (`try_with` so thread teardown never panics.)
        if Rc::strong_count(&self.0) != 1 {
            return;
        }
        let len = self.0.borrow().len();
        if len < POOL_MIN_LEN {
            return;
        }
        let _ = POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            let class = p.classes.entry(len).or_default();
            if class.len() < POOL_CAP_PER_CLASS {
                class.push(Rc::clone(&self.0));
                p.recycled += 1;
            }
        });
    }
}

impl BufData {
    /// Allocates a zeroed data area of `len` bytes, reusing a same-sized
    /// area from the arena when one is parked there.
    pub fn zeroed(len: usize) -> Self {
        if len >= POOL_MIN_LEN {
            let parked = POOL.with(|p| {
                let mut p = p.borrow_mut();
                let area = p.classes.get_mut(&len).and_then(Vec::pop);
                if area.is_some() {
                    p.reused += 1;
                }
                area
            });
            if let Some(area) = parked {
                area.borrow_mut().fill(0);
                return BufData(area);
            }
        }
        BufData(Rc::new(RefCell::new(vec![0u8; len])))
    }

    /// Wraps existing bytes.
    pub fn from_vec(v: Vec<u8>) -> Self {
        BufData(Rc::new(RefCell::new(v)))
    }

    /// Length of the data area.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when the data area is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable view of the bytes.
    pub fn bytes(&self) -> Ref<'_, Vec<u8>> {
        self.0.borrow()
    }

    /// Mutable view of the bytes.
    pub fn bytes_mut(&self) -> RefMut<'_, Vec<u8>> {
        self.0.borrow_mut()
    }

    /// Replaces the contents with `src` (a modelled `bcopy` target — the
    /// caller is responsible for charging the copy cost).
    pub fn fill_from(&self, src: &[u8]) {
        let mut b = self.0.borrow_mut();
        b.clear();
        b.extend_from_slice(src);
    }

    /// Copies the contents out (again, the caller charges the cost).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.borrow().clone()
    }

    /// True if `self` and `other` are the *same* data area — i.e. the
    /// splice shared-pointer case.
    pub fn shares_with(&self, other: &BufData) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }

    /// Number of headers currently sharing this area.
    pub fn sharers(&self) -> usize {
        Rc::strong_count(&self.0)
    }
}

impl std::fmt::Debug for BufData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BufData(len={}, sharers={})", self.len(), self.sharers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_allocation() {
        let d = BufData::zeroed(16);
        assert_eq!(d.len(), 16);
        assert!(d.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn sharing_is_aliasing() {
        let a = BufData::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        assert!(a.shares_with(&b));
        b.bytes_mut()[0] = 9;
        assert_eq!(a.bytes()[0], 9, "shared areas alias");
        assert_eq!(a.sharers(), 2);
    }

    #[test]
    fn distinct_areas_do_not_share() {
        let a = BufData::from_vec(vec![1]);
        let b = BufData::from_vec(vec![1]);
        assert!(!a.shares_with(&b));
    }

    #[test]
    fn fill_from_replaces() {
        let d = BufData::zeroed(4);
        d.fill_from(&[7, 8]);
        assert_eq!(*d.bytes(), vec![7, 8]);
        assert_eq!(d.to_vec(), vec![7, 8]);
    }

    #[test]
    fn dead_areas_are_recycled_zeroed() {
        let (reused0, _) = pool_counters();
        let d = BufData::zeroed(8192);
        d.bytes_mut()[17] = 0xAB;
        drop(d);
        // Same size class: must come back from the arena, re-zeroed.
        let e = BufData::zeroed(8192);
        let (reused1, _) = pool_counters();
        assert!(reused1 > reused0, "dead 8 KB area was not reused");
        assert_eq!(e.len(), 8192);
        assert!(
            e.bytes().iter().all(|&b| b == 0),
            "recycled area not zeroed"
        );
    }

    #[test]
    fn shared_areas_are_not_recycled_while_alive() {
        let a = BufData::zeroed(4096);
        let b = a.clone();
        drop(a);
        // `b` still holds the area: a fresh zeroed(4096) must not alias it.
        b.bytes_mut()[0] = 7;
        let c = BufData::zeroed(4096);
        assert!(!c.shares_with(&b));
        assert_eq!(b.bytes()[0], 7);
    }

    #[test]
    fn tiny_areas_bypass_the_pool() {
        let (_, recycled0) = pool_counters();
        drop(BufData::zeroed(0));
        drop(BufData::zeroed(16));
        let (_, recycled1) = pool_counters();
        assert_eq!(recycled0, recycled1, "sub-{POOL_MIN_LEN}-byte area pooled");
    }
}
