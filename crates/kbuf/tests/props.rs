//! Property tests: random buffer-cache operation sequences against a
//! reference model, with structural invariants checked after every step.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use std::collections::HashMap;

use proptest::prelude::*;

use kbuf::{BreadOutcome, BufData, BufId, Cache, DevId, Effect, IoDir};

#[derive(Clone, Debug)]
enum Op {
    /// bread of block n on device d.
    Bread { dev: u8, blk: u8 },
    /// Complete the oldest outstanding device read.
    CompleteIo,
    /// Release the oldest held buffer.
    Release,
    /// Dirty-release the oldest held buffer.
    DirtyRelease,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => ((0u8..2), (0u8..24)).prop_map(|(dev, blk)| Op::Bread { dev, blk }),
        3 => Just(Op::CompleteIo),
        3 => Just(Op::Release),
        1 => Just(Op::DirtyRelease),
    ]
}

/// The "device": applies StartIo effects and queues read completions.
#[derive(Default)]
struct FakeDevice {
    pending: Vec<(BufId, IoDir)>,
}

impl FakeDevice {
    fn absorb(&mut self, effects: &[Effect]) {
        for e in effects {
            if let Effect::StartIo { buf, dir, .. } = e {
                self.pending.push((*buf, *dir));
            }
        }
    }
}

/// Operations on a set of live [`BufData`] areas, driven against a
/// plain `Vec<u8>`-per-sharing-group model. The pooled implementation
/// recycles dead areas through a thread-local arena, so this checks the
/// arena never leaks stale bytes (`zeroed` really is zero), never
/// recycles an area that still has sharers, and keeps sharing semantics
/// identical to unpooled `Rc<RefCell<Vec<u8>>>`.
#[derive(Clone, Debug)]
enum DOp {
    /// New zeroed area; lengths straddle the 512-byte pool threshold.
    Zeroed(usize),
    /// New area with patterned contents.
    FromVec(usize, u8),
    /// Clone of the n-th live area (modulo): shares the same bytes.
    CloneOf(usize),
    /// Drop the n-th live area (modulo); may recycle it into the pool.
    Drop(usize),
    /// Write one byte through the n-th live area.
    Write(usize, usize, u8),
    /// Replace the n-th live area's contents (resizes the area).
    FillFrom(usize, usize, u8),
}

fn dop() -> impl Strategy<Value = DOp> {
    let len = prop_oneof![Just(0usize), 1usize..64, 480usize..560, 8192usize..8200];
    let len2 = prop_oneof![Just(0usize), 1usize..64, 480usize..560, 8192usize..8200];
    prop_oneof![
        3 => len.prop_map(DOp::Zeroed),
        2 => (len2, any::<u8>()).prop_map(|(l, b)| DOp::FromVec(l, b)),
        2 => any::<usize>().prop_map(DOp::CloneOf),
        3 => any::<usize>().prop_map(DOp::Drop),
        2 => (any::<usize>(), any::<usize>(), any::<u8>())
            .prop_map(|(n, o, v)| DOp::Write(n, o, v)),
        1 => (any::<usize>(), 0usize..1024, any::<u8>())
            .prop_map(|(n, l, b)| DOp::FillFrom(n, l, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pooled_buf_data_matches_plain_model(ops in prop::collection::vec(dop(), 1..120)) {
        // Live areas: (handle, sharing-group id). The model holds each
        // group's expected bytes.
        let mut live: Vec<(BufData, usize)> = Vec::new();
        let mut model: HashMap<usize, Vec<u8>> = HashMap::new();
        let mut next_group = 0usize;

        for op in ops {
            match op {
                DOp::Zeroed(len) => {
                    live.push((BufData::zeroed(len), next_group));
                    model.insert(next_group, vec![0u8; len]);
                    next_group += 1;
                }
                DOp::FromVec(len, byte) => {
                    let v: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i as u8)).collect();
                    live.push((BufData::from_vec(v.clone()), next_group));
                    model.insert(next_group, v);
                    next_group += 1;
                }
                DOp::CloneOf(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (bd, g) = &live[n % live.len()];
                    live.push((bd.clone(), *g));
                }
                DOp::Drop(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (bd, g) = live.swap_remove(n % live.len());
                    drop(bd);
                    if !live.iter().any(|(_, lg)| *lg == g) {
                        model.remove(&g);
                    }
                }
                DOp::Write(n, off, val) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (bd, g) = &live[n % live.len()];
                    if bd.is_empty() {
                        continue;
                    }
                    let idx = off % bd.len();
                    bd.bytes_mut()[idx] = val;
                    model.get_mut(g).unwrap()[idx] = val;
                }
                DOp::FillFrom(n, len, byte) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (bd, g) = &live[n % live.len()];
                    let src = vec![byte; len];
                    bd.fill_from(&src);
                    model.insert(*g, src);
                }
            }

            // Every live handle sees exactly its group's bytes — writes
            // through one sharer are visible to all, recycled areas are
            // fully zeroed, and no area aliases another group.
            for (bd, g) in &live {
                prop_assert_eq!(&bd.to_vec(), model.get(g).unwrap());
            }
            for i in 0..live.len() {
                let (bi, gi) = &live[i];
                let expect_sharers = live.iter().filter(|(_, g)| g == gi).count();
                prop_assert_eq!(bi.sharers(), expect_sharers);
                for (bj, gj) in live.iter().skip(i + 1) {
                    prop_assert_eq!(bi.shares_with(bj), gi == gj);
                }
            }
        }
    }

    #[test]
    fn cache_invariants_hold_under_random_ops(ops in prop::collection::vec(op(), 1..120)) {
        let mut cache = Cache::new(8, 8192);
        let mut dev_model = FakeDevice::default();
        // Buffers we hold (checked out to "the caller").
        let mut held: Vec<BufId> = Vec::new();
        // Blocks with valid contents, as the model sees them.
        let mut valid: HashMap<(u8, u8), bool> = HashMap::new();

        for op in ops {
            let mut fx = Vec::new();
            match op {
                Op::Bread { dev, blk } => {
                    let out = cache.bread(DevId(dev as u32), blk as u64, 8192, &mut fx);
                    dev_model.absorb(&fx);
                    match out {
                        BreadOutcome::Hit(b) => {
                            prop_assert_eq!(
                                valid.get(&(dev, blk)).copied(),
                                Some(true),
                                "hit on a block the model says is invalid"
                            );
                            held.push(b);
                        }
                        BreadOutcome::Miss(b) => {
                            held.push(b);
                        }
                        BreadOutcome::Busy(_) | BreadOutcome::NoBuffers => {}
                    }
                }
                Op::CompleteIo => {
                    if dev_model.pending.is_empty() {
                        continue;
                    }
                    let (buf, dir) = dev_model.pending.remove(0);
                    let tag = cache.biodone(buf, false, &mut fx);
                    prop_assert!(tag.is_none(), "no B_CALL in this model");
                    dev_model.absorb(&fx);
                    if let Some((d, b)) = cache.identity(buf) {
                        if dir == IoDir::Read {
                            valid.insert((d.0 as u8, b as u8), true);
                        }
                    }
                }
                Op::Release => {
                    if let Some(buf) = held.pop() {
                        // Completed? Otherwise invalid contents get
                        // forgotten by the cache, matching the model.
                        let was_done = cache.io_done(buf);
                        if let Some((d, b)) = cache.identity(buf) {
                            if !was_done {
                                valid.remove(&(d.0 as u8, b as u8));
                            }
                        }
                        // Release only if no I/O is pending on it (the
                        // kernel never releases a buffer mid-transfer).
                        if dev_model.pending.iter().any(|(p, _)| *p == buf) {
                            held.push(buf);
                            continue;
                        }
                        cache.brelse(buf, &mut fx);
                        dev_model.absorb(&fx);
                    }
                }
                Op::DirtyRelease => {
                    if let Some(buf) = held.pop() {
                        if dev_model.pending.iter().any(|(p, _)| *p == buf)
                            || !cache.io_done(buf)
                        {
                            held.push(buf);
                            continue;
                        }
                        cache.bdwrite(buf, &mut fx);
                        dev_model.absorb(&fx);
                    }
                }
            }
            cache.check_invariants();
        }

        // Drain: complete outstanding I/O and release everything; the
        // cache must end structurally clean.
        while !dev_model.pending.is_empty() {
            let (buf, _) = dev_model.pending.remove(0);
            let mut fx = Vec::new();
            cache.biodone(buf, false, &mut fx);
            dev_model.absorb(&fx);
            cache.check_invariants();
        }
        for buf in held {
            let mut fx = Vec::new();
            cache.brelse(buf, &mut fx);
            cache.check_invariants();
        }
    }
}
