//! Property tests: random buffer-cache operation sequences against a
//! reference model, with structural invariants checked after every step.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use std::collections::HashMap;

use proptest::prelude::*;

use kbuf::{BreadOutcome, BufId, Cache, DevId, Effect, IoDir};

#[derive(Clone, Debug)]
enum Op {
    /// bread of block n on device d.
    Bread { dev: u8, blk: u8 },
    /// Complete the oldest outstanding device read.
    CompleteIo,
    /// Release the oldest held buffer.
    Release,
    /// Dirty-release the oldest held buffer.
    DirtyRelease,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => ((0u8..2), (0u8..24)).prop_map(|(dev, blk)| Op::Bread { dev, blk }),
        3 => Just(Op::CompleteIo),
        3 => Just(Op::Release),
        1 => Just(Op::DirtyRelease),
    ]
}

/// The "device": applies StartIo effects and queues read completions.
#[derive(Default)]
struct FakeDevice {
    pending: Vec<(BufId, IoDir)>,
}

impl FakeDevice {
    fn absorb(&mut self, effects: &[Effect]) {
        for e in effects {
            if let Effect::StartIo { buf, dir, .. } = e {
                self.pending.push((*buf, *dir));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_invariants_hold_under_random_ops(ops in prop::collection::vec(op(), 1..120)) {
        let mut cache = Cache::new(8, 8192);
        let mut dev_model = FakeDevice::default();
        // Buffers we hold (checked out to "the caller").
        let mut held: Vec<BufId> = Vec::new();
        // Blocks with valid contents, as the model sees them.
        let mut valid: HashMap<(u8, u8), bool> = HashMap::new();

        for op in ops {
            let mut fx = Vec::new();
            match op {
                Op::Bread { dev, blk } => {
                    let out = cache.bread(DevId(dev as u32), blk as u64, 8192, &mut fx);
                    dev_model.absorb(&fx);
                    match out {
                        BreadOutcome::Hit(b) => {
                            prop_assert_eq!(
                                valid.get(&(dev, blk)).copied(),
                                Some(true),
                                "hit on a block the model says is invalid"
                            );
                            held.push(b);
                        }
                        BreadOutcome::Miss(b) => {
                            held.push(b);
                        }
                        BreadOutcome::Busy(_) | BreadOutcome::NoBuffers => {}
                    }
                }
                Op::CompleteIo => {
                    if dev_model.pending.is_empty() {
                        continue;
                    }
                    let (buf, dir) = dev_model.pending.remove(0);
                    let tag = cache.biodone(buf, false, &mut fx);
                    prop_assert!(tag.is_none(), "no B_CALL in this model");
                    dev_model.absorb(&fx);
                    if let Some((d, b)) = cache.identity(buf) {
                        if dir == IoDir::Read {
                            valid.insert((d.0 as u8, b as u8), true);
                        }
                    }
                }
                Op::Release => {
                    if let Some(buf) = held.pop() {
                        // Completed? Otherwise invalid contents get
                        // forgotten by the cache, matching the model.
                        let was_done = cache.io_done(buf);
                        if let Some((d, b)) = cache.identity(buf) {
                            if !was_done {
                                valid.remove(&(d.0 as u8, b as u8));
                            }
                        }
                        // Release only if no I/O is pending on it (the
                        // kernel never releases a buffer mid-transfer).
                        if dev_model.pending.iter().any(|(p, _)| *p == buf) {
                            held.push(buf);
                            continue;
                        }
                        cache.brelse(buf, &mut fx);
                        dev_model.absorb(&fx);
                    }
                }
                Op::DirtyRelease => {
                    if let Some(buf) = held.pop() {
                        if dev_model.pending.iter().any(|(p, _)| *p == buf)
                            || !cache.io_done(buf)
                        {
                            held.push(buf);
                            continue;
                        }
                        cache.bdwrite(buf, &mut fx);
                        dev_model.absorb(&fx);
                    }
                }
            }
            cache.check_invariants();
        }

        // Drain: complete outstanding I/O and release everything; the
        // cache must end structurally clean.
        while !dev_model.pending.is_empty() {
            let (buf, _) = dev_model.pending.remove(0);
            let mut fx = Vec::new();
            cache.biodone(buf, false, &mut fx);
            dev_model.absorb(&fx);
            cache.check_invariants();
        }
        for buf in held {
            let mut fx = Vec::new();
            cache.brelse(buf, &mut fx);
            cache.check_invariants();
        }
    }
}
