//! A self-contained, offline stand-in for the `proptest` crate.
//!
//! The workspace must build with zero network access, so the registry
//! `proptest` cannot be fetched. This shim implements the subset of its
//! API that the test suites use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Just`, `any`, range and tuple
//! strategies, `prop::collection::vec`, and `ProptestConfig` — on top of
//! a deterministic SplitMix64 generator seeded from the test name, so
//! every run explores the same cases (reproducible failures, hermetic
//! CI).
//!
//! Shrinking is intentionally not implemented: on failure the panic
//! message reports the raw case, which is already deterministic.

/// Deterministic pseudo-random generation.
pub mod rng {
    /// SplitMix64: tiny, fast, and plenty for test-case generation.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seeds from an arbitrary byte string (e.g. the test name) via FNV-1a.
        pub fn from_name(name: &str) -> Rng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Rng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi)`. Panics if the range is empty.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty strategy range {lo}..{hi}");
            let span = hi - lo;
            // Rejection sampling keeps the distribution uniform.
            let zone = u64::MAX - u64::MAX % span;
            loop {
                let v = self.next_u64();
                if v < zone {
                    return lo + v % span;
                }
            }
        }
    }
}

/// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
pub mod config {
    /// Only the `cases` knob is honored.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::rng::Rng;
    use std::ops::Range;

    /// Generates values of an output type from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe alias used behind `Box<dyn …>`.
    pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

    /// Object-safe mirror of [`Strategy`].
    pub trait DynStrategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut Rng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut Rng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// Always yields a clone of one value.
    #[allow(non_snake_case)]
    pub fn Just<T: Clone>(value: T) -> JustStrategy<T> {
        JustStrategy { value }
    }

    /// Strategy returned by [`Just`].
    pub struct JustStrategy<T: Clone> {
        value: T,
    }

    impl<T: Clone> Strategy for JustStrategy<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.value.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

    /// Weighted choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            let mut pick = rng.below(0, self.total);
            for (w, strat) in &self.arms {
                if pick < *w as u64 {
                    return strat.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight accounting")
        }
    }
}

/// `any::<T>()` — full-range generation for primitive types.
pub mod arbitrary {
    use crate::rng::Rng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::rng::Rng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// A length specification: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// `Vec` of values drawn from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface test files use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Re-export of the crate root so `prop::collection::vec` resolves.
    pub use crate as prop;
}

/// Defines `#[test]` functions that run a property over generated cases.
///
/// Supports the same shape the real crate does for the suites in this
/// workspace: an optional `#![proptest_config(…)]` header followed by
/// one or more `#[test] fn name(pat in strategy, …) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = <$crate::config::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let mut rng = $crate::rng::Rng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render the case up front: the body may consume the values.
                let case_desc = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {case} of {} failed:{case_desc}",
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or unweighted) choice among strategies yielding one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::rng::Rng::from_name("x");
        let mut b = crate::rng::Rng::from_name("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::rng::Rng::from_name("bounds");
        let strat = (3u64..17).prop_map(|v| v * 2);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((6..34).contains(&v) && v % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec((0u8..4, any::<bool>()), 1..20),
            pick in prop_oneof![3 => Just(1u32), 1 => 5u32..9],
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (x, _) in &xs {
                prop_assert!(*x < 4);
            }
            prop_assert!(pick == 1 || (5..9).contains(&pick));
        }
    }
}
