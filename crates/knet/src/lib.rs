#![warn(missing_docs)]

//! UDP socket substrate with a connection-server layer.
//!
//! §5.1: "The current implementation of splice supports … socket-to-socket
//! splices for the UDP transport protocol, and framebuffer-to-socket
//! splices". This crate provides the socket layer those splices run over:
//! datagram sockets with bounded receive buffers, a port namespace, and a
//! link model (loopback is free of wire time; a remote hop pays serialised
//! bandwidth plus latency).
//!
//! On top of the plain datagram sockets sits a **connection layer** for
//! the million-client server scenario: a bound socket may [`Net::listen`]
//! with a bounded accept backlog, after which the first datagram from
//! each new remote carves off a per-connection peer socket (queued for
//! [`Net::accept`]); later datagrams from the same remote are demultiplexed
//! straight into that connection's receive buffer. Connections are wired
//! socket-to-socket, so replies route back to the originating socket
//! without consuming a port per client.
//!
//! Per-host wire behaviour is governed by an optional [`LinkModel`]
//! (bandwidth, base latency, a jitter distribution, and a loss rate) whose
//! randomness is drawn from a seeded splitmix64 stream — the same
//! deterministic-by-occurrence discipline as `khw::FaultPlan`. A host
//! without a model keeps the legacy behaviour (free loopback, the fixed
//! off-host link). When a model is present the sender also sees **send
//! backpressure**: once the serialisation backlog exceeds the socket's
//! send-buffer limit, `send` returns [`NetErr::WouldBlock`] and
//! [`Net::link_ready_at`] says when to retry.
//!
//! Like the other substrates, the crate is a pure state machine: `send`
//! computes where and when a datagram would arrive; the kernel schedules
//! the delivery event, charges protocol CPU costs, and calls
//! [`Net::deliver`] when the time comes. Blocking (`recv` on an empty
//! queue, accept on an empty backlog, send-buffer exhaustion) is expressed
//! as outcomes the kernel turns into sleeps.
//!
//! Drop accounting is a taxonomy, not one counter: `dropped_no_listener`
//! (no receiver at send or arrival), `dropped_rcv_full` (receive buffer
//! exhausted), `dropped_backlog` (listener accept queue full), and
//! `lost_link` (link-model loss draw) are disjoint — every committed
//! datagram ends in exactly one of `delivered` or these, so byte
//! conservation holds exactly.

use std::collections::{HashMap, VecDeque};

use ksim::{Dur, SimTime};

/// Socket identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SockId(pub u32);

/// A UDP endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NetAddr {
    /// Host identifier (the simulated DECstation is host 1).
    pub host: u32,
    /// UDP port.
    pub port: u16,
}

/// One datagram in flight or queued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Sender address.
    pub src: NetAddr,
    /// Sending socket — the simulator's stand-in for the full source
    /// 5-tuple (listeners demultiplex connections by it, so a million
    /// unbound clients need no port each).
    pub src_sock: SockId,
    /// Payload.
    pub data: Vec<u8>,
}

/// Errors from socket operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetErr {
    /// Unknown socket.
    BadSocket,
    /// Port already bound on that host.
    PortInUse,
    /// Socket has no peer (send without connect).
    NotConnected,
    /// Datagram exceeds the maximum size.
    MsgTooBig,
    /// `listen`/`accept` on a socket that is not set up for it.
    NotBound,
    /// Send buffer full: the link backlog exceeds the socket's
    /// send-buffer limit. Retry at [`Net::link_ready_at`].
    WouldBlock,
}

/// Why a committed `send` produced no delivery ([`TxInfo::dst`] `None`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxGone {
    /// No receiver: nothing bound to the destination (or the wired peer
    /// socket is closed), like real UDP.
    NoReceiver,
    /// The link model's loss draw ate the datagram.
    Lost,
}

/// Where and when a sent datagram arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxInfo {
    /// Arrival instant (schedule the delivery event here).
    pub arrival: SimTime,
    /// Receiving socket, if any; `None` means the datagram vanishes.
    pub dst: Option<SockId>,
    /// Set exactly when `dst` is `None`: why the datagram vanished.
    pub gone: Option<TxGone>,
}

/// Why a delivery was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Destination socket closed between send and arrival.
    NoReceiver,
    /// Receive buffer full.
    RcvFull,
    /// Listener accept backlog full: connection refused, no socket
    /// carved.
    Backlog,
}

/// Result of delivering a datagram into a receive buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliverOutcome {
    /// Queued on `sock` (after listener demultiplexing this may differ
    /// from the socket the datagram was addressed to); if a process
    /// sleeps on it, wake it.
    Queued {
        /// The socket that received the datagram.
        sock: SockId,
    },
    /// First datagram from a new remote carved connection `sock` off the
    /// listener (datagram queued on it); wake acceptors.
    NewConn {
        /// The freshly carved connection socket.
        sock: SockId,
    },
    /// Dropped (counted under the matching [`NetStats`] bucket).
    Dropped {
        /// Which bucket counted it.
        reason: DropReason,
    },
}

/// Largest datagram the stack accepts (a generous classic UDP bound).
pub const MAX_DGRAM: usize = 32 * 1024;

/// splitmix64: the same generator `khw::FaultPlan` uses, so link draws
/// are deterministic by occurrence index and independent of call sites.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A per-host wire model: serialisation bandwidth, propagation latency
/// with a jittered tail, and a packet-loss rate. All randomness comes
/// from `seed` via a per-link occurrence counter, so a run is a pure
/// function of its seeds.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Serialisation bandwidth, bytes per second.
    pub bps: u64,
    /// Base one-way propagation latency.
    pub base_latency: Dur,
    /// Additional per-packet latency, drawn uniformly from
    /// `[0, jitter]`. Delivery order per link stays FIFO: a draw never
    /// reorders datagrams, it only stretches the tail.
    pub jitter: Dur,
    /// Per-packet loss probability in parts per million.
    pub loss_ppm: u32,
    /// Seed of the draw stream.
    pub seed: u64,
}

struct LinkState {
    model: LinkModel,
    busy_until: SimTime,
    /// FIFO clamp: no datagram arrives before one sent earlier.
    last_arrival: SimTime,
    /// Occurrence counter for the draw stream.
    seq: u64,
}

impl LinkState {
    fn draw(&mut self) -> u64 {
        self.seq += 1;
        splitmix64(self.model.seed ^ self.seq.wrapping_mul(0xD1B5_4A32_D192_ED03))
    }
}

struct Listener {
    backlog: usize,
    /// Carved, not-yet-accepted connections, oldest first.
    pending: VecDeque<SockId>,
    /// Demultiplexer: source socket → connection socket.
    conns: HashMap<SockId, SockId>,
}

struct Socket {
    host: u32,
    local_port: Option<u16>,
    peer: Option<NetAddr>,
    /// Wired peer socket (connection sockets): replies route here
    /// directly, bypassing the port namespace.
    peer_sock: Option<SockId>,
    /// Set when listening.
    listener: Option<Listener>,
    /// Back-pointer for connection sockets: (listener, demux key).
    on_listener: Option<(SockId, SockId)>,
    rcv_queue: VecDeque<Datagram>,
    rcv_used: usize,
    rcv_limit: usize,
    snd_limit: usize,
    open: bool,
}

/// Cumulative network counters. Datagram counts and payload-byte counts
/// move together, so `bytes_sent == bytes_delivered + bytes_lost_link +
/// bytes_dropped_*` holds exactly once the wire drains. Delivered bytes
/// further split into read-by-the-app, still-queued (`rcv_used`), and
/// thrown-away-at-close (`bytes_discarded_close`) — the scenario
/// property suite audits both identities.
#[derive(Clone, Copy, Default, Debug)]
pub struct NetStats {
    /// Datagrams committed by `send` (serialised onto a wire).
    pub sent: u64,
    /// Payload bytes committed by `send`.
    pub bytes_sent: u64,
    /// Datagrams queued to a receiver.
    pub delivered: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Datagrams with no receiver: nothing bound at send time, or the
    /// destination closed before arrival.
    pub dropped_no_listener: u64,
    /// Payload bytes of `dropped_no_listener` datagrams.
    pub bytes_dropped_no_listener: u64,
    /// Datagrams dropped because the receive buffer was full.
    pub dropped_rcv_full: u64,
    /// Payload bytes of `dropped_rcv_full` datagrams.
    pub bytes_dropped_rcv_full: u64,
    /// Connection-opening datagrams refused by a full accept backlog.
    pub dropped_backlog: u64,
    /// Payload bytes of `dropped_backlog` datagrams.
    pub bytes_dropped_backlog: u64,
    /// Datagrams eaten by the link model's loss draw.
    pub lost_link: u64,
    /// Payload bytes of `lost_link` datagrams.
    pub bytes_lost_link: u64,
    /// Datagrams already counted `delivered` that were then thrown away
    /// by `close` while still queued (the receiver never read them).
    pub discarded_close: u64,
    /// Payload bytes of `discarded_close` datagrams.
    pub bytes_discarded_close: u64,
    /// `send` attempts bounced with [`NetErr::WouldBlock`] (not counted
    /// in `sent`; the caller retries).
    pub snd_blocked: u64,
    /// Connection sockets carved off listeners.
    pub conns_opened: u64,
    /// Deepest pending-connection queue any listener reached — how close
    /// the accept loop came to shedding load at the backlog limit.
    pub backlog_peak: u64,
}

impl NetStats {
    /// Total datagrams dropped after being committed to the wire, all
    /// buckets (loss excluded: see `lost_link`).
    pub fn dropped(&self) -> u64 {
        self.dropped_no_listener + self.dropped_rcv_full + self.dropped_backlog
    }
}

/// The network stack state.
pub struct Net {
    socks: Vec<Socket>,
    ports: HashMap<NetAddr, SockId>,
    /// Per-host modelled links (destination host → link).
    links: HashMap<u32, LinkState>,
    /// Legacy off-host link: serialised bandwidth + propagation delay,
    /// used for destination hosts without a [`LinkModel`].
    link_bps: u64,
    link_latency: Dur,
    link_busy_until: SimTime,
    /// Loopback delivery delay (protocol queue hop; the CPU cost is
    /// charged by the kernel separately).
    loopback_delay: Dur,
    rcv_limit: usize,
    snd_limit: usize,
    stats: NetStats,
}

impl Net {
    /// A stack with a 10 Mbit/s off-host link (the era's Ethernet) and
    /// 64 KB socket buffers.
    pub fn new() -> Net {
        Net {
            socks: Vec::new(),
            ports: HashMap::new(),
            links: HashMap::new(),
            link_bps: 1_250_000,
            link_latency: Dur::from_us(1000),
            link_busy_until: SimTime::ZERO,
            loopback_delay: Dur::from_us(50),
            rcv_limit: 64 * 1024,
            snd_limit: 64 * 1024,
            stats: NetStats::default(),
        }
    }

    /// Overrides the receive-buffer limit for new sockets (connection
    /// sockets inherit the listener's limit).
    pub fn set_rcv_limit(&mut self, limit: usize) {
        self.rcv_limit = limit;
    }

    /// Overrides the send-buffer limit for new sockets. Only enforced on
    /// modelled links (see [`LinkModel`]).
    pub fn set_snd_limit(&mut self, limit: usize) {
        self.snd_limit = limit;
    }

    /// Installs (or replaces) the wire model for traffic *to* `host`.
    /// With a model installed, even same-host traffic to `host` is
    /// shaped — the scenario driver's way of putting clients behind a
    /// wire without multi-host process placement.
    pub fn set_link_model(&mut self, host: u32, model: LinkModel) {
        self.links.insert(
            host,
            LinkState {
                model,
                busy_until: SimTime::ZERO,
                last_arrival: SimTime::ZERO,
                seq: 0,
            },
        );
    }

    /// Counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn sock(&self, id: SockId) -> Result<&Socket, NetErr> {
        self.socks
            .get(id.0 as usize)
            .filter(|s| s.open)
            .ok_or(NetErr::BadSocket)
    }

    fn sock_mut(&mut self, id: SockId) -> Result<&mut Socket, NetErr> {
        self.socks
            .get_mut(id.0 as usize)
            .filter(|s| s.open)
            .ok_or(NetErr::BadSocket)
    }

    /// Creates a UDP socket on `host`.
    pub fn socket(&mut self, host: u32) -> SockId {
        let id = SockId(self.socks.len() as u32);
        self.socks.push(Socket {
            host,
            local_port: None,
            peer: None,
            peer_sock: None,
            listener: None,
            on_listener: None,
            rcv_queue: VecDeque::new(),
            rcv_used: 0,
            rcv_limit: self.rcv_limit,
            snd_limit: self.snd_limit,
            open: true,
        });
        id
    }

    /// Closes a socket, releasing its port and dropping queued data.
    ///
    /// Closing a **listener** also closes its not-yet-accepted pending
    /// connections and detaches already-accepted ones (they live on,
    /// unwired from the dead listener). Closing a **connection** removes
    /// it from its listener's demultiplexer so the remote may reconnect.
    pub fn close(&mut self, id: SockId) -> Result<(), NetErr> {
        let (host, port, on_listener, listener, thrown, thrown_bytes) = {
            let s = self.sock_mut(id)?;
            s.open = false;
            let thrown = s.rcv_queue.len() as u64;
            let thrown_bytes = s.rcv_used as u64;
            s.rcv_queue.clear();
            s.rcv_used = 0;
            (
                s.host,
                s.local_port,
                s.on_listener.take(),
                s.listener.take(),
                thrown,
                thrown_bytes,
            )
        };
        self.stats.discarded_close += thrown;
        self.stats.bytes_discarded_close += thrown_bytes;
        if let Some(p) = port {
            let addr = NetAddr { host, port: p };
            // Connection sockets share the listener's port without owning
            // the namespace entry: only the owner unbinds it.
            if self.ports.get(&addr) == Some(&id) {
                self.ports.remove(&addr);
            }
        }
        if let Some(lst) = listener {
            for conn in lst.pending {
                let _ = self.close(conn);
            }
            let mut accepted: Vec<SockId> = lst.conns.into_values().collect();
            accepted.sort();
            for conn in accepted {
                if let Ok(s) = self.sock_mut(conn) {
                    s.on_listener = None;
                }
            }
        }
        if let Some((lst, key)) = on_listener {
            if let Ok(l) = self.sock_mut(lst) {
                if let Some(listener) = l.listener.as_mut() {
                    listener.conns.remove(&key);
                    listener.pending.retain(|c| *c != id);
                }
            }
        }
        Ok(())
    }

    /// Binds a socket to a local port.
    pub fn bind(&mut self, id: SockId, port: u16) -> Result<(), NetErr> {
        let host = self.sock(id)?.host;
        let addr = NetAddr { host, port };
        if self.ports.contains_key(&addr) {
            return Err(NetErr::PortInUse);
        }
        self.sock_mut(id)?.local_port = Some(port);
        self.ports.insert(addr, id);
        Ok(())
    }

    /// Sets the peer address for `send`.
    pub fn connect(&mut self, id: SockId, peer: NetAddr) -> Result<(), NetErr> {
        self.sock_mut(id)?.peer = Some(peer);
        Ok(())
    }

    /// Marks a bound socket as a listener with an accept backlog of
    /// `backlog` not-yet-accepted connections. Re-listening adjusts the
    /// backlog.
    pub fn listen(&mut self, id: SockId, backlog: u32) -> Result<(), NetErr> {
        let s = self.sock_mut(id)?;
        if s.local_port.is_none() {
            return Err(NetErr::NotBound);
        }
        match s.listener.as_mut() {
            Some(l) => l.backlog = backlog as usize,
            None => {
                s.listener = Some(Listener {
                    backlog: backlog as usize,
                    pending: VecDeque::new(),
                    conns: HashMap::new(),
                })
            }
        }
        Ok(())
    }

    /// Takes the oldest pending connection off a listener's backlog.
    /// `Ok(None)` means the backlog is empty (the kernel sleeps the
    /// caller until a connection arrives).
    pub fn accept(&mut self, id: SockId) -> Result<Option<SockId>, NetErr> {
        let s = self.sock_mut(id)?;
        let Some(l) = s.listener.as_mut() else {
            return Err(NetErr::NotBound);
        };
        Ok(l.pending.pop_front())
    }

    /// True if the socket is a listener.
    pub fn is_listening(&self, id: SockId) -> bool {
        self.sock(id).map(|s| s.listener.is_some()).unwrap_or(false)
    }

    /// Carved-but-unaccepted connections on a listener.
    pub fn pending_conns(&self, id: SockId) -> usize {
        self.sock(id)
            .ok()
            .and_then(|s| s.listener.as_ref())
            .map(|l| l.pending.len())
            .unwrap_or(0)
    }

    /// Live connections in a listener's demultiplexer (pending plus
    /// accepted-and-open).
    pub fn conn_count(&self, id: SockId) -> usize {
        self.sock(id)
            .ok()
            .and_then(|s| s.listener.as_ref())
            .map(|l| l.conns.len())
            .unwrap_or(0)
    }

    /// The socket's bound port, if any.
    pub fn local_port(&self, id: SockId) -> Option<u16> {
        self.sock(id).ok().and_then(|s| s.local_port)
    }

    /// The socket's connected peer, if any.
    pub fn peer(&self, id: SockId) -> Option<NetAddr> {
        self.sock(id).ok().and_then(|s| s.peer)
    }

    /// Open sockets (leak checks).
    pub fn open_socks(&self) -> usize {
        self.socks.iter().filter(|s| s.open).count()
    }

    /// Bytes queued unread across every open socket (exact-accounting
    /// term for receivers that stopped consuming).
    pub fn total_rcv_used(&self) -> usize {
        self.socks
            .iter()
            .filter(|s| s.open)
            .map(|s| s.rcv_used)
            .sum()
    }

    /// Serialisation backlog of the modelled link to `host`, in bytes,
    /// as of `now`. Zero for unmodelled hosts.
    fn link_backlog_bytes(&self, now: SimTime, host: u32) -> u64 {
        let Some(link) = self.links.get(&host) else {
            return 0;
        };
        let wait = link.busy_until.saturating_since(now);
        // bytes = bps * seconds, computed in ns to avoid floats.
        wait.as_ns().saturating_mul(link.model.bps) / 1_000_000_000
    }

    /// Destination host of `id`'s sends (its peer's host), if connected.
    fn peer_host(&self, id: SockId) -> Option<u32> {
        self.sock(id).ok().and_then(|s| s.peer).map(|p| p.host)
    }

    /// True if a `send` of `len` bytes from `id` would bounce with
    /// [`NetErr::WouldBlock`] right now. Pure: no draws, no counters.
    /// Zero-byte datagrams (connection requests) carry no serialisation
    /// payload and never block.
    pub fn send_would_block(&self, now: SimTime, id: SockId, len: usize) -> bool {
        if len == 0 {
            return false;
        }
        let Some(host) = self.peer_host(id) else {
            return false;
        };
        if !self.links.contains_key(&host) {
            return false;
        }
        let limit = self.sock(id).map(|s| s.snd_limit as u64).unwrap_or(0);
        self.link_backlog_bytes(now, host) + len as u64 > limit
    }

    /// Earliest time a blocked `send` of `len` bytes from `id` can be
    /// retried: when the link backlog has drained to fit the datagram in
    /// the send buffer again. Never before `now`.
    pub fn link_ready_at(&self, now: SimTime, id: SockId, len: usize) -> SimTime {
        let Some(host) = self.peer_host(id) else {
            return now;
        };
        let Some(link) = self.links.get(&host) else {
            return now;
        };
        let limit = self.sock(id).map(|s| s.snd_limit as u64).unwrap_or(0);
        let allowed = limit.saturating_sub(len as u64);
        let drain = Dur::for_bytes(allowed, link.model.bps);
        let ready = SimTime::from_ns(link.busy_until.as_ns().saturating_sub(drain.as_ns()));
        if ready > now {
            ready
        } else {
            now
        }
    }

    /// Computes the transmission of `len` payload bytes from `id` to its
    /// peer: who receives it and when. The kernel schedules the delivery.
    ///
    /// On a modelled link this may bounce with [`NetErr::WouldBlock`]
    /// (send buffer full) — nothing is committed, the caller retries at
    /// [`Net::link_ready_at`] — or commit the bytes and lose them to the
    /// loss draw (`dst: None`, counted under `lost_link`).
    pub fn send(&mut self, now: SimTime, id: SockId, len: usize) -> Result<TxInfo, NetErr> {
        if len > MAX_DGRAM {
            return Err(NetErr::MsgTooBig);
        }
        let (host, peer, peer_sock, snd_limit) = {
            let s = self.sock(id)?;
            (
                s.host,
                s.peer.ok_or(NetErr::NotConnected)?,
                s.peer_sock,
                s.snd_limit as u64,
            )
        };

        // Resolve the receiver: wired connections route straight to the
        // peer socket, everything else through the port namespace.
        let dst = match peer_sock {
            Some(ps) => self.sock(ps).ok().map(|_| ps),
            None => self
                .ports
                .get(&peer)
                .copied()
                .filter(|d| self.sock(*d).is_ok()),
        };

        let (arrival, lost) = if self.links.contains_key(&peer.host) {
            if len > 0 && self.link_backlog_bytes(now, peer.host) + len as u64 > snd_limit {
                self.stats.snd_blocked += 1;
                return Err(NetErr::WouldBlock);
            }
            let link = self.links.get_mut(&peer.host).expect("checked above");
            let start = if now > link.busy_until {
                now
            } else {
                link.busy_until
            };
            let end = start + Dur::for_bytes(len as u64, link.model.bps);
            link.busy_until = end;
            let jitter = if link.model.jitter.is_zero() {
                Dur::ZERO
            } else {
                let span = link.model.jitter.as_ns() + 1;
                Dur::from_ns(link.draw() % span)
            };
            let mut arrival = end + link.model.base_latency + jitter;
            // FIFO clamp: jitter stretches the tail, never reorders.
            if link.last_arrival > arrival {
                arrival = link.last_arrival;
            }
            link.last_arrival = arrival;
            let lost =
                link.model.loss_ppm > 0 && link.draw() % 1_000_000 < link.model.loss_ppm as u64;
            (arrival, lost)
        } else if peer.host == host {
            (now + self.loopback_delay, false)
        } else {
            let start = if now > self.link_busy_until {
                now
            } else {
                self.link_busy_until
            };
            let end = start + Dur::for_bytes(len as u64, self.link_bps);
            self.link_busy_until = end;
            (end + self.link_latency, false)
        };

        self.stats.sent += 1;
        self.stats.bytes_sent += len as u64;
        let (dst, gone) = if dst.is_none() {
            self.stats.dropped_no_listener += 1;
            self.stats.bytes_dropped_no_listener += len as u64;
            (None, Some(TxGone::NoReceiver))
        } else if lost {
            self.stats.lost_link += 1;
            self.stats.bytes_lost_link += len as u64;
            (None, Some(TxGone::Lost))
        } else {
            (dst, None)
        };
        Ok(TxInfo { arrival, dst, gone })
    }

    /// Source address a datagram from `id` carries.
    pub fn source_addr(&self, id: SockId) -> Result<NetAddr, NetErr> {
        let s = self.sock(id)?;
        Ok(NetAddr {
            host: s.host,
            port: s.local_port.unwrap_or(0),
        })
    }

    /// Queues `dgram` on `sock`, enforcing the receive-buffer limit.
    fn queue_into(&mut self, sock: SockId, dgram: Datagram) -> DeliverOutcome {
        let s = &mut self.socks[sock.0 as usize];
        if s.rcv_used + dgram.data.len() > s.rcv_limit {
            self.stats.dropped_rcv_full += 1;
            self.stats.bytes_dropped_rcv_full += dgram.data.len() as u64;
            return DeliverOutcome::Dropped {
                reason: DropReason::RcvFull,
            };
        }
        let bytes = dgram.data.len() as u64;
        s.rcv_used += dgram.data.len();
        s.rcv_queue.push_back(dgram);
        self.stats.delivered += 1;
        self.stats.bytes_delivered += bytes;
        DeliverOutcome::Queued { sock }
    }

    /// Delivers a datagram addressed to `dst`. If `dst` is a listener
    /// the datagram is demultiplexed by its source socket: known sources
    /// feed their connection's receive buffer; a new source carves a
    /// connection (backlog permitting) that inherits the listener's port
    /// and buffer limits and is wired back to the source socket.
    pub fn deliver(&mut self, dst: SockId, dgram: Datagram) -> DeliverOutcome {
        let Ok(s) = self.sock(dst) else {
            self.stats.dropped_no_listener += 1;
            self.stats.bytes_dropped_no_listener += dgram.data.len() as u64;
            return DeliverOutcome::Dropped {
                reason: DropReason::NoReceiver,
            };
        };
        if s.listener.is_none() {
            return self.queue_into(dst, dgram);
        }

        let key = dgram.src_sock;
        let l = self.socks[dst.0 as usize]
            .listener
            .as_ref()
            .expect("checked above");
        if let Some(&conn) = l.conns.get(&key) {
            if self.sock(conn).is_ok() {
                return self.queue_into(conn, dgram);
            }
            self.stats.dropped_no_listener += 1;
            self.stats.bytes_dropped_no_listener += dgram.data.len() as u64;
            return DeliverOutcome::Dropped {
                reason: DropReason::NoReceiver,
            };
        }
        if l.pending.len() >= l.backlog {
            self.stats.dropped_backlog += 1;
            self.stats.bytes_dropped_backlog += dgram.data.len() as u64;
            return DeliverOutcome::Dropped {
                reason: DropReason::Backlog,
            };
        }

        // Carve the connection: it shares the listener's port (without
        // owning the namespace entry) and is wired to the source socket.
        let (host, port, rcv_limit, snd_limit) = {
            let s = &self.socks[dst.0 as usize];
            (s.host, s.local_port, s.rcv_limit, s.snd_limit)
        };
        let conn = SockId(self.socks.len() as u32);
        self.socks.push(Socket {
            host,
            local_port: port,
            peer: Some(dgram.src),
            peer_sock: Some(key),
            listener: None,
            on_listener: Some((dst, key)),
            rcv_queue: VecDeque::new(),
            rcv_used: 0,
            rcv_limit,
            snd_limit,
            open: true,
        });
        let l = self.socks[dst.0 as usize]
            .listener
            .as_mut()
            .expect("checked above");
        l.pending.push_back(conn);
        self.stats.backlog_peak = self.stats.backlog_peak.max(l.pending.len() as u64);
        l.conns.insert(key, conn);
        self.stats.conns_opened += 1;
        match self.queue_into(conn, dgram) {
            DeliverOutcome::Queued { .. } | DeliverOutcome::NewConn { .. } => {
                DeliverOutcome::NewConn { sock: conn }
            }
            // A first datagram larger than the receive buffer still
            // opens the connection; the payload is counted dropped.
            dropped => {
                let _ = dropped;
                DeliverOutcome::NewConn { sock: conn }
            }
        }
    }

    /// Puts a datagram back at the *front* of the receive queue (an
    /// in-kernel consumer hit a transient resource shortage and will
    /// retry).
    pub fn requeue_front(&mut self, id: SockId, d: Datagram) -> Result<(), NetErr> {
        let s = self.sock_mut(id)?;
        s.rcv_used += d.data.len();
        s.rcv_queue.push_front(d);
        Ok(())
    }

    /// Removes the next queued datagram, if any.
    pub fn recv(&mut self, id: SockId) -> Result<Option<Datagram>, NetErr> {
        let s = self.sock_mut(id)?;
        let d = s.rcv_queue.pop_front();
        if let Some(ref d) = d {
            s.rcv_used -= d.data.len();
        }
        Ok(d)
    }

    /// True if a `recv` would succeed immediately.
    pub fn rcv_ready(&self, id: SockId) -> bool {
        self.sock(id)
            .map(|s| !s.rcv_queue.is_empty())
            .unwrap_or(false)
    }

    /// Datagrams queued on the receive side. Splice stream sources use
    /// this to issue at most one in-kernel pull per queued datagram.
    pub fn rcv_depth(&self, id: SockId) -> usize {
        self.sock(id).map(|s| s.rcv_queue.len()).unwrap_or(0)
    }

    /// Bytes queued on the receive side.
    pub fn rcv_used(&self, id: SockId) -> usize {
        self.sock(id).map(|s| s.rcv_used).unwrap_or(0)
    }
}

impl Default for Net {
    fn default() -> Self {
        Net::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOST: u32 = 1;

    fn dgram(net: &Net, from: SockId, len: usize) -> Datagram {
        Datagram {
            src: net.source_addr(from).unwrap(),
            src_sock: from,
            data: vec![7; len],
        }
    }

    fn pair(net: &mut Net, port: u16) -> (SockId, SockId) {
        let a = net.socket(HOST);
        let b = net.socket(HOST);
        net.bind(b, port).unwrap();
        net.connect(a, NetAddr { host: HOST, port }).unwrap();
        (a, b)
    }

    #[test]
    fn close_counts_discarded_queued_datagrams() {
        let mut net = Net::new();
        let (a, b) = pair(&mut net, 9);
        assert!(matches!(
            net.deliver(b, dgram(&net, a, 100)),
            DeliverOutcome::Queued { .. }
        ));
        assert!(matches!(
            net.deliver(b, dgram(&net, a, 50)),
            DeliverOutcome::Queued { .. }
        ));
        net.close(b).unwrap();
        let st = net.stats();
        assert_eq!(st.discarded_close, 2);
        assert_eq!(st.bytes_discarded_close, 150);
        // They stay counted as delivered: discard is a sub-bucket.
        assert_eq!(st.delivered, 2);
        assert_eq!(st.bytes_delivered, 150);
    }

    #[test]
    fn loopback_send_recv() {
        let mut net = Net::new();
        let (a, b) = pair(&mut net, 9);
        let tx = net.send(SimTime::ZERO, a, 100).unwrap();
        assert_eq!(tx.dst, Some(b));
        assert_eq!(tx.gone, None);
        assert!(tx.arrival > SimTime::ZERO);
        let d = dgram(&net, a, 100);
        assert_eq!(
            net.deliver(b, d.clone()),
            DeliverOutcome::Queued { sock: b }
        );
        assert!(net.rcv_ready(b));
        assert_eq!(net.recv(b).unwrap(), Some(d));
        assert!(!net.rcv_ready(b));
        assert_eq!(net.rcv_used(b), 0);
    }

    #[test]
    fn unbound_destination_counts_no_listener_only() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        net.connect(
            a,
            NetAddr {
                host: HOST,
                port: 99,
            },
        )
        .unwrap();
        let tx = net.send(SimTime::ZERO, a, 10).unwrap();
        assert_eq!(tx.dst, None);
        assert_eq!(tx.gone, Some(TxGone::NoReceiver));
        assert_eq!(net.stats().dropped_no_listener, 1);
        assert_eq!(net.stats().bytes_dropped_no_listener, 10);
        assert_eq!(net.stats().dropped_rcv_full, 0, "taxonomy is disjoint");
        assert_eq!(net.stats().dropped(), 1);
    }

    #[test]
    fn full_receive_buffer_counts_rcv_full_only() {
        let mut net = Net::new();
        net.set_rcv_limit(150);
        let (a, b) = pair(&mut net, 9);
        let big = dgram(&net, a, 100);
        assert_eq!(
            net.deliver(b, big.clone()),
            DeliverOutcome::Queued { sock: b }
        );
        assert_eq!(
            net.deliver(b, big),
            DeliverOutcome::Dropped {
                reason: DropReason::RcvFull
            }
        );
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().dropped_rcv_full, 1);
        assert_eq!(net.stats().bytes_dropped_rcv_full, 100);
        assert_eq!(net.stats().dropped_no_listener, 0, "taxonomy is disjoint");
    }

    #[test]
    fn port_collision_rejected() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        let b = net.socket(HOST);
        net.bind(a, 9).unwrap();
        assert_eq!(net.bind(b, 9), Err(NetErr::PortInUse));
        // Same port on another host is fine.
        let c = net.socket(2);
        assert_eq!(net.bind(c, 9), Ok(()));
    }

    #[test]
    fn close_releases_port_and_rejects_use() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        net.bind(a, 9).unwrap();
        net.close(a).unwrap();
        assert_eq!(net.recv(a), Err(NetErr::BadSocket));
        let b = net.socket(HOST);
        assert_eq!(net.bind(b, 9), Ok(()), "port freed by close");
    }

    #[test]
    fn remote_link_serialises_and_adds_latency() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        let b = net.socket(2);
        net.bind(b, 7).unwrap();
        net.connect(a, NetAddr { host: 2, port: 7 }).unwrap();
        let t1 = net.send(SimTime::ZERO, a, 1250).unwrap(); // 1ms wire at 10 Mbit
        let t2 = net.send(SimTime::ZERO, a, 1250).unwrap();
        assert!(
            t2.arrival > t1.arrival,
            "link serialises back-to-back sends"
        );
        assert!(t1.arrival >= SimTime::ZERO + Dur::from_us(2000)); // wire + latency
    }

    #[test]
    fn oversized_datagram_rejected() {
        let mut net = Net::new();
        let (a, _b) = pair(&mut net, 9);
        assert_eq!(
            net.send(SimTime::ZERO, a, MAX_DGRAM + 1),
            Err(NetErr::MsgTooBig)
        );
    }

    #[test]
    fn requeue_front_preserves_order_and_accounting() {
        let mut net = Net::new();
        let (a, b) = pair(&mut net, 9);
        let mut d1 = dgram(&net, a, 10);
        d1.data = vec![1; 10];
        let mut d2 = dgram(&net, a, 10);
        d2.data = vec![2; 10];
        net.deliver(b, d1.clone());
        net.deliver(b, d2.clone());
        let got = net.recv(b).unwrap().unwrap();
        assert_eq!(got, d1);
        net.requeue_front(b, got).unwrap();
        assert_eq!(net.rcv_used(b), 20);
        assert_eq!(
            net.recv(b).unwrap().unwrap(),
            d1,
            "requeued dgram comes first"
        );
        assert_eq!(net.recv(b).unwrap().unwrap(), d2);
    }

    #[test]
    fn send_without_connect_fails() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        assert_eq!(net.send(SimTime::ZERO, a, 10), Err(NetErr::NotConnected));
    }

    // ----- connection layer ------------------------------------------------

    fn listener(net: &mut Net, port: u16, backlog: u32) -> SockId {
        let l = net.socket(HOST);
        net.bind(l, port).unwrap();
        net.listen(l, backlog).unwrap();
        l
    }

    fn client(net: &mut Net, port: u16) -> SockId {
        let c = net.socket(HOST);
        net.connect(c, NetAddr { host: HOST, port }).unwrap();
        c
    }

    #[test]
    fn listen_requires_bound_port() {
        let mut net = Net::new();
        let s = net.socket(HOST);
        assert_eq!(net.listen(s, 4), Err(NetErr::NotBound));
        assert_eq!(net.accept(s), Err(NetErr::NotBound));
    }

    #[test]
    fn first_datagram_carves_connection() {
        let mut net = Net::new();
        let l = listener(&mut net, 80, 8);
        let c = client(&mut net, 80);
        let tx = net.send(SimTime::ZERO, c, 0).unwrap();
        assert_eq!(tx.dst, Some(l), "addressed to the listener");
        let DeliverOutcome::NewConn { sock: conn } = net.deliver(l, dgram(&net, c, 0)) else {
            panic!("expected a new connection");
        };
        assert_eq!(net.stats().conns_opened, 1);
        assert_eq!(net.pending_conns(l), 1);
        assert_eq!(net.stats().backlog_peak, 1, "peak tracks the pending queue");
        assert_eq!(net.accept(l).unwrap(), Some(conn));
        assert_eq!(net.pending_conns(l), 0);
        assert_eq!(net.accept(l).unwrap(), None, "backlog drained");
        assert_eq!(net.stats().backlog_peak, 1, "peak is sticky across accepts");
        // The connection shares the listener's port and is wired back.
        assert_eq!(net.local_port(conn), Some(80));
        assert_eq!(net.peer(conn), net.source_addr(c).ok());
        // A second datagram from the same source demultiplexes into it.
        assert_eq!(
            net.deliver(l, dgram(&net, c, 100)),
            DeliverOutcome::Queued { sock: conn }
        );
        assert_eq!(net.rcv_used(conn), 100);
    }

    #[test]
    fn replies_route_to_the_wired_peer_socket() {
        let mut net = Net::new();
        let l = listener(&mut net, 80, 8);
        let c = client(&mut net, 80);
        net.deliver(l, dgram(&net, c, 0));
        let conn = net.accept(l).unwrap().unwrap();
        let tx = net.send(SimTime::ZERO, conn, 500).unwrap();
        assert_eq!(
            tx.dst,
            Some(c),
            "reply bypasses the port namespace (client is unbound)"
        );
    }

    #[test]
    fn backlog_overflow_refuses_without_carving() {
        let mut net = Net::new();
        let l = listener(&mut net, 80, 2);
        let socks_before = {
            let c1 = client(&mut net, 80);
            let c2 = client(&mut net, 80);
            let c3 = client(&mut net, 80);
            net.deliver(l, dgram(&net, c1, 0));
            net.deliver(l, dgram(&net, c2, 0));
            let before = net.open_socks();
            assert_eq!(
                net.deliver(l, dgram(&net, c3, 0)),
                DeliverOutcome::Dropped {
                    reason: DropReason::Backlog
                }
            );
            before
        };
        assert_eq!(net.stats().dropped_backlog, 1);
        assert_eq!(net.open_socks(), socks_before, "refusal carves no socket");
        assert_eq!(net.conn_count(l), 2);
        // Accepting one frees a slot: the refused client may retry.
        let c3 = client(&mut net, 80);
        net.accept(l).unwrap().unwrap();
        assert!(matches!(
            net.deliver(l, dgram(&net, c3, 0)),
            DeliverOutcome::NewConn { .. }
        ));
    }

    #[test]
    fn closing_connection_frees_demux_slot() {
        let mut net = Net::new();
        let l = listener(&mut net, 80, 4);
        let c = client(&mut net, 80);
        net.deliver(l, dgram(&net, c, 0));
        let conn = net.accept(l).unwrap().unwrap();
        net.close(conn).unwrap();
        assert_eq!(net.conn_count(l), 0, "demux entry freed");
        // The same source reconnects into a fresh connection.
        assert!(matches!(
            net.deliver(l, dgram(&net, c, 0)),
            DeliverOutcome::NewConn { .. }
        ));
    }

    #[test]
    fn closing_listener_reaps_pending_and_detaches_accepted() {
        let mut net = Net::new();
        let l = listener(&mut net, 80, 4);
        let c1 = client(&mut net, 80);
        let c2 = client(&mut net, 80);
        net.deliver(l, dgram(&net, c1, 0));
        net.deliver(l, dgram(&net, c2, 0));
        let accepted = net.accept(l).unwrap().unwrap();
        let open_before = net.open_socks();
        net.close(l).unwrap();
        // Listener and the one pending connection die; the accepted one
        // survives and can still be closed cleanly afterwards.
        assert_eq!(net.open_socks(), open_before - 2);
        assert!(net.recv(accepted).is_ok());
        net.close(accepted).unwrap();
        // The port is free again.
        let n = net.socket(HOST);
        assert_eq!(net.bind(n, 80), Ok(()));
    }

    // ----- link model ------------------------------------------------------

    fn model(loss_ppm: u32) -> LinkModel {
        LinkModel {
            bps: 1_000_000,
            base_latency: Dur::from_us(100),
            jitter: Dur::from_us(50),
            loss_ppm,
            seed: 42,
        }
    }

    #[test]
    fn link_model_is_deterministic_by_occurrence() {
        let run = |seed: u64| {
            let mut net = Net::new();
            net.set_link_model(
                HOST,
                LinkModel {
                    seed,
                    ..model(200_000)
                },
            );
            let (a, _b) = pair(&mut net, 9);
            let arrivals: Vec<u64> = (0..20)
                .map(|_| {
                    net.send(SimTime::ZERO, a, 1000)
                        .unwrap()
                        .arrival
                        .since(SimTime::ZERO)
                        .as_ns()
                })
                .collect();
            (arrivals, net.stats().lost_link)
        };
        assert_eq!(run(42), run(42), "same seed, same wire");
        assert_ne!(run(42), run(43), "different seed, different draws");
    }

    #[test]
    fn link_model_jitter_never_reorders() {
        let mut net = Net::new();
        net.set_link_model(HOST, model(0));
        let (a, _b) = pair(&mut net, 9);
        let mut last = 0;
        for _ in 0..50 {
            let t = net
                .send(SimTime::ZERO, a, 100)
                .unwrap()
                .arrival
                .since(SimTime::ZERO)
                .as_ns();
            assert!(t >= last, "FIFO per link");
            last = t;
        }
    }

    #[test]
    fn link_loss_counts_bytes_exactly() {
        let mut net = Net::new();
        net.set_link_model(
            HOST,
            LinkModel {
                jitter: Dur::ZERO,
                ..model(500_000)
            },
        );
        let (a, _b) = pair(&mut net, 9);
        let mut sent_bytes = 0u64;
        for _ in 0..200 {
            // Stay under the send buffer: tiny payloads.
            let tx = net.send(SimTime::ZERO, a, 10).unwrap();
            sent_bytes += 10;
            if tx.dst.is_none() {
                assert_eq!(tx.gone, Some(TxGone::Lost));
            }
        }
        let st = net.stats();
        assert!(st.lost_link > 0, "ppm=500000 over 200 draws");
        assert_eq!(st.bytes_lost_link, st.lost_link * 10);
        assert_eq!(st.bytes_sent, sent_bytes);
    }

    #[test]
    fn send_buffer_backpressure_bounces_and_reports_ready_time() {
        let mut net = Net::new();
        net.set_snd_limit(2_000);
        net.set_link_model(
            HOST,
            LinkModel {
                jitter: Dur::ZERO,
                loss_ppm: 0,
                ..model(0)
            },
        );
        let (a, _b) = pair(&mut net, 9);
        // 1 Mbyte/s link: each 1000-byte datagram holds the wire 1 ms.
        net.send(SimTime::ZERO, a, 1000).unwrap();
        net.send(SimTime::ZERO, a, 1000).unwrap();
        assert!(net.send_would_block(SimTime::ZERO, a, 1000));
        assert_eq!(net.send(SimTime::ZERO, a, 1000), Err(NetErr::WouldBlock));
        assert_eq!(net.stats().snd_blocked, 1);
        assert_eq!(net.stats().sent, 2, "bounced send commits nothing");
        let ready = net.link_ready_at(SimTime::ZERO, a, 1000);
        assert!(ready > SimTime::ZERO);
        assert!(
            !net.send_would_block(ready, a, 1000),
            "retry at the reported time succeeds"
        );
        net.send(ready, a, 1000).unwrap();
        // Zero-byte datagrams (connection requests) never block.
        assert!(!net.send_would_block(SimTime::ZERO, a, 0));
    }

    #[test]
    fn conservation_identity_holds() {
        let mut net = Net::new();
        net.set_rcv_limit(1_500);
        net.set_link_model(
            HOST,
            LinkModel {
                jitter: Dur::ZERO,
                ..model(300_000)
            },
        );
        let l = listener(&mut net, 80, 1);
        let c = client(&mut net, 80);
        let c2 = client(&mut net, 80);
        let mut t = SimTime::ZERO;
        for i in 0..100 {
            let from = if i % 2 == 0 { c } else { c2 };
            t += Dur::from_ms(10); // stay under the send buffer
            if let Ok(tx) = net.send(t, from, 400) {
                if tx.dst == Some(l) {
                    net.deliver(
                        l,
                        Datagram {
                            src: net.source_addr(from).unwrap(),
                            src_sock: from,
                            data: vec![0; 400],
                        },
                    );
                }
            }
        }
        let st = net.stats();
        assert_eq!(
            st.bytes_sent,
            st.bytes_delivered
                + st.bytes_lost_link
                + st.bytes_dropped_no_listener
                + st.bytes_dropped_rcv_full
                + st.bytes_dropped_backlog,
            "every committed byte lands in exactly one bucket"
        );
    }
}
