#![warn(missing_docs)]

//! UDP socket substrate.
//!
//! §5.1: "The current implementation of splice supports … socket-to-socket
//! splices for the UDP transport protocol, and framebuffer-to-socket
//! splices". This crate provides the socket layer those splices run over:
//! datagram sockets with bounded receive buffers, a port namespace, and a
//! link model (loopback is free of wire time; a remote hop pays serialised
//! bandwidth plus latency).
//!
//! Like the other substrates, the crate is a pure state machine: `send`
//! computes where and when a datagram would arrive; the kernel schedules
//! the delivery event, charges protocol CPU costs, and calls
//! [`Net::deliver`] when the time comes. Blocking (`recv` on an empty
//! queue, send-buffer exhaustion) is expressed as outcomes the kernel
//! turns into sleeps.

use std::collections::{HashMap, VecDeque};

use ksim::{Dur, SimTime};

/// Socket identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SockId(pub u32);

/// A UDP endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NetAddr {
    /// Host identifier (the simulated DECstation is host 1).
    pub host: u32,
    /// UDP port.
    pub port: u16,
}

/// One datagram in flight or queued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Sender address.
    pub src: NetAddr,
    /// Payload.
    pub data: Vec<u8>,
}

/// Errors from socket operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetErr {
    /// Unknown socket.
    BadSocket,
    /// Port already bound on that host.
    PortInUse,
    /// Socket has no peer (send without connect).
    NotConnected,
    /// Datagram exceeds the maximum size.
    MsgTooBig,
}

/// Where and when a sent datagram arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxInfo {
    /// Arrival instant (schedule the delivery event here).
    pub arrival: SimTime,
    /// Receiving socket, if one is bound to the destination; `None`
    /// means the datagram vanishes (no listener), like real UDP.
    pub dst: Option<SockId>,
}

/// Result of delivering a datagram into a receive buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliverOutcome {
    /// Queued; if a process sleeps on the socket, wake it.
    Queued,
    /// Receive buffer full: dropped (counted).
    Dropped,
}

/// Largest datagram the stack accepts (a generous classic UDP bound).
pub const MAX_DGRAM: usize = 32 * 1024;

struct Socket {
    host: u32,
    local_port: Option<u16>,
    peer: Option<NetAddr>,
    rcv_queue: VecDeque<Datagram>,
    rcv_used: usize,
    rcv_limit: usize,
    open: bool,
}

/// Cumulative network counters.
#[derive(Clone, Copy, Default, Debug)]
pub struct NetStats {
    /// Datagrams sent.
    pub sent: u64,
    /// Datagrams queued to a receiver.
    pub delivered: u64,
    /// Datagrams dropped (no listener or full buffer).
    pub dropped: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
}

/// The network stack state.
pub struct Net {
    socks: Vec<Socket>,
    ports: HashMap<NetAddr, SockId>,
    /// Off-host link: serialised bandwidth + propagation delay.
    link_bps: u64,
    link_latency: Dur,
    link_busy_until: SimTime,
    /// Loopback delivery delay (protocol queue hop; the CPU cost is
    /// charged by the kernel separately).
    loopback_delay: Dur,
    rcv_limit: usize,
    stats: NetStats,
}

impl Net {
    /// A stack with a 10 Mbit/s off-host link (the era's Ethernet) and
    /// 64 KB socket receive buffers.
    pub fn new() -> Net {
        Net {
            socks: Vec::new(),
            ports: HashMap::new(),
            link_bps: 1_250_000,
            link_latency: Dur::from_us(1000),
            link_busy_until: SimTime::ZERO,
            loopback_delay: Dur::from_us(50),
            rcv_limit: 64 * 1024,
            stats: NetStats::default(),
        }
    }

    /// Overrides the receive-buffer limit for new sockets.
    pub fn set_rcv_limit(&mut self, limit: usize) {
        self.rcv_limit = limit;
    }

    /// Counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn sock(&self, id: SockId) -> Result<&Socket, NetErr> {
        self.socks
            .get(id.0 as usize)
            .filter(|s| s.open)
            .ok_or(NetErr::BadSocket)
    }

    fn sock_mut(&mut self, id: SockId) -> Result<&mut Socket, NetErr> {
        self.socks
            .get_mut(id.0 as usize)
            .filter(|s| s.open)
            .ok_or(NetErr::BadSocket)
    }

    /// Creates a UDP socket on `host`.
    pub fn socket(&mut self, host: u32) -> SockId {
        let id = SockId(self.socks.len() as u32);
        self.socks.push(Socket {
            host,
            local_port: None,
            peer: None,
            rcv_queue: VecDeque::new(),
            rcv_used: 0,
            rcv_limit: self.rcv_limit,
            open: true,
        });
        id
    }

    /// Closes a socket, releasing its port and dropping queued data.
    pub fn close(&mut self, id: SockId) -> Result<(), NetErr> {
        let (host, port) = {
            let s = self.sock_mut(id)?;
            s.open = false;
            s.rcv_queue.clear();
            s.rcv_used = 0;
            (s.host, s.local_port)
        };
        if let Some(p) = port {
            self.ports.remove(&NetAddr { host, port: p });
        }
        Ok(())
    }

    /// Binds a socket to a local port.
    pub fn bind(&mut self, id: SockId, port: u16) -> Result<(), NetErr> {
        let host = self.sock(id)?.host;
        let addr = NetAddr { host, port };
        if self.ports.contains_key(&addr) {
            return Err(NetErr::PortInUse);
        }
        self.sock_mut(id)?.local_port = Some(port);
        self.ports.insert(addr, id);
        Ok(())
    }

    /// Sets the peer address for `send`.
    pub fn connect(&mut self, id: SockId, peer: NetAddr) -> Result<(), NetErr> {
        self.sock_mut(id)?.peer = Some(peer);
        Ok(())
    }

    /// The socket's bound port, if any.
    pub fn local_port(&self, id: SockId) -> Option<u16> {
        self.sock(id).ok().and_then(|s| s.local_port)
    }

    /// The socket's connected peer, if any.
    pub fn peer(&self, id: SockId) -> Option<NetAddr> {
        self.sock(id).ok().and_then(|s| s.peer)
    }

    /// Computes the transmission of `len` payload bytes from `id` to its
    /// peer: who receives it and when. The kernel schedules the delivery.
    pub fn send(&mut self, now: SimTime, id: SockId, len: usize) -> Result<TxInfo, NetErr> {
        if len > MAX_DGRAM {
            return Err(NetErr::MsgTooBig);
        }
        let (host, peer) = {
            let s = self.sock(id)?;
            (s.host, s.peer.ok_or(NetErr::NotConnected)?)
        };
        self.stats.sent += 1;
        let dst = self.ports.get(&peer).copied();
        let arrival = if peer.host == host {
            now + self.loopback_delay
        } else {
            let start = if now > self.link_busy_until {
                now
            } else {
                self.link_busy_until
            };
            let end = start + Dur::for_bytes(len as u64, self.link_bps);
            self.link_busy_until = end;
            end + self.link_latency
        };
        if dst.is_none() {
            self.stats.dropped += 1;
        }
        Ok(TxInfo { arrival, dst })
    }

    /// Source address a datagram from `id` carries.
    pub fn source_addr(&self, id: SockId) -> Result<NetAddr, NetErr> {
        let s = self.sock(id)?;
        Ok(NetAddr {
            host: s.host,
            port: s.local_port.unwrap_or(0),
        })
    }

    /// Delivers a datagram into `dst`'s receive buffer.
    pub fn deliver(&mut self, dst: SockId, dgram: Datagram) -> DeliverOutcome {
        let Ok(s) = self.sock_mut(dst) else {
            self.stats.dropped += 1;
            return DeliverOutcome::Dropped;
        };
        if s.rcv_used + dgram.data.len() > s.rcv_limit {
            self.stats.dropped += 1;
            return DeliverOutcome::Dropped;
        }
        s.rcv_used += dgram.data.len();
        let bytes = dgram.data.len() as u64;
        s.rcv_queue.push_back(dgram);
        self.stats.delivered += 1;
        self.stats.bytes_delivered += bytes;
        DeliverOutcome::Queued
    }

    /// Puts a datagram back at the *front* of the receive queue (an
    /// in-kernel consumer hit a transient resource shortage and will
    /// retry).
    pub fn requeue_front(&mut self, id: SockId, d: Datagram) -> Result<(), NetErr> {
        let s = self.sock_mut(id)?;
        s.rcv_used += d.data.len();
        s.rcv_queue.push_front(d);
        Ok(())
    }

    /// Removes the next queued datagram, if any.
    pub fn recv(&mut self, id: SockId) -> Result<Option<Datagram>, NetErr> {
        let s = self.sock_mut(id)?;
        let d = s.rcv_queue.pop_front();
        if let Some(ref d) = d {
            s.rcv_used -= d.data.len();
        }
        Ok(d)
    }

    /// True if a `recv` would succeed immediately.
    pub fn rcv_ready(&self, id: SockId) -> bool {
        self.sock(id)
            .map(|s| !s.rcv_queue.is_empty())
            .unwrap_or(false)
    }

    /// Datagrams queued on the receive side. Splice stream sources use
    /// this to issue at most one in-kernel pull per queued datagram.
    pub fn rcv_depth(&self, id: SockId) -> usize {
        self.sock(id).map(|s| s.rcv_queue.len()).unwrap_or(0)
    }

    /// Bytes queued on the receive side.
    pub fn rcv_used(&self, id: SockId) -> usize {
        self.sock(id).map(|s| s.rcv_used).unwrap_or(0)
    }
}

impl Default for Net {
    fn default() -> Self {
        Net::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOST: u32 = 1;

    fn pair(net: &mut Net, port: u16) -> (SockId, SockId) {
        let a = net.socket(HOST);
        let b = net.socket(HOST);
        net.bind(b, port).unwrap();
        net.connect(a, NetAddr { host: HOST, port }).unwrap();
        (a, b)
    }

    #[test]
    fn loopback_send_recv() {
        let mut net = Net::new();
        let (a, b) = pair(&mut net, 9);
        let tx = net.send(SimTime::ZERO, a, 100).unwrap();
        assert_eq!(tx.dst, Some(b));
        assert!(tx.arrival > SimTime::ZERO);
        let d = Datagram {
            src: net.source_addr(a).unwrap(),
            data: vec![7; 100],
        };
        assert_eq!(net.deliver(b, d.clone()), DeliverOutcome::Queued);
        assert!(net.rcv_ready(b));
        assert_eq!(net.recv(b).unwrap(), Some(d));
        assert!(!net.rcv_ready(b));
        assert_eq!(net.rcv_used(b), 0);
    }

    #[test]
    fn unbound_destination_drops() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        net.connect(
            a,
            NetAddr {
                host: HOST,
                port: 99,
            },
        )
        .unwrap();
        let tx = net.send(SimTime::ZERO, a, 10).unwrap();
        assert_eq!(tx.dst, None);
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn full_receive_buffer_drops() {
        let mut net = Net::new();
        net.set_rcv_limit(150);
        let (_a, b) = pair(&mut net, 9);
        let big = Datagram {
            src: NetAddr {
                host: HOST,
                port: 0,
            },
            data: vec![0; 100],
        };
        assert_eq!(net.deliver(b, big.clone()), DeliverOutcome::Queued);
        assert_eq!(net.deliver(b, big), DeliverOutcome::Dropped);
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn port_collision_rejected() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        let b = net.socket(HOST);
        net.bind(a, 9).unwrap();
        assert_eq!(net.bind(b, 9), Err(NetErr::PortInUse));
        // Same port on another host is fine.
        let c = net.socket(2);
        assert_eq!(net.bind(c, 9), Ok(()));
    }

    #[test]
    fn close_releases_port_and_rejects_use() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        net.bind(a, 9).unwrap();
        net.close(a).unwrap();
        assert_eq!(net.recv(a), Err(NetErr::BadSocket));
        let b = net.socket(HOST);
        assert_eq!(net.bind(b, 9), Ok(()), "port freed by close");
    }

    #[test]
    fn remote_link_serialises_and_adds_latency() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        let b = net.socket(2);
        net.bind(b, 7).unwrap();
        net.connect(a, NetAddr { host: 2, port: 7 }).unwrap();
        let t1 = net.send(SimTime::ZERO, a, 1250).unwrap(); // 1ms wire at 10 Mbit
        let t2 = net.send(SimTime::ZERO, a, 1250).unwrap();
        assert!(
            t2.arrival > t1.arrival,
            "link serialises back-to-back sends"
        );
        assert!(t1.arrival >= SimTime::ZERO + Dur::from_us(2000)); // wire + latency
    }

    #[test]
    fn oversized_datagram_rejected() {
        let mut net = Net::new();
        let (a, _b) = pair(&mut net, 9);
        assert_eq!(
            net.send(SimTime::ZERO, a, MAX_DGRAM + 1),
            Err(NetErr::MsgTooBig)
        );
    }

    #[test]
    fn requeue_front_preserves_order_and_accounting() {
        let mut net = Net::new();
        let (_a, b) = pair(&mut net, 9);
        let d1 = Datagram {
            src: NetAddr {
                host: HOST,
                port: 0,
            },
            data: vec![1; 10],
        };
        let d2 = Datagram {
            src: NetAddr {
                host: HOST,
                port: 0,
            },
            data: vec![2; 10],
        };
        net.deliver(b, d1.clone());
        net.deliver(b, d2.clone());
        let got = net.recv(b).unwrap().unwrap();
        assert_eq!(got, d1);
        net.requeue_front(b, got).unwrap();
        assert_eq!(net.rcv_used(b), 20);
        assert_eq!(
            net.recv(b).unwrap().unwrap(),
            d1,
            "requeued dgram comes first"
        );
        assert_eq!(net.recv(b).unwrap().unwrap(), d2);
    }

    #[test]
    fn send_without_connect_fails() {
        let mut net = Net::new();
        let a = net.socket(HOST);
        assert_eq!(net.send(SimTime::ZERO, a, 10), Err(NetErr::NotConnected));
    }
}
