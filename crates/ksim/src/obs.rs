//! Scale-aware request observability: sampled request spans with
//! tail retention, an SLO burn-rate monitor, and a flight recorder.
//!
//! At million-connection scale the bounded [`Trace`](crate::Trace) ring
//! either drops the events you needed or dominates the run, so request
//! telemetry cannot be trace-everything-or-nothing. This module keeps a
//! *resident* per-request pipeline with a bounded, measured cost:
//!
//! 1. **Stage** — every accepted connection opens a small scratch entry
//!    ([`note_accept`](Observability::note_accept)), because tail
//!    retention needs the accept timestamp even for requests that will
//!    not be kept.
//! 2. **Commit or discard at close** — when the connection closes
//!    ([`note_close`](Observability::note_close)) the scratch either
//!    becomes a committed [`ReqSpan`] or vanishes. A span commits iff
//!    it was **head-sampled** (a deterministic seeded keep-1-in-N draw
//!    on the connection id, decided at accept) or **tail-retained**
//!    (the request errored or exceeded the SLO latency target —
//!    decidable only at close, which is why staging exists). Nothing
//!    commits mid-flight.
//! 3. **Monitor** — every close feeds a sliding-window burn-rate
//!    computation over the end-to-end latency objective. Crossing the
//!    alert threshold emits a typed alert; the kernel reacts by
//!    freezing the last K trace-ring records into a [`FlightDump`].
//!
//! Both the sampling draw and the burn-rate arithmetic are pure integer
//! functions of the run's inputs, so committed-span sets, alerts, and
//! flight dumps replay byte-identically under a fixed seed.

use std::collections::{HashMap, VecDeque};

use crate::hist::Hist;
use crate::json::Json;
use crate::time::{Dur, SimTime};
use crate::trace::TraceRecord;

/// The latency objective the burn-rate monitor guards.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// A request is a violation if its end-to-end latency exceeds this
    /// (or it errored).
    pub latency_target: Dur,
    /// Objective in thousandths: 999 means "99.9% of requests within
    /// target", leaving an error budget of 0.1%.
    pub objective_milli: u32,
    /// Sliding window over which the violation fraction is measured.
    pub window: Dur,
    /// Alert when the burn rate — (window violation fraction) divided
    /// by the error budget — reaches this many thousandths. 1000 means
    /// "burning exactly at budget"; the conventional fast-burn page is
    /// well above (e.g. 10_000 = 10x budget).
    pub burn_threshold_milli: u32,
    /// No alerts until the window holds at least this many requests
    /// (one early violation is not an incident).
    pub min_window_requests: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_target: Dur::from_ms(500),
            objective_milli: 999,
            window: Dur::from_secs(10),
            burn_threshold_milli: 10_000,
            min_window_requests: 64,
        }
    }
}

/// Configuration for the resident observability layer.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Master switch: when false, every hook is a no-op costing one
    /// branch and no simulated CPU.
    pub enabled: bool,
    /// Head-sampling period: keep 1-in-N connections (1 = keep all).
    pub sample_period: u32,
    /// Seed for the deterministic per-connection sampling draw.
    pub seed: u64,
    /// The latency objective and alerting policy.
    pub slo: SloConfig,
    /// Committed-span ring capacity; the oldest span drops (and is
    /// counted) once full.
    pub committed_capacity: usize,
    /// Simulated CPU charged at accept to stage the scratch entry —
    /// paid by *every* connection, so it must stay far below the
    /// per-request service cost.
    pub stage_cost: Dur,
    /// Simulated CPU charged at close for a span that commits.
    pub commit_cost: Dur,
    /// Trace-ring records frozen into the flight dump on alert.
    pub flight_k: usize,
}

impl ObsConfig {
    /// The resident default: head-sample 1-in-64 with a generous SLO.
    pub fn on() -> Self {
        ObsConfig {
            enabled: true,
            sample_period: 64,
            seed: 0x0b5e11ab1e,
            slo: SloConfig::default(),
            committed_capacity: 65_536,
            stage_cost: Dur::from_us(2),
            commit_cost: Dur::from_us(60),
            flight_k: 256,
        }
    }

    /// Fully disabled: hooks cost one branch, no staging, no monitor.
    pub fn off() -> Self {
        ObsConfig {
            enabled: false,
            ..Self::on()
        }
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::on()
    }
}

/// One committed request span: the accept→close lifetime of a served
/// connection, with its outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReqSpan {
    /// Connection (socket) id.
    pub conn: u32,
    /// When the server accepted the connection.
    pub accepted: SimTime,
    /// When the connection closed.
    pub closed: SimTime,
    /// End-to-end latency in nanoseconds (`closed - accepted`).
    pub latency_ns: u64,
    /// Payload bytes moved to the connection.
    pub bytes: u64,
    /// Errno name if the request failed.
    pub error: Option<&'static str>,
    /// True if latency exceeded the SLO target.
    pub over_slo: bool,
    /// True if the deterministic head-sampling draw kept this
    /// connection (false for spans that exist only via tail retention).
    pub head_sampled: bool,
    /// Trace sequence number at accept — the exemplar link from a
    /// histogram bucket back into the trace ring.
    pub accept_seq: u64,
}

/// A burn-rate alert: the monitor's window state at the crossing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloAlertInfo {
    /// Burn rate in thousandths of the error budget.
    pub burn_milli: u32,
    /// Violations in the window.
    pub window_viol: u32,
    /// Requests in the window.
    pub window_req: u32,
}

/// What [`Observability::note_close`] decided.
#[derive(Clone, Copy, Debug, Default)]
pub struct CloseOutcome {
    /// Simulated CPU to charge the closing syscall.
    pub cost: Dur,
    /// True when the conn had a staged span (false for never-staged
    /// sockets: clients, listeners, disabled pipelines).
    pub observed: bool,
    /// True when the request errored or ran over the SLO target.
    pub violation: bool,
    /// Set when this close pushed the burn rate over the alert
    /// threshold (first crossing only; re-arms when the burn subsides).
    pub alert: Option<SloAlertInfo>,
}

/// Monotone counters the metrics snapshot surfaces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Requests observed (staged connections that closed).
    pub requests: u64,
    /// Requests that errored or exceeded the SLO target.
    pub violations: u64,
    /// Requests that errored.
    pub errors: u64,
    /// Burn-rate alerts fired.
    pub alerts: u64,
    /// Peak simultaneously-staged scratch entries.
    pub staged_peak: u64,
    /// Spans committed (head-sampled or tail-retained).
    pub committed: u64,
    /// Committed spans kept by the head-sampling draw.
    pub head_sampled: u64,
    /// Committed spans kept only because they errored or ran over SLO.
    pub tail_retained: u64,
    /// Committed spans evicted from the bounded ring.
    pub spans_dropped: u64,
}

/// The last K trace-ring records, frozen at the moment an SLO alert
/// fired — the post-incident "what was the kernel doing" artifact.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// When the alert fired.
    pub at: SimTime,
    /// The monitor state that triggered the freeze.
    pub alert: SloAlertInfo,
    /// The frozen records, oldest first.
    pub records: Vec<TraceRecord>,
}

impl FlightDump {
    /// Serializes the dump as a deterministic artifact document
    /// (`FLIGHT_<workload>.json`): schema-versioned, with each record's
    /// stable event name and args.
    pub fn to_json(&self, workload: &str) -> Json {
        let recs: Vec<Json> = self
            .records
            .iter()
            .map(|r| {
                Json::obj()
                    .with("seq", Json::Num(r.seq as f64))
                    .with("at_ns", Json::Num(r.at.as_ns() as f64))
                    .with("name", Json::Str(r.ev.name().into()))
                    .with("args", r.ev.args_json())
            })
            .collect();
        Json::obj()
            .with("schema_version", Json::Num(1.0))
            .with("workload", Json::Str(workload.into()))
            .with("at_ns", Json::Num(self.at.as_ns() as f64))
            .with(
                "alert",
                Json::obj()
                    .with("burn_milli", Json::Num(self.alert.burn_milli as f64))
                    .with("window_viol", Json::Num(self.alert.window_viol as f64))
                    .with("window_req", Json::Num(self.alert.window_req as f64)),
            )
            .with("records", Json::Arr(recs))
    }
}

/// Scratch for one in-flight connection (stage → commit/discard).
#[derive(Clone, Copy, Debug)]
struct Staged {
    accepted: SimTime,
    bytes: u64,
    error: Option<&'static str>,
    head_sampled: bool,
    accept_seq: u64,
}

/// The resident observability pipeline; owned by the kernel, driven
/// from its accept / transfer-completion / close paths.
pub struct Observability {
    cfg: ObsConfig,
    staged: HashMap<u32, Staged>,
    committed: VecDeque<ReqSpan>,
    /// End-to-end request latency over *all* requests (the ground truth
    /// the sampled spans are audited against), with per-bucket
    /// exemplars linking tail buckets to their trace spans.
    latency: Hist,
    /// Sliding window of (close time, was-violation) request outcomes.
    window: VecDeque<(SimTime, bool)>,
    /// Alert hysteresis: armed fires once, then re-arms below threshold.
    alerting: bool,
    counters: ObsCounters,
    flight: Option<FlightDump>,
}

/// SplitMix64 — the deterministic per-connection sampling draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Observability {
    /// Creates the pipeline; a disabled config makes every hook a no-op.
    pub fn new(cfg: ObsConfig) -> Self {
        Observability {
            cfg,
            staged: HashMap::new(),
            committed: VecDeque::new(),
            latency: Hist::new(),
            window: VecDeque::new(),
            alerting: false,
            counters: ObsCounters::default(),
            flight: None,
        }
    }

    /// The active configuration.
    pub fn cfg(&self) -> &ObsConfig {
        &self.cfg
    }

    /// The deterministic head-sampling draw for a connection id: keep
    /// 1-in-`sample_period`, decided entirely by (seed, conn).
    pub fn head_keeps(&self, conn: u32) -> bool {
        let period = self.cfg.sample_period.max(1) as u64;
        splitmix64(self.cfg.seed ^ conn as u64).is_multiple_of(period)
    }

    /// Stage a scratch entry for an accepted connection. Returns the
    /// simulated CPU to charge the accept path.
    pub fn note_accept(&mut self, now: SimTime, conn: u32, trace_seq: u64) -> Dur {
        if !self.cfg.enabled {
            return Dur::ZERO;
        }
        self.staged.insert(
            conn,
            Staged {
                accepted: now,
                bytes: 0,
                error: None,
                head_sampled: self.head_keeps(conn),
                accept_seq: trace_seq,
            },
        );
        self.counters.staged_peak = self.counters.staged_peak.max(self.staged.len() as u64);
        self.cfg.stage_cost
    }

    /// Accumulate a completed transfer onto the staged span: bytes
    /// moved toward the connection and, if it failed, the errno. The
    /// first error wins (later retries do not clear it).
    pub fn note_transfer(&mut self, conn: u32, bytes: u64, error: Option<&'static str>) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(s) = self.staged.get_mut(&conn) {
            s.bytes += bytes;
            if s.error.is_none() {
                s.error = error;
            }
        }
    }

    /// Close the connection's span: commit or discard the scratch, feed
    /// the SLO monitor, and report the CPU cost plus any alert. A conn
    /// that was never staged (client sockets, listeners) is a no-op.
    pub fn note_close(&mut self, now: SimTime, conn: u32) -> CloseOutcome {
        if !self.cfg.enabled {
            return CloseOutcome::default();
        }
        let Some(s) = self.staged.remove(&conn) else {
            return CloseOutcome::default();
        };
        let latency_ns = now.since(s.accepted).as_ns();
        let over_slo = latency_ns > self.cfg.slo.latency_target.as_ns();
        let violation = over_slo || s.error.is_some();

        self.counters.requests += 1;
        if violation {
            self.counters.violations += 1;
        }
        if s.error.is_some() {
            self.counters.errors += 1;
        }
        self.latency
            .record_with_exemplar(latency_ns, s.accept_seq, conn);

        // Commit iff head-sampled or tail-retained; never mid-flight.
        let mut cost = Dur::ZERO;
        if s.head_sampled || violation {
            if self.committed.len() == self.cfg.committed_capacity {
                self.committed.pop_front();
                self.counters.spans_dropped += 1;
            }
            self.committed.push_back(ReqSpan {
                conn,
                accepted: s.accepted,
                closed: now,
                latency_ns,
                bytes: s.bytes,
                error: s.error,
                over_slo,
                head_sampled: s.head_sampled,
                accept_seq: s.accept_seq,
            });
            self.counters.committed += 1;
            if s.head_sampled {
                self.counters.head_sampled += 1;
            } else {
                self.counters.tail_retained += 1;
            }
            cost = self.cfg.commit_cost;
        }

        CloseOutcome {
            cost,
            observed: true,
            violation,
            alert: self.monitor(now, violation),
        }
    }

    /// Slide the window, recompute the burn rate, and fire on a
    /// threshold crossing (with hysteresis: one alert per excursion).
    fn monitor(&mut self, now: SimTime, violation: bool) -> Option<SloAlertInfo> {
        self.window.push_back((now, violation));
        while let Some(&(t, _)) = self.window.front() {
            if now.since(t) > self.cfg.slo.window {
                self.window.pop_front();
            } else {
                break;
            }
        }
        let req = self.window.len() as u64;
        let viol = self.window.iter().filter(|&&(_, v)| v).count() as u64;
        let budget_milli = (1000 - self.cfg.slo.objective_milli.min(999)) as u64;
        let burn_milli = (viol * 1_000_000) / (req.max(1) * budget_milli);
        let over = req >= self.cfg.slo.min_window_requests
            && burn_milli >= self.cfg.slo.burn_threshold_milli as u64;
        if !over {
            self.alerting = false;
            return None;
        }
        if self.alerting {
            return None;
        }
        self.alerting = true;
        self.counters.alerts += 1;
        Some(SloAlertInfo {
            burn_milli: burn_milli.min(u32::MAX as u64) as u32,
            window_viol: viol.min(u32::MAX as u64) as u32,
            window_req: req.min(u32::MAX as u64) as u32,
        })
    }

    /// Freeze a flight dump (first alert wins; later alerts keep the
    /// original freeze).
    pub fn freeze_flight(&mut self, at: SimTime, alert: SloAlertInfo, records: Vec<TraceRecord>) {
        if self.flight.is_none() {
            self.flight = Some(FlightDump { at, alert, records });
        }
    }

    /// The frozen flight dump, if an alert fired.
    pub fn flight(&self) -> Option<&FlightDump> {
        self.flight.as_ref()
    }

    /// The committed spans, oldest first.
    pub fn committed_spans(&self) -> impl Iterator<Item = &ReqSpan> + '_ {
        self.committed.iter()
    }

    /// Scratch entries currently staged (in-flight connections).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// The full end-to-end request latency histogram (every request,
    /// sampled or not), with exemplars.
    pub fn latency(&self) -> &Hist {
        &self.latency
    }

    /// Monotone counter snapshot.
    pub fn counters(&self) -> ObsCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_us(us)
    }

    fn keep_all() -> ObsConfig {
        ObsConfig {
            sample_period: 1,
            ..ObsConfig::on()
        }
    }

    #[test]
    fn disabled_hooks_cost_nothing_and_stage_nothing() {
        let mut o = Observability::new(ObsConfig::off());
        assert_eq!(o.note_accept(t(0), 1, 0), Dur::ZERO);
        o.note_transfer(1, 100, None);
        let out = o.note_close(t(10), 1);
        assert_eq!(out.cost, Dur::ZERO);
        assert!(out.alert.is_none());
        assert_eq!(o.counters(), ObsCounters::default());
        assert_eq!(o.committed_spans().count(), 0);
    }

    #[test]
    fn span_stages_accumulates_and_commits_at_close() {
        let mut o = Observability::new(keep_all());
        let cost = o.note_accept(t(0), 7, 42);
        assert_eq!(cost, Dur::from_us(2));
        assert_eq!(o.staged_len(), 1);
        o.note_transfer(7, 4096, None);
        o.note_transfer(7, 4096, None);
        // Nothing commits mid-flight.
        assert_eq!(o.committed_spans().count(), 0);
        let out = o.note_close(t(1500), 7);
        assert_eq!(out.cost, Dur::from_us(60));
        assert_eq!(o.staged_len(), 0);
        let spans: Vec<_> = o.committed_spans().collect();
        assert_eq!(spans.len(), 1);
        let s = spans[0];
        assert_eq!(
            (s.conn, s.bytes, s.latency_ns, s.accept_seq),
            (7, 8192, 1_500_000, 42)
        );
        assert!(s.head_sampled && !s.over_slo && s.error.is_none());
        // The full hist saw it, with the exemplar pointing back.
        assert_eq!(o.latency().count(), 1);
        let e = o.latency().exemplar_at(0.999).unwrap();
        assert_eq!((e.conn, e.trace_seq), (7, 42));
    }

    #[test]
    fn unsampled_clean_span_discards_but_still_counts() {
        let mut o = Observability::new(ObsConfig {
            sample_period: u32::MAX, // head-sampling keeps ~nothing
            ..ObsConfig::on()
        });
        for conn in 0..50u32 {
            o.note_accept(t(conn as u64), conn, 0);
            let out = o.note_close(t(conn as u64 + 10), conn);
            assert_eq!(out.cost, Dur::ZERO, "discard must not charge commit");
        }
        let c = o.counters();
        assert_eq!(c.requests, 50, "every request feeds the monitor");
        assert_eq!(o.latency().count(), 50, "full hist sees every request");
        assert_eq!(c.committed, o.committed_spans().count() as u64);
        assert_eq!(c.head_sampled, c.committed, "no violations to retain");
    }

    #[test]
    fn error_and_over_slo_spans_are_tail_retained_at_any_rate() {
        let mut o = Observability::new(ObsConfig {
            sample_period: u32::MAX,
            ..ObsConfig::on()
        });
        // An errored request: fast, but it failed.
        o.note_accept(t(0), 1, 0);
        o.note_transfer(1, 100, Some("EIO"));
        o.note_close(t(5), 1);
        // An over-SLO request: clean bytes, too slow (target 500ms).
        o.note_accept(t(10), 2, 0);
        o.note_transfer(2, 8192, None);
        o.note_close(t(10 + 600_000), 2);
        let spans: Vec<_> = o.committed_spans().cloned().collect();
        assert_eq!(spans.len(), 2, "both violations commit");
        assert_eq!(spans[0].error, Some("EIO"));
        assert!(!spans[0].head_sampled && !spans[0].over_slo);
        assert!(spans[1].over_slo && spans[1].error.is_none());
        let c = o.counters();
        assert_eq!((c.violations, c.errors, c.tail_retained), (2, 1, 2));
    }

    #[test]
    fn head_sampling_is_deterministic_and_near_rate() {
        let o = Observability::new(ObsConfig::on()); // 1-in-64
        let kept: Vec<u32> = (0..64_000u32).filter(|&c| o.head_keeps(c)).collect();
        let o2 = Observability::new(ObsConfig::on());
        let kept2: Vec<u32> = (0..64_000u32).filter(|&c| o2.head_keeps(c)).collect();
        assert_eq!(kept, kept2, "same seed, same draw");
        // ~1000 expected; a fair hash stays well within 3x bounds.
        assert!(
            (500..=2000).contains(&kept.len()),
            "1-in-64 draw kept {} of 64000",
            kept.len()
        );
        // A different seed keeps a different set.
        let o3 = Observability::new(ObsConfig {
            seed: 1234,
            ..ObsConfig::on()
        });
        let kept3: Vec<u32> = (0..64_000u32).filter(|&c| o3.head_keeps(c)).collect();
        assert_ne!(kept, kept3);
    }

    #[test]
    fn burn_rate_alert_fires_once_per_excursion_and_freezes_flight() {
        let mut o = Observability::new(ObsConfig {
            sample_period: 1,
            slo: SloConfig {
                latency_target: Dur::from_us(100),
                objective_milli: 999,
                window: Dur::from_secs(10),
                burn_threshold_milli: 10_000,
                min_window_requests: 8,
            },
            ..ObsConfig::on()
        });
        // 7 fast requests: under min_window_requests, no alert.
        for conn in 0..7u32 {
            o.note_accept(t(conn as u64 * 10), conn, 0);
            let out = o.note_close(t(conn as u64 * 10 + 5), conn);
            assert!(out.alert.is_none());
        }
        // The 8th is over SLO: window = 8 reqs / 1 viol -> burn 125x.
        o.note_accept(t(100), 100, 0);
        let out = o.note_close(t(100 + 200), 100);
        let alert = out.alert.expect("threshold crossing fires");
        assert_eq!(alert.window_req, 8);
        assert_eq!(alert.window_viol, 1);
        assert_eq!(alert.burn_milli, 125_000);
        // Still burning: no re-fire while the excursion lasts.
        o.note_accept(t(300), 101, 0);
        let again = o.note_close(t(300 + 200), 101);
        assert!(again.alert.is_none(), "hysteresis holds");
        assert_eq!(o.counters().alerts, 1);

        // The kernel freezes flight on the first alert; later freezes
        // are ignored.
        o.freeze_flight(t(300), alert, Vec::new());
        o.freeze_flight(
            t(400),
            SloAlertInfo {
                burn_milli: 1,
                window_viol: 1,
                window_req: 1,
            },
            Vec::new(),
        );
        assert_eq!(o.flight().unwrap().at, t(300));
        assert_eq!(o.flight().unwrap().alert, alert);
    }

    #[test]
    fn committed_ring_bounds_and_counts_drops() {
        let mut o = Observability::new(ObsConfig {
            sample_period: 1,
            committed_capacity: 4,
            ..ObsConfig::on()
        });
        for conn in 0..10u32 {
            o.note_accept(t(conn as u64), conn, 0);
            o.note_close(t(conn as u64 + 1), conn);
        }
        assert_eq!(o.committed_spans().count(), 4);
        let c = o.counters();
        assert_eq!(c.committed, 10);
        assert_eq!(c.spans_dropped, 6);
        // Oldest dropped: the survivors are the newest four.
        let conns: Vec<u32> = o.committed_spans().map(|s| s.conn).collect();
        assert_eq!(conns, vec![6, 7, 8, 9]);
    }

    #[test]
    fn flight_dump_json_is_schema_versioned_and_parses() {
        let alert = SloAlertInfo {
            burn_milli: 125_000,
            window_viol: 1,
            window_req: 8,
        };
        let records = vec![TraceRecord {
            seq: 9,
            at: t(5),
            ev: crate::trace::TraceEvent::SloAlert {
                burn_milli: 125_000,
                window_viol: 1,
                window_req: 8,
            },
        }];
        let dump = FlightDump {
            at: t(5),
            alert,
            records,
        };
        let doc = dump.to_json("server");
        let parsed = Json::parse(&doc.render()).expect("flight json parses");
        assert_eq!(parsed, doc);
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("workload").and_then(Json::as_str), Some("server"));
        let recs = doc.get("records").and_then(Json::as_arr).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(
            recs[0].get("name").and_then(Json::as_str),
            Some("slo.alert")
        );
    }
}
