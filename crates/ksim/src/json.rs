//! Minimal hand-rolled JSON value, writer, and parser.
//!
//! The bench binaries serialize [`MetricsSnapshot`] summaries to
//! `BENCH_*.json` so the perf trajectory is machine-checkable across
//! PRs, and the CI smoke test parses them back. The workspace builds
//! with no network access, so this is a small self-contained
//! implementation instead of a serde dependency: objects preserve
//! insertion order, numbers are `f64` (every counter the kernel emits
//! fits losslessly well past 2^53 in practice), and the parser accepts
//! exactly the subset the writer produces (standard JSON without
//! exotic escapes).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialized without trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or appends) a field to an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up a field of an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer counter, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation, for human-readable files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document. Rejects trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                pos,
                what: "trailing data",
            });
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like most lenient writers.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What the parser expected.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError {
            pos: *pos,
            what: lit,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            pos: *pos,
            what: "value",
        }),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            what: "',' or ']'",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError {
                        pos: *pos,
                        what: "':'",
                    });
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            what: "',' or '}'",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            pos: *pos,
            what: "'\"'",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    pos: *pos,
                    what: "closing '\"'",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or(JsonError {
                                pos: *pos,
                                what: "\\uXXXX escape",
                            })?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            what: "escape character",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are guaranteed valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(JsonError {
            pos: start,
            what: "number",
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = Json::obj()
            .with("name", Json::Str("table2".into()))
            .with("ok", Json::Bool(true))
            .with(
                "rows",
                Json::Arr(vec![
                    Json::obj().with("kb_per_s", Json::Num(2212.5)),
                    Json::obj().with("kb_per_s", Json::Num(820.0)),
                ]),
            )
            .with("none", Json::Null);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn unicode_passes_through() {
        let doc = Json::Str("µs → done".into());
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"n\": 3, \"s\": \"x\", \"a\": [1, 2]}").unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("missing"), None);
    }
}
