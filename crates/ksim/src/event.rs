//! Cancellable, deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were scheduled, which pins down the
//! behaviour of tie-heavy workloads (e.g. several disk interrupts completing
//! on the same clock edge) across runs and platforms.
//!
//! Payloads live in a slab indexed by [`EventId`] (slot plus generation
//! tag), so [`EventQueue::cancel`] is an O(1) slab lookup — no hashing, no
//! heap surgery. The heap holds only `(time, seq, slot, generation)` keys;
//! entries whose slot generation no longer matches are tombstones, skipped
//! on pop. Tombstones are *bounded*: when they outnumber live entries the
//! heap is compacted in place, so memory stays proportional to the live
//! event count even under heavy schedule/cancel churn (retry backoff,
//! itimer rearming), where the previous lazy-delete `BinaryHeap` +
//! `HashSet` pair grew without bound until the dead keys happened to reach
//! the top.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// Packs a slab slot index and a generation tag; handles to already-fired
/// or cancelled events are recognized as stale in O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, generation: u32) -> Self {
        EventId((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

#[derive(PartialEq, Eq)]
struct Key {
    time: SimTime,
    seq: u64,
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Entry {
    key: Key,
    id: EventId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

const NIL: u32 = u32::MAX;

struct Slot<E> {
    generation: u32,
    next_free: u32,
    payload: Option<E>,
}

/// A priority queue of future events plus the simulation clock.
///
/// The clock (`now`) only advances when an event is popped; scheduling in
/// the past is a harness bug and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry>>,
    slots: Vec<Slot<E>>,
    free_head: u32,
    /// Scheduled-but-not-yet-fired, not-cancelled events.
    live: usize,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at boot (t = 0).
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `ev` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule(&mut self, at: SimTime, ev: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            self.free_head = self.slots[slot as usize].next_free;
            self.slots[slot as usize].payload = Some(ev);
            slot
        } else {
            assert!(self.slots.len() < NIL as usize, "event slab exhausted");
            self.slots.push(Slot {
                generation: 0,
                next_free: NIL,
                payload: Some(ev),
            });
            (self.slots.len() - 1) as u32
        };
        let id = EventId::new(slot, self.slots[slot as usize].generation);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.heap.push(Reverse(Entry {
            key: Key { time: at, seq },
            id,
        }));
        id
    }

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// fired (or been cancelled); cancelling twice or after firing is a
    /// no-op returning `false`.
    ///
    /// O(1) amortized: the payload is dropped and the slot recycled
    /// immediately; the heap key becomes a tombstone, reclaimed either on
    /// pop or by compaction once tombstones outnumber live entries.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.release(id).is_none() {
            return false;
        }
        self.live -= 1;
        // Bound tombstone memory: rebuild the heap once dead keys dominate.
        if self.heap.len() > 64 && self.heap.len() > 2 * self.live {
            let slots = &self.slots;
            self.heap.retain(|Reverse(entry)| {
                slots[entry.id.slot()].generation == entry.id.generation()
            });
        }
        true
    }

    /// Removes and returns the next event, advancing the clock to its time.
    /// Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if let Some(ev) = self.release(entry.id) {
                self.live -= 1;
                debug_assert!(entry.key.time >= self.now);
                self.now = entry.key.time;
                return Some((entry.key.time, ev));
            }
        }
        None
    }

    /// The firing time of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            let s = &self.slots[entry.id.slot()];
            if s.generation != entry.id.generation() {
                self.heap.pop();
                continue;
            }
            return Some(entry.key.time);
        }
        None
    }

    /// Number of live (not cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap keys currently held, *including* cancelled-entry tombstones not
    /// yet reclaimed. Compaction keeps this within a small constant factor
    /// of [`EventQueue::len`]; exposed so tests can pin that bound.
    pub fn queued_len(&self) -> usize {
        self.heap.len()
    }

    /// If `id` is live, takes its payload and frees the slot (bumping the
    /// generation so outstanding handles and heap keys go stale).
    fn release(&mut self, id: EventId) -> Option<E> {
        let slot = id.slot();
        if slot >= self.slots.len() {
            return None;
        }
        let s = &mut self.slots[slot];
        if s.generation != id.generation() {
            return None;
        }
        let payload = s.payload.take()?;
        s.generation = s.generation.wrapping_add(1);
        s.next_free = self.free_head;
        self.free_head = slot as u32;
        Some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_us(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 1);
        q.schedule(t(5), 2);
        q.schedule(t(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn cannot_schedule_into_past() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel must be a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn stale_id_cannot_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.pop();
        // The freed slot is recycled for "b"; the stale handle must miss.
        let b = q.schedule(t(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn same_instant_rescheduling_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.pop();
        // Scheduling exactly at `now` is legal (zero-latency kernel work).
        q.schedule(t(1), 2);
        assert_eq!(q.pop(), Some((t(1), 2)));
    }

    #[test]
    fn tombstones_stay_bounded_under_churn() {
        // Satellite regression: the historical lazy-delete queue kept every
        // cancelled key in the heap until it surfaced; a schedule/cancel
        // retry loop with one long-lived sentinel grew the heap without
        // bound. Compaction must keep heap keys within 2x live + slack.
        let mut q = EventQueue::new();
        q.schedule(t(1_000_000), u64::MAX);
        for i in 0..100_000u64 {
            let id = q.schedule(t(10 + i), i);
            assert!(q.cancel(id));
            assert!(
                q.queued_len() <= 2 * q.len() + 64,
                "heap grew to {} keys with only {} live events",
                q.queued_len(),
                q.len()
            );
        }
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(1_000_000), u64::MAX)));
    }
}
