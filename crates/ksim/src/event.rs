//! Cancellable, deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were scheduled, which pins down the
//! behaviour of tie-heavy workloads (e.g. several disk interrupts completing
//! on the same clock edge) across runs and platforms.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

#[derive(PartialEq, Eq)]
struct Key {
    time: SimTime,
    seq: u64,
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Entry<E> {
    key: Key,
    id: EventId,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of future events plus the simulation clock.
///
/// The clock (`now`) only advances when an event is popped; scheduling in
/// the past is a harness bug and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Ids of scheduled-but-not-yet-fired, not-cancelled events. Entries
    /// whose id is absent are skipped lazily on pop/peek.
    live: HashSet<EventId>,
    now: SimTime,
    next_seq: u64,
    next_id: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at boot (t = 0).
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            next_id: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `ev` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule(&mut self, at: SimTime, ev: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(id);
        self.heap.push(Reverse(Entry {
            key: Key { time: at, seq },
            id,
            ev,
        }));
        id
    }

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// fired (or been cancelled); cancelling twice or after firing is a
    /// no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: the entry stays in the heap and is skipped on pop.
        self.live.remove(&id)
    }

    /// Removes and returns the next event, advancing the clock to its time.
    /// Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if !self.live.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.key.time >= self.now);
            self.now = entry.key.time;
            return Some((entry.key.time, entry.ev));
        }
        None
    }

    /// The firing time of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if !self.live.contains(&entry.id) {
                self.heap.pop();
                continue;
            }
            return Some(entry.key.time);
        }
        None
    }

    /// Number of live (not cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_us(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 1);
        q.schedule(t(5), 2);
        q.schedule(t(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn cannot_schedule_into_past() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel must be a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn same_instant_rescheduling_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.pop();
        // Scheduling exactly at `now` is legal (zero-latency kernel work).
        q.schedule(t(1), 2);
        assert_eq!(q.pop(), Some((t(1), 2)));
    }
}
