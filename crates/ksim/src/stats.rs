//! Named counters for instrumenting the simulation.
//!
//! Every subsystem records what it did (bytes bcopy'd per category, cache
//! hits, context switches, interrupts, ...) into a [`Stats`] owned by the
//! kernel. The experiment harnesses read these to report the paper's
//! derived quantities, and tests assert on them (e.g. "a splice copy moves
//! zero bytes through copyin/copyout"). Latency distributions live in the
//! sibling [`crate::hist`] module.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Dur;

/// A set of named monotonic counters and accumulated durations.
///
/// Keys are `&'static str` so call sites stay cheap and greppable; a
/// `BTreeMap` keeps report output deterministic and sorted.
#[derive(Default, Clone)]
pub struct Stats {
    counters: BTreeMap<&'static str, u64>,
    durations: BTreeMap<&'static str, Dur>,
}

impl Stats {
    /// Creates an empty stats set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `key`.
    pub fn add(&mut self, key: &'static str, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Increments counter `key` by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Reads counter `key` (0 if never touched).
    pub fn get(&self, key: &'static str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Accumulates a duration under `key` (e.g. CPU time per context).
    pub fn add_dur(&mut self, key: &'static str, d: Dur) {
        let slot = self.durations.entry(key).or_insert(Dur::ZERO);
        *slot += d;
    }

    /// Reads accumulated duration `key` (zero if never touched).
    pub fn get_dur(&self, key: &'static str) -> Dur {
        self.durations.get(key).copied().unwrap_or(Dur::ZERO)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates durations in key order.
    pub fn durations(&self) -> impl Iterator<Item = (&'static str, Dur)> + '_ {
        self.durations.iter().map(|(k, v)| (*k, *v))
    }

    /// Resets everything to zero.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.durations.clear();
    }
}

impl fmt::Debug for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_struct("Stats");
        for (k, v) in &self.counters {
            m.field(k, v);
        }
        for (k, v) in &self.durations {
            m.field(k, v);
        }
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.add("bytes", 10);
        s.bump("bytes");
        assert_eq!(s.get("bytes"), 11);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn durations_accumulate() {
        let mut s = Stats::new();
        s.add_dur("cpu", Dur::from_us(5));
        s.add_dur("cpu", Dur::from_us(7));
        assert_eq!(s.get_dur("cpu"), Dur::from_us(12));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = Stats::new();
        s.bump("z");
        s.bump("a");
        let keys: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn clear_resets() {
        let mut s = Stats::new();
        s.bump("x");
        s.add_dur("y", Dur::from_us(1));
        s.clear();
        assert_eq!(s.get("x"), 0);
        assert_eq!(s.get_dur("y"), Dur::ZERO);
    }
}
