//! Named counters and simple histograms for instrumenting the simulation.
//!
//! Every subsystem records what it did (bytes bcopy'd per category, cache
//! hits, context switches, interrupts, ...) into a [`Stats`] owned by the
//! kernel. The experiment harnesses read these to report the paper's
//! derived quantities, and tests assert on them (e.g. "a splice copy moves
//! zero bytes through copyin/copyout").

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Dur;

/// A set of named monotonic counters and accumulated durations.
///
/// Keys are `&'static str` so call sites stay cheap and greppable; a
/// `BTreeMap` keeps report output deterministic and sorted.
#[derive(Default, Clone)]
pub struct Stats {
    counters: BTreeMap<&'static str, u64>,
    durations: BTreeMap<&'static str, Dur>,
}

impl Stats {
    /// Creates an empty stats set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `key`.
    pub fn add(&mut self, key: &'static str, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Increments counter `key` by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Reads counter `key` (0 if never touched).
    pub fn get(&self, key: &'static str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Accumulates a duration under `key` (e.g. CPU time per context).
    pub fn add_dur(&mut self, key: &'static str, d: Dur) {
        let slot = self.durations.entry(key).or_insert(Dur::ZERO);
        *slot += d;
    }

    /// Reads accumulated duration `key` (zero if never touched).
    pub fn get_dur(&self, key: &'static str) -> Dur {
        self.durations.get(key).copied().unwrap_or(Dur::ZERO)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates durations in key order.
    pub fn durations(&self) -> impl Iterator<Item = (&'static str, Dur)> + '_ {
        self.durations.iter().map(|(k, v)| (*k, *v))
    }

    /// Resets everything to zero.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.durations.clear();
    }
}

impl fmt::Debug for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_struct("Stats");
        for (k, v) in &self.counters {
            m.field(k, v);
        }
        for (k, v) in &self.durations {
            m.field(k, v);
        }
        m.finish()
    }
}

/// A power-of-two bucketed histogram of `u64` samples (latencies in ns,
/// request sizes, queue depths).
#[derive(Clone)]
pub struct Hist {
    /// `buckets[i]` counts samples with `floor(log2(v)) == i` (bucket 0 also
    /// holds v == 0).
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate p-th percentile (0.0–1.0) using bucket upper bounds.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let hi = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return Some(hi.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }
}

impl fmt::Debug for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Hist(n={}, min={:?}, mean={:?}, max={:?})",
            self.count,
            self.min(),
            self.mean(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.add("bytes", 10);
        s.bump("bytes");
        assert_eq!(s.get("bytes"), 11);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn durations_accumulate() {
        let mut s = Stats::new();
        s.add_dur("cpu", Dur::from_us(5));
        s.add_dur("cpu", Dur::from_us(7));
        assert_eq!(s.get_dur("cpu"), Dur::from_us(12));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = Stats::new();
        s.bump("z");
        s.bump("a");
        let keys: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn clear_resets() {
        let mut s = Stats::new();
        s.bump("x");
        s.add_dur("y", Dur::from_us(1));
        s.clear();
        assert_eq!(s.get("x"), 0);
        assert_eq!(s.get_dur("y"), Dur::ZERO);
    }

    #[test]
    fn hist_basic_stats() {
        let mut h = Hist::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn hist_zero_sample() {
        let mut h = Hist::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
    }

    #[test]
    fn hist_empty_is_none() {
        let h = Hist::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn hist_percentile_monotone() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 <= 1000 * 2); // bucket granularity bound
    }
}
