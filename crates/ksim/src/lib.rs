#![warn(missing_docs)]

//! Discrete-event simulation engine for the in-kernel data path reproduction.
//!
//! This crate provides the deterministic substrate every other crate builds
//! on: a virtual clock ([`SimTime`], [`Dur`]), a cancellable event queue
//! ([`EventQueue`]), a BSD-style callout list ([`Callout`]) matching the
//! mechanism the paper uses to decouple the read and write sides of a
//! splice, cheap named counters ([`Stats`]), structured spans/gauges and
//! latency digests ([`kstat`]), a dependency-free JSON value ([`Json`])
//! for the bench emitters, a typed trace ring ([`Trace`]) with
//! structured tracepoints ([`TraceEvent`]), causal per-block splice
//! spans ([`trace::BlockSpan`]), and Chrome trace-event export, and a
//! resident request-observability pipeline ([`obs`]): head-sampled
//! request spans with tail retention, an SLO burn-rate monitor, and a
//! flight recorder.
//!
//! Everything here is single-threaded on purpose: the simulated machine is
//! a uniprocessor DECstation 5000/200, and determinism (same inputs → same
//! event order → same measurements) is a correctness requirement for the
//! experiment harnesses.

pub mod callout;
pub mod event;
pub mod hist;
pub mod json;
pub mod kstat;
pub mod obs;
pub mod stats;
pub mod time;
pub mod trace;

pub use callout::{BTreeCallout, Callout, CalloutId};
pub use event::{EventId, EventQueue};
pub use hist::{Exemplar, Hist};
pub use json::Json;
pub use kstat::{FlowSample, HistSummary, Kstat, SpliceSpan, SpliceSpans, StageHists};
pub use obs::{
    CloseOutcome, FlightDump, ObsConfig, ObsCounters, Observability, ReqSpan, SloAlertInfo,
    SloConfig,
};
pub use stats::Stats;
pub use time::{Dur, SimTime};
pub use trace::{BlockSpan, CounterId, PhaseMark, Trace, TraceEvent, TraceQuery, TraceRecord};
