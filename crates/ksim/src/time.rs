//! Virtual time: nanosecond instants and durations.
//!
//! The simulation clock is a `u64` nanosecond count since boot. At 1 ns
//! resolution the clock wraps after ~584 years of simulated time, far beyond
//! any experiment here; arithmetic therefore uses checked/saturating forms
//! only where underflow is a real possibility.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The boot instant (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw nanoseconds since boot.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since boot.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Seconds since boot as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulation clock never
    /// runs backwards, so this indicates a harness bug.
    pub fn since(self, earlier: SimTime) -> Dur {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        Dur(self.0 - earlier.0)
    }

    /// Saturating difference; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Builds a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds (for calibration tables).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        Dur((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds, truncating.
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// The time needed to move `bytes` at `bytes_per_sec`.
    ///
    /// This is the canonical bandwidth→latency conversion used by every
    /// copy and transfer cost in the hardware model.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Dur {
        assert!(bytes_per_sec > 0, "zero bandwidth");
        // Round up: a transfer always costs at least the exact wire time.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        Dur(ns as u64)
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, d: Dur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    fn sub(self, d: Dur) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, d: Dur) -> Dur {
        Dur(self.0 + d.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, d: Dur) -> Dur {
        Dur(self.0.checked_sub(d.0).expect("Dur underflow"))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, d: Dur) {
        self.0 = self.0.checked_sub(d.0).expect("Dur underflow");
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Dur(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Dur::from_us(5).as_ns(), 5_000);
        assert_eq!(Dur::from_ms(5).as_ns(), 5_000_000);
        assert_eq!(Dur::from_secs(5).as_ns(), 5_000_000_000);
        assert_eq!(Dur::from_secs_f64(0.5).as_ns(), 500_000_000);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::ZERO + Dur::from_us(10);
        assert_eq!(t.as_ns(), 10_000);
        assert_eq!(t.since(SimTime::ZERO), Dur::from_us(10));
        assert_eq!((t - Dur::from_us(4)).as_ns(), 6_000);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_backwards() {
        SimTime::ZERO.since(SimTime::from_ns(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_ns(7)),
            Dur::ZERO
        );
    }

    #[test]
    fn bandwidth_conversion_rounds_up() {
        // 1 byte at 3 B/s is 333_333_333.33.. ns → rounds up.
        assert_eq!(Dur::for_bytes(1, 3).as_ns(), 333_333_334);
        // Exact case.
        assert_eq!(Dur::for_bytes(20_000_000, 20_000_000), Dur::from_secs(1));
        // 8 KB at 20 MB/s = 409.6 us.
        assert_eq!(Dur::for_bytes(8192, 20_000_000).as_ns(), 409_600);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(Dur::from_us(3) * 4, Dur::from_us(12));
        assert_eq!(Dur::from_us(12) / 4, Dur::from_us(3));
        let total: Dur = [Dur::from_us(1), Dur::from_us(2)].into_iter().sum();
        assert_eq!(total, Dur::from_us(3));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Dur::from_ns(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_us(12)), "12.000us");
        assert_eq!(format!("{}", Dur::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::from_secs(12)), "12.000s");
    }
}
