//! Log-bucketed latency/size histograms with exact extrema and
//! percentile estimation.
//!
//! [`Hist`] is the workspace's one histogram type: 64 power-of-two
//! buckets (`buckets[i]` counts samples whose `floor(log2(v)) == i`,
//! with `v == 0` folded into bucket 0), plus exact `count`, `sum`,
//! `min`, and `max`. The record path is branch-light and allocation
//! free, so it is safe to call from the hottest simulation paths
//! (per-block splice stages, per-request disk service times).
//!
//! Percentiles are *estimates*: the reported value is the upper bound
//! of the bucket containing the target rank, clamped into the exact
//! `[min, max]` range. That makes p50/p90/p99/p999 accurate to within
//! a factor of two (much better near the observed extrema), which is
//! plenty for the order-of-magnitude stage comparisons the profiler
//! reports, while keeping the type `Copy`-free, fixed-size, and
//! mergeable.
//!
//! Histograms from different runs or shards [`merge`](Hist::merge)
//! exactly (bucket-wise addition; count/sum/min/max combine
//! losslessly), so merging is associative and commutative — a property
//! `tests/profile.rs` pins down.

use std::fmt;

use crate::json::Json;

/// A power-of-two bucketed histogram of `u64` samples (latencies in ns,
/// request sizes, queue depths).
#[derive(Clone)]
pub struct Hist {
    /// `buckets[i]` counts samples with `floor(log2(v)) == i` (bucket 0 also
    /// holds v == 0).
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The raw bucket counts (`buckets[i]` covers `[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Approximate p-th percentile (0.0–1.0) using bucket upper bounds.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let hi = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return Some(hi.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Median estimate (`percentile(0.50)`).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// 99.9th percentile estimate.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(0.999)
    }

    /// Folds `other` into `self` (bucket-wise addition). Exact:
    /// merging is associative and commutative, and count/sum/min/max
    /// combine losslessly.
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes the summary the dashboards key on: exact
    /// count/min/mean/max plus the four estimated quantiles. Empty
    /// histograms render every statistic as `null` so consumers can
    /// distinguish "no samples" from "all zero".
    pub fn to_json(&self) -> Json {
        let num = |v: Option<u64>| match v {
            Some(v) => Json::Num(v as f64),
            None => Json::Null,
        };
        Json::obj()
            .with("count", Json::Num(self.count as f64))
            .with("min", num(self.min()))
            .with("mean", self.mean().map_or(Json::Null, Json::Num))
            .with("max", num(self.max()))
            .with("p50", num(self.p50()))
            .with("p90", num(self.p90()))
            .with("p99", num(self.p99()))
            .with("p999", num(self.p999()))
    }
}

impl fmt::Debug for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Hist(n={}, min={:?}, mean={:?}, max={:?})",
            self.count,
            self.min(),
            self.mean(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_basic_stats() {
        let mut h = Hist::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn hist_zero_sample() {
        let mut h = Hist::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
    }

    #[test]
    fn hist_empty_is_none() {
        let h = Hist::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p999(), None);
    }

    #[test]
    fn hist_percentile_monotone() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 <= 1000 * 2); // bucket granularity bound
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut all = Hist::new();
        for v in [1u64, 5, 9, 200] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 3, 4096, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.buckets(), all.buckets());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Hist::new();
        for v in [7u64, 8, 9] {
            a.record(v);
        }
        let before = a.buckets().to_vec();
        a.merge(&Hist::new());
        assert_eq!(a.buckets().to_vec(), before);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        // With one sample every percentile clamps to [min, max] = the
        // sample itself, regardless of the bucket's upper bound.
        for v in [0u64, 1, 2, 3, 4095, 4096, u64::MAX] {
            let mut h = Hist::new();
            h.record(v);
            for p in [0.001, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(h.percentile(p), Some(v), "p{p} of single {v}");
            }
        }
    }

    #[test]
    fn bucket_boundary_values_stay_in_range() {
        // Powers of two sit on bucket lower edges; the raw bucket upper
        // bound is 2v-1, so the [min, max] clamp is what keeps the
        // estimate honest. All-equal samples must report exactly v.
        for v in [1u64, 2, 8, 1 << 20, 1 << 62, 1 << 63] {
            let mut h = Hist::new();
            for _ in 0..10 {
                h.record(v);
            }
            assert_eq!(h.p50(), Some(v));
            assert_eq!(h.p999(), Some(v));
        }
        // Mixed boundary values: percentiles stay within the observed
        // range and are monotone in p.
        let mut h = Hist::new();
        for v in [4u64, 8, 16, 32] {
            h.record(v);
        }
        let (p50, p90, p99) = (h.p50().unwrap(), h.p90().unwrap(), h.p99().unwrap());
        assert!(p50 <= p90 && p90 <= p99);
        assert!((4..=32).contains(&p50) && (4..=32).contains(&p99));
    }

    #[test]
    fn percentile_rejects_out_of_range_p() {
        let mut h = Hist::new();
        h.record(7);
        assert_eq!(h.percentile(-0.1), None);
        assert_eq!(h.percentile(1.1), None);
        assert_eq!(h.percentile(f64::NAN), None);
    }

    #[test]
    fn saturated_value_merge_is_exact() {
        // Top-bucket (u64::MAX) samples: sum must not wrap (u128
        // accumulator), the top bucket's open upper bound must clamp to
        // max, and merging saturated histograms stays exact.
        let mut a = Hist::new();
        let mut b = Hist::new();
        for _ in 0..3 {
            a.record(u64::MAX);
        }
        b.record(u64::MAX);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 4 * (u64::MAX as u128) + 1);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(u64::MAX));
        assert_eq!(a.p999(), Some(u64::MAX));
        assert_eq!(a.buckets()[63], 4);
    }

    #[test]
    fn high_count_merge_accumulates_without_distortion() {
        // Bucket counts add linearly even at large magnitudes: merging
        // a million-sample histogram into itself repeatedly keeps
        // count/sum/percentiles consistent.
        let mut base = Hist::new();
        for v in 1..=1_000u64 {
            for _ in 0..10 {
                base.record(v);
            }
        }
        let mut merged = base.clone();
        for _ in 0..3 {
            let snapshot = merged.clone();
            merged.merge(&snapshot);
        }
        assert_eq!(merged.count(), base.count() * 8);
        assert_eq!(merged.sum(), base.sum() * 8);
        assert_eq!(merged.p50(), base.p50(), "percentiles scale-invariant");
        assert_eq!(merged.p99(), base.p99());
    }

    #[test]
    fn to_json_has_quantile_keys() {
        let mut h = Hist::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let j = h.to_json();
        for key in ["count", "min", "mean", "max", "p50", "p90", "p99", "p999"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("count").unwrap().as_u64(), Some(100));
        let empty = Hist::new().to_json();
        assert_eq!(empty.get("p50"), Some(&Json::Null));
    }
}
