//! Log-bucketed latency/size histograms with exact extrema and
//! percentile estimation.
//!
//! [`Hist`] is the workspace's one histogram type: 64 power-of-two
//! buckets (`buckets[i]` counts samples whose `floor(log2(v)) == i`,
//! with `v == 0` folded into bucket 0), plus exact `count`, `sum`,
//! `min`, and `max`. The record path is branch-light and allocation
//! free, so it is safe to call from the hottest simulation paths
//! (per-block splice stages, per-request disk service times).
//!
//! Percentiles are *estimates*: the reported value is the upper bound
//! of the bucket containing the target rank, clamped into the exact
//! `[min, max]` range. That makes p50/p90/p99/p999 accurate to within
//! a factor of two (much better near the observed extrema), which is
//! plenty for the order-of-magnitude stage comparisons the profiler
//! reports, while keeping the type `Copy`-free, fixed-size, and
//! mergeable.
//!
//! Histograms from different runs or shards [`merge`](Hist::merge)
//! exactly (bucket-wise addition; count/sum/min/max combine
//! losslessly), so merging is associative and commutative — a property
//! `tests/profile.rs` pins down.

use std::fmt;

use crate::json::Json;

/// A sampled witness for one histogram bucket: the concrete value plus
/// the trace/connection identity that produced it, linking a percentile
/// bucket in a bench artifact back to the span in the trace ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded sample (same unit as the histogram).
    pub value: u64,
    /// Trace sequence number current when the sample was recorded.
    pub trace_seq: u64,
    /// Connection (socket) id the sample belongs to.
    pub conn: u32,
}

/// A power-of-two bucketed histogram of `u64` samples (latencies in ns,
/// request sizes, queue depths).
#[derive(Clone)]
pub struct Hist {
    /// `buckets[i]` counts samples with `floor(log2(v)) == i` (bucket 0 also
    /// holds v == 0).
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Per-bucket exemplars, allocated lazily on the first
    /// [`Hist::record_with_exemplar`] so plain histograms stay heap-free
    /// and serialize exactly as before.
    exemplars: Option<Box<[Option<Exemplar>; 64]>>,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            exemplars: None,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = Self::bucket_of(v);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records one sample and offers it as the bucket's exemplar. Each
    /// bucket keeps the largest-valued exemplar seen (first wins on
    /// ties), so the witness for a tail bucket is its worst case —
    /// deterministic under replay.
    pub fn record_with_exemplar(&mut self, v: u64, trace_seq: u64, conn: u32) {
        self.record(v);
        let slots = self.exemplars.get_or_insert_with(|| Box::new([None; 64]));
        let slot = &mut slots[Self::bucket_of(v)];
        if slot.is_none_or(|e| v > e.value) {
            *slot = Some(Exemplar {
                value: v,
                trace_seq,
                conn,
            });
        }
    }

    /// The exemplar witnessing bucket `i`, if one was offered.
    pub fn exemplar(&self, i: usize) -> Option<Exemplar> {
        self.exemplars.as_ref().and_then(|e| e.get(i).copied())?
    }

    /// The exemplar witnessing the bucket that contains the p-th
    /// percentile rank — e.g. `exemplar_at(0.999)` links the p999
    /// estimate to the actual request that produced it.
    pub fn exemplar_at(&self, p: f64) -> Option<Exemplar> {
        self.exemplar(self.percentile_bucket(p)?)
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The raw bucket counts (`buckets[i]` covers `[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Index of the bucket containing the p-th percentile rank, or
    /// `None` for an empty histogram / out-of-range `p`. This is the
    /// digest's native resolution: two histograms over the same
    /// distribution agree on the bucket even when min/max clamping
    /// makes their [`Hist::percentile`] values differ.
    pub fn percentile_bucket(&self, p: f64) -> Option<usize> {
        if self.count == 0 || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(i);
            }
        }
        // Unreachable with a consistent count, but degrade to the top
        // occupied bucket rather than panicking.
        Some(Self::bucket_of(self.max))
    }

    /// Approximate p-th percentile (0.0–1.0) using bucket upper bounds.
    ///
    /// The raw estimate is the chosen bucket's upper bound, clamped into
    /// the exact observed `[min, max]`; the clamp means a bucket whose
    /// recorded samples straddle its boundary with `min`/`max` can never
    /// report below `min` or above `max`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let i = self.percentile_bucket(p)?;
        let hi = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
        Some(hi.clamp(self.min, self.max))
    }

    /// Median estimate (`percentile(0.50)`).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// 99.9th percentile estimate.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(0.999)
    }

    /// Folds `other` into `self` (bucket-wise addition). Exact:
    /// merging is associative and commutative, and count/sum/min/max
    /// combine losslessly.
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if let Some(theirs) = other.exemplars.as_deref() {
            let ours = self.exemplars.get_or_insert_with(|| Box::new([None; 64]));
            for (slot, candidate) in ours.iter_mut().zip(theirs.iter()) {
                match (&slot, candidate) {
                    (None, Some(e)) => *slot = Some(*e),
                    (Some(cur), Some(e)) if e.value > cur.value => *slot = Some(*e),
                    _ => {}
                }
            }
        }
    }

    /// Serializes the summary the dashboards key on: exact
    /// count/min/mean/max plus the four estimated quantiles. Empty
    /// histograms render every statistic as `null` so consumers can
    /// distinguish "no samples" from "all zero".
    pub fn to_json(&self) -> Json {
        let num = |v: Option<u64>| match v {
            Some(v) => Json::Num(v as f64),
            None => Json::Null,
        };
        Json::obj()
            .with("count", Json::Num(self.count as f64))
            .with("min", num(self.min()))
            .with("mean", self.mean().map_or(Json::Null, Json::Num))
            .with("max", num(self.max()))
            .with("p50", num(self.p50()))
            .with("p90", num(self.p90()))
            .with("p99", num(self.p99()))
            .with("p999", num(self.p999()))
    }
}

impl fmt::Debug for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Hist(n={}, min={:?}, mean={:?}, max={:?})",
            self.count,
            self.min(),
            self.mean(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_basic_stats() {
        let mut h = Hist::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn hist_zero_sample() {
        let mut h = Hist::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
    }

    #[test]
    fn hist_empty_is_none() {
        let h = Hist::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p999(), None);
    }

    #[test]
    fn hist_percentile_monotone() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 <= 1000 * 2); // bucket granularity bound
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut all = Hist::new();
        for v in [1u64, 5, 9, 200] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 3, 4096, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.buckets(), all.buckets());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Hist::new();
        for v in [7u64, 8, 9] {
            a.record(v);
        }
        let before = a.buckets().to_vec();
        a.merge(&Hist::new());
        assert_eq!(a.buckets().to_vec(), before);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        // With one sample every percentile clamps to [min, max] = the
        // sample itself, regardless of the bucket's upper bound.
        for v in [0u64, 1, 2, 3, 4095, 4096, u64::MAX] {
            let mut h = Hist::new();
            h.record(v);
            for p in [0.001, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(h.percentile(p), Some(v), "p{p} of single {v}");
            }
        }
    }

    #[test]
    fn bucket_boundary_values_stay_in_range() {
        // Powers of two sit on bucket lower edges; the raw bucket upper
        // bound is 2v-1, so the [min, max] clamp is what keeps the
        // estimate honest. All-equal samples must report exactly v.
        for v in [1u64, 2, 8, 1 << 20, 1 << 62, 1 << 63] {
            let mut h = Hist::new();
            for _ in 0..10 {
                h.record(v);
            }
            assert_eq!(h.p50(), Some(v));
            assert_eq!(h.p999(), Some(v));
        }
        // Mixed boundary values: percentiles stay within the observed
        // range and are monotone in p.
        let mut h = Hist::new();
        for v in [4u64, 8, 16, 32] {
            h.record(v);
        }
        let (p50, p90, p99) = (h.p50().unwrap(), h.p90().unwrap(), h.p99().unwrap());
        assert!(p50 <= p90 && p90 <= p99);
        assert!((4..=32).contains(&p50) && (4..=32).contains(&p99));
    }

    #[test]
    fn straddled_bucket_percentile_never_reports_below_min() {
        // min=6 lands in bucket 2 ([4,8)), max=9 in bucket 3 ([8,16)):
        // the recorded extrema straddle the bucket-2/3 boundary. Every
        // percentile resolved from bucket 2 has a raw upper bound of 7,
        // which is >= min here — and the clamp guarantees that even if a
        // bucket's bound undercut the observed min, the report could
        // never fall below it.
        let mut h = Hist::new();
        for v in [6u64, 7, 8, 9] {
            h.record(v);
        }
        for p in [0.01, 0.25, 0.5, 0.75, 0.99, 0.999, 1.0] {
            let got = h.percentile(p).unwrap();
            assert!(
                (6..=9).contains(&got),
                "p{p} reported {got}, outside observed [6, 9]"
            );
        }
        // And monotone across the straddle.
        assert!(h.p50().unwrap() <= h.p99().unwrap());
    }

    #[test]
    fn percentile_always_within_observed_range_brute_force() {
        // Exhaustive small-sample sweep around bucket boundaries: for
        // every multiset drawn from values straddling powers of two, no
        // percentile may escape [min, max].
        let candidates = [0u64, 1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 1023, 1024];
        for &a in &candidates {
            for &b in &candidates {
                for &c in &candidates {
                    let mut h = Hist::new();
                    for v in [a, b, c] {
                        h.record(v);
                    }
                    let lo = a.min(b).min(c);
                    let hi = a.max(b).max(c);
                    for p in [0.0, 0.001, 0.5, 0.99, 0.999, 1.0] {
                        let got = h.percentile(p).unwrap();
                        assert!(
                            (lo..=hi).contains(&got),
                            "p{p} of {:?} reported {got}, outside [{lo}, {hi}]",
                            [a, b, c]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exemplars_witness_buckets_and_survive_merge() {
        let mut h = Hist::new();
        assert_eq!(h.exemplar(0), None, "no exemplars until offered");
        h.record_with_exemplar(6, 100, 1); // bucket 2
        h.record_with_exemplar(7, 101, 2); // bucket 2, larger value wins
        h.record_with_exemplar(7, 102, 3); // tie: first winner kept
        h.record_with_exemplar(1 << 20, 200, 9);
        let e = h.exemplar(2).unwrap();
        assert_eq!((e.value, e.trace_seq, e.conn), (7, 101, 2));
        assert_eq!(h.exemplar(3), None);

        // The tail exemplar links the top percentile to its request.
        let tail = h.exemplar_at(0.999).unwrap();
        assert_eq!((tail.value, tail.conn), (1 << 20, 9));

        // Merge keeps the larger witness per bucket.
        let mut other = Hist::new();
        other.record_with_exemplar(5, 300, 7); // bucket 2, smaller: loses
        other.record_with_exemplar(40, 301, 8); // bucket 5: fills a gap
        h.merge(&other);
        assert_eq!(h.exemplar(2).unwrap().trace_seq, 101);
        assert_eq!(h.exemplar(5).unwrap().conn, 8);

        // Exemplar-free histograms still serialize identically.
        let mut plain = Hist::new();
        plain.record(6);
        plain.record(7);
        let mut tagged = Hist::new();
        tagged.record_with_exemplar(6, 1, 1);
        tagged.record_with_exemplar(7, 2, 2);
        assert_eq!(plain.to_json().render(), tagged.to_json().render());
    }

    #[test]
    fn percentile_rejects_out_of_range_p() {
        let mut h = Hist::new();
        h.record(7);
        assert_eq!(h.percentile(-0.1), None);
        assert_eq!(h.percentile(1.1), None);
        assert_eq!(h.percentile(f64::NAN), None);
    }

    #[test]
    fn saturated_value_merge_is_exact() {
        // Top-bucket (u64::MAX) samples: sum must not wrap (u128
        // accumulator), the top bucket's open upper bound must clamp to
        // max, and merging saturated histograms stays exact.
        let mut a = Hist::new();
        let mut b = Hist::new();
        for _ in 0..3 {
            a.record(u64::MAX);
        }
        b.record(u64::MAX);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 4 * (u64::MAX as u128) + 1);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(u64::MAX));
        assert_eq!(a.p999(), Some(u64::MAX));
        assert_eq!(a.buckets()[63], 4);
    }

    #[test]
    fn high_count_merge_accumulates_without_distortion() {
        // Bucket counts add linearly even at large magnitudes: merging
        // a million-sample histogram into itself repeatedly keeps
        // count/sum/percentiles consistent.
        let mut base = Hist::new();
        for v in 1..=1_000u64 {
            for _ in 0..10 {
                base.record(v);
            }
        }
        let mut merged = base.clone();
        for _ in 0..3 {
            let snapshot = merged.clone();
            merged.merge(&snapshot);
        }
        assert_eq!(merged.count(), base.count() * 8);
        assert_eq!(merged.sum(), base.sum() * 8);
        assert_eq!(merged.p50(), base.p50(), "percentiles scale-invariant");
        assert_eq!(merged.p99(), base.p99());
    }

    #[test]
    fn to_json_has_quantile_keys() {
        let mut h = Hist::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let j = h.to_json();
        for key in ["count", "min", "mean", "max", "p50", "p90", "p99", "p999"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("count").unwrap().as_u64(), Some(100));
        let empty = Hist::new().to_json();
        assert_eq!(empty.get("p50"), Some(&Json::Null));
    }
}
