//! Structured kernel statistics (`kstat`): typed spans, gauges, and
//! latency distributions.
//!
//! [`Stats`](crate::Stats) is a bag of named counters — cheap to bump
//! but stringly-typed and flat. The paper's evaluation, however, is
//! about the *shape* of a splice over time: when the first read was
//! issued, how far the write side lagged, how the watermark flow
//! control held pending work inside its bands, how long each `bread` /
//! `bwrite` took to come back through `biodone`. This module adds the
//! typed layer the kernel records that shape into:
//!
//! * [`SpliceSpan`] — one per splice descriptor: lifecycle timestamps
//!   (created → first read issued → first write issued → drained →
//!   completion delivered), cumulative counters, watermark gauges, and
//!   a bounded ring of [`FlowSample`]s for offline analysis.
//! * [`SpliceSpans`] — the per-kernel collection, indexable by splice
//!   descriptor id (`kstat.spans[desc]`).
//! * [`Kstat`] — the kernel-owned holder combining the spans with
//!   [`Hist`]-backed latency distributions for block I/O completion.
//! * [`HistSummary`] — a compact, serializable digest of a [`Hist`].

use std::collections::BTreeMap;
use std::ops::Index;

use crate::hist::Hist;
use crate::json::Json;
use crate::time::SimTime;

/// Upper bound on retained [`FlowSample`]s per span. Beyond this the
/// span keeps updating its scalar gauges but stops appending samples
/// and sets [`SpliceSpan::samples_truncated`].
pub const MAX_FLOW_SAMPLES: usize = 4096;

/// One flow-control observation, taken whenever the splice engine
/// issues or retires work on a descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSample {
    /// Simulated time of the observation.
    pub at: SimTime,
    /// Reads issued so far (cache misses that went to the device).
    pub reads_issued: u64,
    /// Reads satisfied from the buffer cache.
    pub read_hits: u64,
    /// Writes issued so far (shared-header `bwrite`s, device pushes).
    pub writes_issued: u64,
    /// Reads outstanding at the device at this instant.
    pub pending_reads: u32,
    /// Writes outstanding at this instant.
    pub pending_writes: u32,
}

impl FlowSample {
    /// Reads started by any means (device reads plus cache hits).
    pub fn reads_started(&self) -> u64 {
        self.reads_issued + self.read_hits
    }
}

/// Lifecycle and flow-control record for one splice descriptor.
///
/// Timestamps are `Option<SimTime>`: a field is `None` until the event
/// happens (a splice that dies early simply never fills the later
/// ones). The ordering invariant — created ≤ first read ≤ first write
/// ≤ drained ≤ completed, each when present — is asserted by the
/// observability integration test.
#[derive(Clone, Debug, Default)]
pub struct SpliceSpan {
    /// Splice descriptor id this span describes.
    pub id: u64,
    /// When `splice(2)` built the descriptor.
    pub created: Option<SimTime>,
    /// First read issued (or satisfied from cache) on the source.
    pub first_read: Option<SimTime>,
    /// First write issued on the sink.
    pub first_write: Option<SimTime>,
    /// All blocks/bytes moved; the write side has drained.
    pub drained: Option<SimTime>,
    /// Completion delivered to the process (SIGIO posted or the
    /// synchronous sleeper woken).
    pub completed: Option<SimTime>,

    /// Device reads issued.
    pub reads_issued: u64,
    /// Reads satisfied from the buffer cache.
    pub read_hits: u64,
    /// Writes issued.
    pub writes_issued: u64,
    /// Blocks (or pump chunks) fully completed.
    pub blocks_done: u64,
    /// Payload bytes moved end to end.
    pub bytes_moved: u64,
    /// Refill bursts: times the watermark logic restarted the read side.
    pub refill_bursts: u64,
    /// Backoffs: times issue was deferred by flow control or resource
    /// exhaustion (read-side watermark holds, write backpressure).
    pub backoffs: u64,

    /// High-water mark of reads outstanding.
    pub max_pending_reads: u32,
    /// High-water mark of writes outstanding.
    pub max_pending_writes: u32,

    /// Bounded time series of flow observations.
    pub samples: Vec<FlowSample>,
    /// True if the sample ring hit [`MAX_FLOW_SAMPLES`].
    pub samples_truncated: bool,
}

impl SpliceSpan {
    fn new(id: u64, now: SimTime) -> SpliceSpan {
        SpliceSpan {
            id,
            created: Some(now),
            ..SpliceSpan::default()
        }
    }

    /// Records a device read issue.
    pub fn note_read_issued(&mut self, now: SimTime, pending_reads: u32, pending_writes: u32) {
        self.first_read.get_or_insert(now);
        self.reads_issued += 1;
        self.observe(now, pending_reads, pending_writes);
    }

    /// Records a read satisfied from the buffer cache.
    pub fn note_read_hit(&mut self, now: SimTime, pending_reads: u32, pending_writes: u32) {
        self.first_read.get_or_insert(now);
        self.read_hits += 1;
        self.observe(now, pending_reads, pending_writes);
    }

    /// Records a write issue.
    pub fn note_write_issued(&mut self, now: SimTime, pending_reads: u32, pending_writes: u32) {
        self.first_write.get_or_insert(now);
        self.writes_issued += 1;
        self.observe(now, pending_reads, pending_writes);
    }

    /// Records a fully completed block (or pump chunk) of `bytes`.
    pub fn note_block_done(
        &mut self,
        now: SimTime,
        bytes: u64,
        pending_reads: u32,
        pending_writes: u32,
    ) {
        self.blocks_done += 1;
        self.bytes_moved += bytes;
        self.observe(now, pending_reads, pending_writes);
    }

    /// Records a watermark-triggered read-side refill burst.
    pub fn note_refill(&mut self) {
        self.refill_bursts += 1;
    }

    /// Records a flow-control or backpressure deferral.
    pub fn note_backoff(&mut self) {
        self.backoffs += 1;
    }

    /// Marks the transfer drained (all data moved).
    pub fn note_drained(&mut self, now: SimTime) {
        self.drained.get_or_insert(now);
    }

    /// Marks completion delivery (SIGIO posted / sleeper woken).
    pub fn note_completed(&mut self, now: SimTime) {
        self.completed.get_or_insert(now);
    }

    fn observe(&mut self, now: SimTime, pending_reads: u32, pending_writes: u32) {
        self.max_pending_reads = self.max_pending_reads.max(pending_reads);
        self.max_pending_writes = self.max_pending_writes.max(pending_writes);
        if self.samples.len() < MAX_FLOW_SAMPLES {
            self.samples.push(FlowSample {
                at: now,
                reads_issued: self.reads_issued,
                read_hits: self.read_hits,
                writes_issued: self.writes_issued,
                pending_reads,
                pending_writes,
            });
        } else {
            self.samples_truncated = true;
        }
    }
}

/// All splice spans recorded by a kernel, keyed by descriptor id.
///
/// Indexable (`spans[desc]`) for ergonomic assertions; panics on an
/// unknown id like a slice would.
#[derive(Clone, Debug, Default)]
pub struct SpliceSpans {
    spans: BTreeMap<u64, SpliceSpan>,
}

impl SpliceSpans {
    /// Creates an empty collection.
    pub fn new() -> SpliceSpans {
        SpliceSpans::default()
    }

    /// Starts a span for descriptor `id` at `now`. Replaces any stale
    /// span under the same id (descriptor ids are never reused by the
    /// splice engine, so this only matters for defensive callers).
    pub fn start(&mut self, id: u64, now: SimTime) -> &mut SpliceSpan {
        self.spans
            .entry(id)
            .or_insert_with(|| SpliceSpan::new(id, now))
    }

    /// Mutable access for the instrumentation sites; `None` for ids
    /// that never started a span.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut SpliceSpan> {
        self.spans.get_mut(&id)
    }

    /// Shared access by id.
    pub fn get(&self, id: u64) -> Option<&SpliceSpan> {
        self.spans.get(&id)
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no splice has run.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates spans in descriptor-id order.
    pub fn iter(&self) -> impl Iterator<Item = &SpliceSpan> + '_ {
        self.spans.values()
    }
}

impl Index<u64> for SpliceSpans {
    type Output = SpliceSpan;
    fn index(&self, id: u64) -> &SpliceSpan {
        self.get(id)
            .unwrap_or_else(|| panic!("no splice span for descriptor {id}"))
    }
}

impl<'a> IntoIterator for &'a SpliceSpans {
    type Item = &'a SpliceSpan;
    type IntoIter = std::collections::btree_map::Values<'a, u64, SpliceSpan>;
    fn into_iter(self) -> Self::IntoIter {
        self.spans.values()
    }
}

/// Compact digest of a [`Hist`], cheap to copy into snapshots and
/// serialize. All values are in the histogram's native unit
/// (nanoseconds for the kernel's latency histograms).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median, to bucket granularity (0 when empty).
    pub p50: u64,
    /// 90th percentile, to bucket granularity (0 when empty).
    pub p90: u64,
    /// 99th percentile, to bucket granularity (0 when empty).
    pub p99: u64,
    /// 99.9th percentile, to bucket granularity (0 when empty).
    pub p999: u64,
}

impl From<&Hist> for HistSummary {
    fn from(h: &Hist) -> HistSummary {
        HistSummary {
            count: h.count(),
            min: h.min().unwrap_or(0),
            mean: h.mean().unwrap_or(0.0),
            max: h.max().unwrap_or(0),
            p50: h.p50().unwrap_or(0),
            p90: h.p90().unwrap_or(0),
            p99: h.p99().unwrap_or(0),
            p999: h.p999().unwrap_or(0),
        }
    }
}

impl HistSummary {
    /// Serializes the digest with the schema every `BENCH_*.json`
    /// consumer keys on (`count`/`min`/`mean`/`max`/`p50`/`p90`/`p99`/
    /// `p999`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", Json::Num(self.count as f64))
            .with("min", Json::Num(self.min as f64))
            .with("mean", Json::Num(self.mean))
            .with("max", Json::Num(self.max as f64))
            .with("p50", Json::Num(self.p50 as f64))
            .with("p90", Json::Num(self.p90 as f64))
            .with("p99", Json::Num(self.p99 as f64))
            .with("p999", Json::Num(self.p999 as f64))
    }
}

/// Per-stage latency histograms for the splice pipeline, all in
/// nanoseconds of simulated time. One block contributes one sample to
/// each stage it passes through, so under error-free operation the
/// stage counts agree and `end_to_end ≈ read_service + read_to_write +
/// write_service` per block (queue-wait is measured at the device and
/// overlaps `read_service`).
#[derive(Clone, Debug, Default)]
pub struct StageHists {
    /// Submission-queue admission wait: how far into its
    /// `sys_ring_submit` crossing's CPU charge an SQE sat before the
    /// engine dispatched it. The simulated clock does not advance
    /// inside one crossing, so this is the *virtual* offset — later
    /// entries in a batch wait behind the admission and launch CPU of
    /// the entries ahead of them. Empty for workloads that never use
    /// an explicit ring (the legacy `splice(2)` path has no batch to
    /// wait in).
    pub sqe_wait: Hist,
    /// Time a buffer read spent queued at the device before service
    /// began (0 for requests that started immediately, and for the
    /// synchronous RAM-disk path).
    pub read_queue_wait: Hist,
    /// Splice read issue → block arrival at the engine (device queue +
    /// service + completion handler dispatch).
    pub read_service: Hist,
    /// Block arrival → sink write actually issued (the decoupling gap:
    /// deferred-work queueing plus any buffer-shortage backoff).
    pub read_to_write: Hist,
    /// Sink write issue → write completion observed by the engine.
    pub write_service: Hist,
    /// Backoff delays scheduled by the retry path (exponential, per
    /// attempt).
    pub retry_backoff: Hist,
    /// Read issue → write completion for one block (the paper's
    /// per-block "decoupled device access period").
    pub end_to_end: Hist,
}

impl StageHists {
    /// Iterates `(stage name, histogram)` in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Hist)> {
        [
            ("sqe_wait", &self.sqe_wait),
            ("read_queue_wait", &self.read_queue_wait),
            ("read_service", &self.read_service),
            ("read_to_write", &self.read_to_write),
            ("write_service", &self.write_service),
            ("retry_backoff", &self.retry_backoff),
            ("end_to_end", &self.end_to_end),
        ]
        .into_iter()
    }

    /// Serializes every stage digest keyed by stage name.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, h) in self.iter() {
            obj.set(name, h.to_json());
        }
        obj
    }
}

/// The kernel-owned structured-statistics block: splice spans plus
/// latency distributions for the block-I/O completion path.
#[derive(Clone, Debug, Default)]
pub struct Kstat {
    /// Per-descriptor splice lifecycle spans.
    pub spans: SpliceSpans,
    /// `bread` issue → `biodone` latency (ns).
    pub bread_latency: Hist,
    /// `bwrite` issue → `biodone` latency (ns).
    pub bwrite_latency: Hist,
    /// Time a process spent asleep in `biowait` on the read path (ns).
    pub read_wait: Hist,
    /// Splice per-block latency: read issue → write completion (ns).
    pub splice_block_latency: Hist,
    /// Per-stage splice pipeline latency distributions.
    pub stages: StageHists,
}

impl Kstat {
    /// Creates an empty kstat block.
    pub fn new() -> Kstat {
        Kstat::default()
    }

    /// Resets all spans and histograms.
    pub fn clear(&mut self) {
        *self = Kstat::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + crate::time::Dur::from_us(us)
    }

    #[test]
    fn span_lifecycle_orders_timestamps() {
        let mut spans = SpliceSpans::new();
        spans.start(1, t(10));
        let s = spans.get_mut(1).unwrap();
        s.note_read_issued(t(11), 1, 0);
        s.note_write_issued(t(12), 0, 1);
        s.note_block_done(t(13), 4096, 0, 0);
        s.note_drained(t(13));
        s.note_completed(t(14));

        let s = &spans[1];
        assert_eq!(s.created, Some(t(10)));
        assert_eq!(s.first_read, Some(t(11)));
        assert_eq!(s.first_write, Some(t(12)));
        assert_eq!(s.drained, Some(t(13)));
        assert_eq!(s.completed, Some(t(14)));
        assert_eq!(s.bytes_moved, 4096);
        assert_eq!(s.blocks_done, 1);
    }

    #[test]
    fn first_timestamps_are_sticky() {
        let mut spans = SpliceSpans::new();
        spans.start(7, t(1));
        let s = spans.get_mut(7).unwrap();
        s.note_read_issued(t(2), 1, 0);
        s.note_read_issued(t(5), 2, 0);
        assert_eq!(s.first_read, Some(t(2)));
        assert_eq!(s.reads_issued, 2);
        assert_eq!(s.max_pending_reads, 2);
    }

    #[test]
    fn samples_cap_and_flag_truncation() {
        let mut spans = SpliceSpans::new();
        spans.start(3, t(0));
        let s = spans.get_mut(3).unwrap();
        for i in 0..(MAX_FLOW_SAMPLES as u64 + 10) {
            s.note_read_issued(t(i), 1, 0);
        }
        assert_eq!(s.samples.len(), MAX_FLOW_SAMPLES);
        assert!(s.samples_truncated);
        assert_eq!(s.reads_issued, MAX_FLOW_SAMPLES as u64 + 10);
    }

    #[test]
    fn hist_summary_digests() {
        let mut h = Hist::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let s = HistSummary::from(&h);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.mean - 20.0).abs() < 1e-9);
        assert!(s.p50 <= s.p99);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = HistSummary::from(&Hist::new());
        assert_eq!(s, HistSummary::default());
    }

    #[test]
    #[should_panic(expected = "no splice span")]
    fn indexing_unknown_span_panics() {
        let spans = SpliceSpans::new();
        let _ = &spans[42];
    }
}
