//! Lightweight event tracing for debugging simulations.
//!
//! Disabled traces cost one branch; enabled traces append `(time, line)`
//! records into a bounded ring so a failing test can dump the last few
//! thousand kernel events. The `emit` method takes a closure so message
//! formatting is skipped entirely when tracing is off.

use std::collections::VecDeque;

use crate::time::SimTime;

/// A bounded ring buffer of timestamped trace lines.
pub struct Trace {
    enabled: bool,
    capacity: usize,
    ring: VecDeque<(SimTime, String)>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl Trace {
    /// Creates a disabled trace with room for `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Trace {
            enabled: false,
            capacity: capacity.max(1),
            ring: VecDeque::new(),
        }
    }

    /// Turns tracing on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True when records are being captured.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records a trace line if enabled; `f` is not called otherwise.
    pub fn emit(&mut self, now: SimTime, f: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back((now, f()));
    }

    /// The captured records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = (SimTime, &str)> + '_ {
        self.ring.iter().map(|(t, s)| (*t, s.as_str()))
    }

    /// Renders all records as one newline-joined string (for test output).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (t, s) in self.records() {
            out.push_str(&format!("{t} {s}\n"));
        }
        out
    }

    /// Drops all captured records.
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn disabled_trace_skips_formatting() {
        let mut tr = Trace::new(8);
        let mut called = false;
        tr.emit(SimTime::ZERO, || {
            called = true;
            String::from("x")
        });
        assert!(!called);
        assert_eq!(tr.records().count(), 0);
    }

    #[test]
    fn enabled_trace_captures_in_order() {
        let mut tr = Trace::new(8);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || "first".into());
        tr.emit(SimTime::ZERO + Dur::from_us(1), || "second".into());
        let lines: Vec<_> = tr.records().map(|(_, s)| s.to_string()).collect();
        assert_eq!(lines, vec!["first", "second"]);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut tr = Trace::new(2);
        tr.set_enabled(true);
        for i in 0..5 {
            tr.emit(SimTime::ZERO, move || format!("{i}"));
        }
        let lines: Vec<_> = tr.records().map(|(_, s)| s.to_string()).collect();
        assert_eq!(lines, vec!["3", "4"]);
    }

    #[test]
    fn dump_contains_lines() {
        let mut tr = Trace::new(4);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || "hello".into());
        assert!(tr.dump().contains("hello"));
        tr.clear();
        assert!(tr.dump().is_empty());
    }
}
