//! Typed kernel tracing: structured tracepoints, causal splice spans,
//! and Chrome trace-event export.
//!
//! The trace is a bounded ring of [`TraceRecord`]s — a per-event sequence
//! number, a [`SimTime`] stamp, and a [`TraceEvent`] covering the whole
//! kernel vocabulary (scheduler, buffer cache, disks, callouts, network,
//! and every splice phase keyed by `(desc, lblk)`). Disabled traces cost
//! one branch: [`Trace::emit`] takes a closure so event construction is
//! skipped entirely when tracing is off.
//!
//! On top of the ring:
//!
//! * [`TraceQuery`] — filtering, time-window slicing, ordering
//!   assertions, and the **causal span builder** that stitches
//!   `(desc, lblk)` events into per-block [`BlockSpan`]s
//!   (read issue → biodone → callout write → write done), measuring the
//!   paper's §5.2.2 read/write decoupling directly from the trace.
//! * [`Trace::to_chrome_json`] — a Chrome trace-event JSON document
//!   (loadable in Perfetto / `chrome://tracing`): one instant-event
//!   track per kernel subsystem plus one complete-event track per
//!   spliced block.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::{self, Write as _};

use crate::json::Json;
use crate::time::SimTime;

/// One structured kernel tracepoint.
///
/// Identities are plain integers (`Pid.0`, `DevId.0`, `SockId.0`, splice
/// descriptor ids) because this crate sits below the crates that define
/// the typed ids; the kernel unwraps them at the emit site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A sleeping process became runnable.
    SchedWakeup {
        /// Woken process.
        pid: u32,
    },
    /// The context switch to `pid` completed.
    SchedDispatch {
        /// Dispatched process.
        pid: u32,
    },
    /// A user-mode chunk was preempted by a better-priority wakeup.
    SchedPreempt {
        /// Preempted process.
        pid: u32,
    },
    /// A run chunk (user compute or syscall CPU) started.
    SchedRun {
        /// Running process.
        pid: u32,
        /// Chunk length in nanoseconds.
        ns: u64,
    },
    /// A process blocked on a sleep channel.
    SchedSleep {
        /// Sleeping process.
        pid: u32,
        /// Channel identity within its namespace.
        chan: u64,
    },
    /// `bread` served from the cache.
    CacheHit {
        /// Device the block lives on.
        dev: u32,
        /// Physical block number.
        blkno: u64,
    },
    /// `bread` went to the device.
    CacheMiss {
        /// Device the block lives on.
        dev: u32,
        /// Physical block number.
        blkno: u64,
    },
    /// A valid block was evicted to recycle its buffer.
    CacheEvict {
        /// Device the block lived on.
        dev: u32,
        /// Physical block number.
        blkno: u64,
    },
    /// `biodone` completed a buffer transfer.
    CacheBiodone {
        /// Completed buffer.
        buf: u32,
    },
    /// A device transfer was issued for a cache buffer.
    DiskIssue {
        /// Disk index.
        disk: u32,
        /// Physical block number.
        blkno: u64,
        /// Transfer length in bytes.
        len: u32,
        /// True for writes, false for reads.
        write: bool,
    },
    /// A SCSI completion interrupt fired.
    DiskIntr {
        /// Disk index.
        disk: u32,
        /// Completed request token.
        token: u64,
    },
    /// A device transfer failed: `biodone` ran with `B_ERROR` set.
    DiskError {
        /// Disk index.
        disk: u32,
        /// Physical block number of the failed buffer (0 if unknown).
        blkno: u64,
        /// True for writes, false for reads.
        write: bool,
    },
    /// A callout entry was armed.
    CalloutArm {
        /// Ticks until it fires (0 = head of the list, next softclock).
        delay_ticks: u64,
    },
    /// Softclock dispatched an expired callout entry.
    CalloutFire {
        /// The tick at which it fired.
        tick: u64,
    },
    /// A datagram left a socket.
    NetSend {
        /// Sending socket.
        sock: u32,
        /// Payload bytes.
        len: u32,
    },
    /// A datagram was queued into the destination socket buffer.
    NetDeliver {
        /// Receiving socket.
        sock: u32,
        /// Payload bytes.
        len: u32,
    },
    /// A datagram was dropped (no peer, full socket buffer, send error).
    NetDrop {
        /// Socket involved.
        sock: u32,
        /// Payload bytes lost.
        len: u32,
    },
    /// `splice(2)` accepted a transfer and built its descriptor.
    SpliceStart {
        /// Splice descriptor id.
        desc: u64,
        /// Bytes the transfer will move.
        bytes: u64,
    },
    /// `splice(2)` refused a transfer (`splice.rejected`).
    SpliceReject {
        /// The errno delivered, e.g. `"ENOTSUP"`.
        errno: &'static str,
    },
    /// Block phase 1: a source read (or stream pull) was issued.
    SpliceReadIssue {
        /// Splice descriptor id.
        desc: u64,
        /// Logical block within the transfer.
        lblk: u64,
    },
    /// Block phase 2: the source block arrived (the §5.2.1 `b_iodone`).
    SpliceReadDone {
        /// Splice descriptor id.
        desc: u64,
        /// Logical block within the transfer.
        lblk: u64,
    },
    /// Block phase 3: the sink-side write handler ran (the §5.2.2
    /// callout-driven write).
    SpliceWriteIssue {
        /// Splice descriptor id.
        desc: u64,
        /// Logical block within the transfer.
        lblk: u64,
    },
    /// Block phase 4: the block completed and entered the §5.2.3
    /// flow-control tail.
    SpliceWriteDone {
        /// Splice descriptor id.
        desc: u64,
        /// Logical block within the transfer.
        lblk: u64,
    },
    /// The flow-control tail issued a refill batch.
    SpliceRefill {
        /// Splice descriptor id.
        desc: u64,
    },
    /// A transient resource shortage deferred a block to the callout.
    SpliceBackoff {
        /// Splice descriptor id.
        desc: u64,
        /// Logical block that backed off.
        lblk: u64,
    },
    /// Recovery: a failed block read/write is being retried after its
    /// exponential-backoff delay.
    SpliceRetry {
        /// Splice descriptor id.
        desc: u64,
        /// Logical block being retried.
        lblk: u64,
        /// Attempt number (1 = first retry).
        attempt: u32,
    },
    /// Recovery exhausted: the transfer is aborting with a typed errno
    /// and will drain its in-flight blocks before completing.
    SpliceAbort {
        /// Splice descriptor id.
        desc: u64,
        /// The errno delivered, e.g. `"EIO"`.
        errno: &'static str,
    },
    /// The transfer finished (`SIGIO` or synchronous wakeup follows).
    SpliceComplete {
        /// Splice descriptor id.
        desc: u64,
    },
    /// One `sys_ring_submit` crossing accepted a batch of SQEs.
    RingSubmit {
        /// Ring id.
        ring: u64,
        /// SQEs accepted in this crossing.
        entries: u32,
    },
    /// An admitted SQE reached its `splice_begin` dispatch: `wait_ns`
    /// is the virtual CPU offset it waited inside the submit crossing
    /// (the clock does not advance within one crossing, so later batch
    /// entries wait behind the admission work of earlier ones).
    RingSqeWait {
        /// Ring id.
        ring: u64,
        /// Virtual wait from crossing start to dispatch, nanoseconds.
        wait_ns: u64,
    },
    /// One `sys_ring_reap` crossing drained a batch of CQEs.
    RingReap {
        /// Ring id.
        ring: u64,
        /// CQEs handed to the reaper in this crossing.
        entries: u32,
    },
    /// The SLO monitor's sliding-window burn rate crossed its alert
    /// threshold (the flight recorder freezes on the first of these).
    SloAlert {
        /// Burn rate in thousandths: (window violation fraction) /
        /// (1 - objective), ×1000.
        burn_milli: u32,
        /// Over-SLO (or errored) requests in the window.
        window_viol: u32,
        /// Total requests in the window.
        window_req: u32,
    },
}

impl TraceEvent {
    /// Stable dotted name of the event kind (used by queries, the text
    /// dump, and the Chrome exporter).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SchedWakeup { .. } => "sched.wakeup",
            TraceEvent::SchedDispatch { .. } => "sched.dispatch",
            TraceEvent::SchedPreempt { .. } => "sched.preempt",
            TraceEvent::SchedRun { .. } => "sched.run",
            TraceEvent::SchedSleep { .. } => "sched.sleep",
            TraceEvent::CacheHit { .. } => "cache.hit",
            TraceEvent::CacheMiss { .. } => "cache.miss",
            TraceEvent::CacheEvict { .. } => "cache.evict",
            TraceEvent::CacheBiodone { .. } => "cache.biodone",
            TraceEvent::DiskIssue { .. } => "disk.issue",
            TraceEvent::DiskIntr { .. } => "disk.intr",
            TraceEvent::DiskError { .. } => "disk.error",
            TraceEvent::CalloutArm { .. } => "callout.arm",
            TraceEvent::CalloutFire { .. } => "callout.fire",
            TraceEvent::NetSend { .. } => "net.send",
            TraceEvent::NetDeliver { .. } => "net.deliver",
            TraceEvent::NetDrop { .. } => "net.drop",
            TraceEvent::SpliceStart { .. } => "splice.start",
            TraceEvent::SpliceReject { .. } => "splice.reject",
            TraceEvent::SpliceReadIssue { .. } => "splice.read_issue",
            TraceEvent::SpliceReadDone { .. } => "splice.read_done",
            TraceEvent::SpliceWriteIssue { .. } => "splice.write_issue",
            TraceEvent::SpliceWriteDone { .. } => "splice.write_done",
            TraceEvent::SpliceRefill { .. } => "splice.refill",
            TraceEvent::SpliceBackoff { .. } => "splice.backoff",
            TraceEvent::SpliceRetry { .. } => "splice.retry",
            TraceEvent::SpliceAbort { .. } => "splice.abort",
            TraceEvent::SpliceComplete { .. } => "splice.complete",
            TraceEvent::RingSubmit { .. } => "ring.submit",
            TraceEvent::RingSqeWait { .. } => "ring.sqe_wait",
            TraceEvent::RingReap { .. } => "ring.reap",
            TraceEvent::SloAlert { .. } => "slo.alert",
        }
    }

    /// The `(desc, lblk)` key for the four per-block splice phases;
    /// `None` for everything else.
    pub fn splice_key(&self) -> Option<(u64, u64)> {
        match *self {
            TraceEvent::SpliceReadIssue { desc, lblk }
            | TraceEvent::SpliceReadDone { desc, lblk }
            | TraceEvent::SpliceWriteIssue { desc, lblk }
            | TraceEvent::SpliceWriteDone { desc, lblk } => Some((desc, lblk)),
            _ => None,
        }
    }

    /// The subsystem track this event renders on in the Chrome export.
    fn track(&self) -> (&'static str, u64) {
        match self {
            TraceEvent::SchedWakeup { .. }
            | TraceEvent::SchedDispatch { .. }
            | TraceEvent::SchedPreempt { .. }
            | TraceEvent::SchedRun { .. }
            | TraceEvent::SchedSleep { .. } => ("sched", 1),
            TraceEvent::CacheHit { .. }
            | TraceEvent::CacheMiss { .. }
            | TraceEvent::CacheEvict { .. }
            | TraceEvent::CacheBiodone { .. } => ("cache", 2),
            TraceEvent::DiskIssue { .. }
            | TraceEvent::DiskIntr { .. }
            | TraceEvent::DiskError { .. } => ("disk", 3),
            TraceEvent::CalloutArm { .. } | TraceEvent::CalloutFire { .. } => ("callout", 4),
            TraceEvent::NetSend { .. }
            | TraceEvent::NetDeliver { .. }
            | TraceEvent::NetDrop { .. } => ("net", 5),
            TraceEvent::SloAlert { .. } => ("slo", 7),
            _ => ("splice", 6),
        }
    }

    /// Event payload as a structured `args` object (the Chrome export
    /// and the flight recorder share this encoding).
    pub fn args_json(&self) -> Json {
        let num = |v: u64| Json::Num(v as f64);
        match *self {
            TraceEvent::SchedWakeup { pid }
            | TraceEvent::SchedDispatch { pid }
            | TraceEvent::SchedPreempt { pid } => Json::obj().with("pid", num(pid as u64)),
            TraceEvent::SchedRun { pid, ns } => {
                Json::obj().with("pid", num(pid as u64)).with("ns", num(ns))
            }
            TraceEvent::SchedSleep { pid, chan } => Json::obj()
                .with("pid", num(pid as u64))
                .with("chan", num(chan)),
            TraceEvent::CacheHit { dev, blkno }
            | TraceEvent::CacheMiss { dev, blkno }
            | TraceEvent::CacheEvict { dev, blkno } => Json::obj()
                .with("dev", num(dev as u64))
                .with("blkno", num(blkno)),
            TraceEvent::CacheBiodone { buf } => Json::obj().with("buf", num(buf as u64)),
            TraceEvent::DiskIssue {
                disk,
                blkno,
                len,
                write,
            } => Json::obj()
                .with("disk", num(disk as u64))
                .with("blkno", num(blkno))
                .with("len", num(len as u64))
                .with("write", Json::Bool(write)),
            TraceEvent::DiskIntr { disk, token } => Json::obj()
                .with("disk", num(disk as u64))
                .with("token", num(token)),
            TraceEvent::DiskError { disk, blkno, write } => Json::obj()
                .with("disk", num(disk as u64))
                .with("blkno", num(blkno))
                .with("write", Json::Bool(write)),
            TraceEvent::CalloutArm { delay_ticks } => {
                Json::obj().with("delay_ticks", num(delay_ticks))
            }
            TraceEvent::CalloutFire { tick } => Json::obj().with("tick", num(tick)),
            TraceEvent::NetSend { sock, len }
            | TraceEvent::NetDeliver { sock, len }
            | TraceEvent::NetDrop { sock, len } => Json::obj()
                .with("sock", num(sock as u64))
                .with("len", num(len as u64)),
            TraceEvent::SpliceStart { desc, bytes } => Json::obj()
                .with("desc", num(desc))
                .with("bytes", num(bytes)),
            TraceEvent::SpliceReject { errno } => {
                Json::obj().with("errno", Json::Str(errno.into()))
            }
            TraceEvent::SpliceReadIssue { desc, lblk }
            | TraceEvent::SpliceReadDone { desc, lblk }
            | TraceEvent::SpliceWriteIssue { desc, lblk }
            | TraceEvent::SpliceWriteDone { desc, lblk }
            | TraceEvent::SpliceBackoff { desc, lblk } => {
                Json::obj().with("desc", num(desc)).with("lblk", num(lblk))
            }
            TraceEvent::SpliceRetry {
                desc,
                lblk,
                attempt,
            } => Json::obj()
                .with("desc", num(desc))
                .with("lblk", num(lblk))
                .with("attempt", num(attempt as u64)),
            TraceEvent::SpliceAbort { desc, errno } => Json::obj()
                .with("desc", num(desc))
                .with("errno", Json::Str(errno.into())),
            TraceEvent::SpliceRefill { desc } | TraceEvent::SpliceComplete { desc } => {
                Json::obj().with("desc", num(desc))
            }
            TraceEvent::RingSubmit { ring, entries } | TraceEvent::RingReap { ring, entries } => {
                Json::obj()
                    .with("ring", num(ring))
                    .with("entries", num(entries as u64))
            }
            TraceEvent::RingSqeWait { ring, wait_ns } => Json::obj()
                .with("ring", num(ring))
                .with("wait_ns", num(wait_ns)),
            TraceEvent::SloAlert {
                burn_milli,
                window_viol,
                window_req,
            } => Json::obj()
                .with("burn_milli", num(burn_milli as u64))
                .with("window_viol", num(window_viol as u64))
                .with("window_req", num(window_req as u64)),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())?;
        match *self {
            TraceEvent::SchedWakeup { pid }
            | TraceEvent::SchedDispatch { pid }
            | TraceEvent::SchedPreempt { pid } => write!(f, " pid={pid}"),
            TraceEvent::SchedRun { pid, ns } => write!(f, " pid={pid} ns={ns}"),
            TraceEvent::SchedSleep { pid, chan } => write!(f, " pid={pid} chan={chan}"),
            TraceEvent::CacheHit { dev, blkno }
            | TraceEvent::CacheMiss { dev, blkno }
            | TraceEvent::CacheEvict { dev, blkno } => write!(f, " dev={dev} blkno={blkno}"),
            TraceEvent::CacheBiodone { buf } => write!(f, " buf={buf}"),
            TraceEvent::DiskIssue {
                disk,
                blkno,
                len,
                write,
            } => {
                let dir = if write { "write" } else { "read" };
                write!(f, " disk={disk} blkno={blkno} len={len} dir={dir}")
            }
            TraceEvent::DiskIntr { disk, token } => write!(f, " disk={disk} token={token}"),
            TraceEvent::DiskError { disk, blkno, write } => {
                let dir = if write { "write" } else { "read" };
                write!(f, " disk={disk} blkno={blkno} dir={dir}")
            }
            TraceEvent::CalloutArm { delay_ticks } => write!(f, " delay_ticks={delay_ticks}"),
            TraceEvent::CalloutFire { tick } => write!(f, " tick={tick}"),
            TraceEvent::NetSend { sock, len }
            | TraceEvent::NetDeliver { sock, len }
            | TraceEvent::NetDrop { sock, len } => write!(f, " sock={sock} len={len}"),
            TraceEvent::SpliceStart { desc, bytes } => write!(f, " desc={desc} bytes={bytes}"),
            TraceEvent::SpliceReject { errno } => write!(f, " errno={errno}"),
            TraceEvent::SpliceReadIssue { desc, lblk }
            | TraceEvent::SpliceReadDone { desc, lblk }
            | TraceEvent::SpliceWriteIssue { desc, lblk }
            | TraceEvent::SpliceWriteDone { desc, lblk }
            | TraceEvent::SpliceBackoff { desc, lblk } => write!(f, " desc={desc} lblk={lblk}"),
            TraceEvent::SpliceRetry {
                desc,
                lblk,
                attempt,
            } => {
                write!(f, " desc={desc} lblk={lblk} attempt={attempt}")
            }
            TraceEvent::SpliceAbort { desc, errno } => write!(f, " desc={desc} errno={errno}"),
            TraceEvent::SpliceRefill { desc } | TraceEvent::SpliceComplete { desc } => {
                write!(f, " desc={desc}")
            }
            TraceEvent::RingSubmit { ring, entries } | TraceEvent::RingReap { ring, entries } => {
                write!(f, " ring={ring} entries={entries}")
            }
            TraceEvent::RingSqeWait { ring, wait_ns } => {
                write!(f, " ring={ring} wait_ns={wait_ns}")
            }
            TraceEvent::SloAlert {
                burn_milli,
                window_viol,
                window_req,
            } => {
                write!(
                    f,
                    " burn_milli={burn_milli} window_viol={window_viol} window_req={window_req}"
                )
            }
        }
    }
}

/// One captured tracepoint: sequence number, timestamp, event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone per-trace sequence number (keeps counting as the ring
    /// drops old records, so gaps reveal loss).
    pub seq: u64,
    /// Simulated time of the emit.
    pub at: SimTime,
    /// The structured event.
    pub ev: TraceEvent,
}

/// Interned handle to a counter series, returned by
/// [`Trace::counter_id`] and consumed by [`Trace::record_counter_id`].
/// Recording through a handle costs one bounds check — no name lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterId(u32);

/// A bounded ring buffer of typed, sequence-numbered trace records.
pub struct Trace {
    enabled: bool,
    capacity: usize,
    next_seq: u64,
    /// Records evicted by ring wrap — silent truncation made countable.
    dropped: u64,
    ring: VecDeque<TraceRecord>,
    /// Per-series cap for counter samples; 0 means counters are off
    /// (the default — nothing records and the Chrome export is
    /// byte-identical to a counter-free trace).
    counter_capacity: usize,
    /// Named counter series (gauge time series recorded by the
    /// sampler), each a bounded ring in time order. A `Vec` keyed by
    /// linear scan: the handful of series stays in insertion order,
    /// which fixes the Chrome track numbering deterministically.
    counters: Vec<(String, VecDeque<(SimTime, f64)>)>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl Trace {
    /// Creates a disabled trace with room for `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Trace {
            enabled: false,
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
            ring: VecDeque::new(),
            counter_capacity: 0,
            counters: Vec::new(),
        }
    }

    /// Enables counter recording with a per-series sample cap. Counter
    /// tracks are an explicit opt-in (the kernel's sampler), separate
    /// from [`Trace::set_enabled`]: gauges stay recordable even when
    /// the event ring is off, and an event-only trace never grows
    /// counter tracks.
    pub fn set_counter_capacity(&mut self, capacity: usize) {
        self.counter_capacity = capacity;
    }

    /// Appends one sample to the named counter series (creating the
    /// series on first use). No-op until
    /// [`Trace::set_counter_capacity`] enables counters; the oldest
    /// sample drops once a series hits the cap.
    ///
    /// Convenience wrapper: looks the series up by name every call. A
    /// periodic recorder should intern the name once with
    /// [`Trace::counter_id`] and record through
    /// [`Trace::record_counter_id`] instead, which is allocation- and
    /// scan-free.
    pub fn record_counter(&mut self, now: SimTime, name: &str, value: f64) {
        if self.counter_capacity == 0 {
            return;
        }
        let id = self.counter_id(name);
        self.record_counter_id(now, id, value);
    }

    /// Interns `name`, creating its series if needed, and returns a
    /// handle for [`Trace::record_counter_id`]. Series creation order
    /// fixes the Chrome counter-track numbering, exactly as with
    /// [`Trace::record_counter`] first use. No-op handle (series not
    /// created) until counters are enabled.
    pub fn counter_id(&mut self, name: &str) -> CounterId {
        if self.counter_capacity == 0 {
            return CounterId(u32::MAX);
        }
        let index = match self.counters.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.counters.push((name.to_string(), VecDeque::new()));
                self.counters.len() - 1
            }
        };
        CounterId(index as u32)
    }

    /// Appends one sample to an interned counter series: the hot path —
    /// one bounds check, no hashing, no scan, no allocation once the
    /// series ring is at capacity.
    pub fn record_counter_id(&mut self, now: SimTime, id: CounterId, value: f64) {
        if self.counter_capacity == 0 {
            return;
        }
        let Some((_, series)) = self.counters.get_mut(id.0 as usize) else {
            return;
        };
        if series.len() == self.counter_capacity {
            series.pop_front();
        }
        series.push_back((now, value));
    }

    /// The recorded counter series, in creation order:
    /// `(name, samples)` with samples oldest first.
    pub fn counter_series(&self) -> impl Iterator<Item = (&str, &VecDeque<(SimTime, f64)>)> {
        self.counters.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Turns tracing on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True when records are being captured.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event if enabled; `f` is not called otherwise, so a
    /// disabled trace costs exactly one branch per tracepoint.
    pub fn emit(&mut self, now: SimTime, f: impl FnOnce() -> TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push_back(TraceRecord {
            seq,
            at: now,
            ev: f(),
        });
    }

    /// The captured records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.ring.iter()
    }

    /// Number of records currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Total records emitted over the trace's lifetime (the next
    /// sequence number) — includes records the ring has since dropped.
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Records lost to ring wrap: `emitted() - dropped()` never exceeds
    /// the capacity. A non-zero value means the oldest events of the
    /// run are gone.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True if nothing has been captured (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// A query view over the captured records.
    pub fn query(&self) -> TraceQuery<'_> {
        TraceQuery { trace: self }
    }

    /// Renders all records as one newline-joined string (for test
    /// output). Formats through `fmt::Write` — no per-line allocation.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            let _ = writeln!(out, "{} #{} {}", r.at, r.seq, r.ev);
        }
        out
    }

    /// Drops all captured records (sequence numbers keep counting).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Exports the trace as a Chrome trace-event JSON document, loadable
    /// in Perfetto or `chrome://tracing`.
    ///
    /// Layout: pid 1 ("kernel") carries one instant-event thread per
    /// subsystem (sched, cache, disk, callout, net, splice); each splice
    /// descriptor gets its own process (pid `100 + desc`) with one
    /// complete-event ("X") row per fully-stitched block span, so the
    /// §5.2.2 read/write pipelining is visible as overlapping bars.
    /// Timestamps are microseconds and monotone per (pid, tid).
    pub fn to_chrome_json(&self) -> Json {
        const KERNEL_PID: u64 = 1;
        let us = |t: SimTime| Json::Num(t.as_ns() as f64 / 1e3);
        let num = |v: u64| Json::Num(v as f64);
        let mut evs: Vec<Json> = Vec::new();

        // Process/thread naming metadata (ts 0, ahead of every event).
        let meta = |name: &str, pid: u64, tid: u64, key: &str| {
            Json::obj()
                .with("name", Json::Str(key.into()))
                .with("ph", Json::Str("M".into()))
                .with("ts", Json::Num(0.0))
                .with("pid", num(pid))
                .with("tid", num(tid))
                .with("args", Json::obj().with("name", Json::Str(name.into())))
        };
        evs.push(meta("kernel", KERNEL_PID, 0, "process_name"));
        for (name, tid) in [
            ("sched", 1u64),
            ("cache", 2),
            ("disk", 3),
            ("callout", 4),
            ("net", 5),
            ("splice", 6),
            ("slo", 7),
        ] {
            evs.push(meta(name, KERNEL_PID, tid, "thread_name"));
        }

        // Instant events, in ring (= time) order per subsystem thread.
        for r in self.records() {
            let (_, tid) = r.ev.track();
            evs.push(
                Json::obj()
                    .with("name", Json::Str(r.ev.name().into()))
                    .with("ph", Json::Str("i".into()))
                    .with("ts", us(r.at))
                    .with("pid", num(KERNEL_PID))
                    .with("tid", num(tid))
                    .with("s", Json::Str("t".into()))
                    .with("args", r.ev.args_json()),
            );
        }

        // One complete event per fully-stitched block span: its own
        // (pid, tid) row, so single-event monotonicity is trivial.
        for span in self.query().all_block_spans() {
            let (Some(ri), Some(rd), Some(wi), Some(wd)) = (
                span.read_issue,
                span.read_done,
                span.write_issue,
                span.write_done,
            ) else {
                continue;
            };
            let pid = 100 + span.desc;
            evs.push(meta(
                &format!("splice {}", span.desc),
                pid,
                span.lblk,
                "process_name",
            ));
            evs.push(
                Json::obj()
                    .with("name", Json::Str(format!("block {}", span.lblk)))
                    .with("ph", Json::Str("X".into()))
                    .with("ts", us(ri.at))
                    .with("dur", Json::Num(wd.at.since(ri.at).as_ns() as f64 / 1e3))
                    .with("pid", num(pid))
                    .with("tid", num(span.lblk))
                    .with(
                        "args",
                        Json::obj()
                            .with("desc", num(span.desc))
                            .with("lblk", num(span.lblk))
                            .with("read_issue_us", us(ri.at))
                            .with("read_done_us", us(rd.at))
                            .with("write_issue_us", us(wi.at))
                            .with("write_done_us", us(wd.at)),
                    ),
            );
        }

        // Counter ("C") tracks, one tid per series on the kernel pid.
        // Only present when the sampler recorded something, so a
        // counter-free trace exports byte-identically to before.
        for (i, (name, samples)) in self.counters.iter().enumerate() {
            let tid = 10 + i as u64;
            evs.push(meta(name, KERNEL_PID, tid, "thread_name"));
            for (at, value) in samples {
                evs.push(
                    Json::obj()
                        .with("name", Json::Str(name.clone()))
                        .with("ph", Json::Str("C".into()))
                        .with("ts", us(*at))
                        .with("pid", num(KERNEL_PID))
                        .with("tid", num(tid))
                        .with("args", Json::obj().with("value", Json::Num(*value))),
                );
            }
        }

        Json::obj()
            .with("traceEvents", Json::Arr(evs))
            .with("displayTimeUnit", Json::Str("ms".into()))
    }
}

/// Where one phase of a block span happened in the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseMark {
    /// Sequence number of the first record of this phase.
    pub seq: u64,
    /// Timestamp of that record.
    pub at: SimTime,
}

/// The causal span of one spliced block, stitched from `(desc, lblk)`
/// events: read issue → biodone → callout write → write done. Each phase
/// records its *first* occurrence (backoff retries re-emit phases).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockSpan {
    /// Splice descriptor id.
    pub desc: u64,
    /// Logical block within the transfer.
    pub lblk: u64,
    /// Phase 1: the source read/pull was issued.
    pub read_issue: Option<PhaseMark>,
    /// Phase 2: the block arrived (`b_iodone`).
    pub read_done: Option<PhaseMark>,
    /// Phase 3: the sink write handler ran.
    pub write_issue: Option<PhaseMark>,
    /// Phase 4: the block completed.
    pub write_done: Option<PhaseMark>,
}

impl BlockSpan {
    /// True when all four phases were observed.
    pub fn complete(&self) -> bool {
        self.read_issue.is_some()
            && self.read_done.is_some()
            && self.write_issue.is_some()
            && self.write_done.is_some()
    }

    /// True when the observed phases appear in pipeline order (by trace
    /// sequence) and no later phase exists without its predecessor.
    pub fn ordered(&self) -> bool {
        let phases = [
            self.read_issue,
            self.read_done,
            self.write_issue,
            self.write_done,
        ];
        let mut last: Option<u64> = None;
        for p in phases.iter().rev() {
            match (p, last) {
                (Some(mark), Some(next)) if mark.seq >= next => return false,
                (None, Some(_)) => return false, // gap before a later phase
                _ => {}
            }
            if let Some(mark) = p {
                last = Some(mark.seq);
            }
        }
        true
    }
}

/// Read-only query view over a [`Trace`].
pub struct TraceQuery<'a> {
    trace: &'a Trace,
}

impl<'a> TraceQuery<'a> {
    /// Records whose event satisfies `pred`, oldest first.
    pub fn events_of(&self, pred: impl Fn(&TraceEvent) -> bool) -> Vec<&'a TraceRecord> {
        self.trace.records().filter(|r| pred(&r.ev)).collect()
    }

    /// Records of the named kind (see [`TraceEvent::name`]).
    pub fn named(&self, name: &str) -> Vec<&'a TraceRecord> {
        self.events_of(|e| e.name() == name)
    }

    /// Records with `from <= at <= to`, oldest first.
    pub fn between(&self, from: SimTime, to: SimTime) -> Vec<&'a TraceRecord> {
        self.trace
            .records()
            .filter(|r| r.at >= from && r.at <= to)
            .collect()
    }

    /// Asserts that the *first* occurrence of each named event kind
    /// appears in the given order in the trace.
    ///
    /// # Panics
    ///
    /// Panics if a named kind never occurs or the first occurrences are
    /// out of order.
    pub fn assert_ordered(&self, names: &[&str]) {
        let mut last: Option<(u64, &str)> = None;
        for name in names {
            let first = self
                .trace
                .records()
                .find(|r| r.ev.name() == *name)
                .unwrap_or_else(|| panic!("no `{name}` event in trace"));
            if let Some((seq, prev)) = last {
                assert!(
                    seq < first.seq,
                    "`{prev}` (#{seq}) does not precede `{name}` (#{})",
                    first.seq
                );
            }
            last = Some((first.seq, name));
        }
    }

    /// The stitched span of one block, if any of its phases were traced.
    pub fn span_of(&self, desc: u64, lblk: u64) -> Option<BlockSpan> {
        let span = self.stitch(Some(desc)).remove(&(desc, lblk))?;
        Some(span)
    }

    /// All block spans of one descriptor, ordered by logical block.
    pub fn block_spans(&self, desc: u64) -> Vec<BlockSpan> {
        self.stitch(Some(desc)).into_values().collect()
    }

    /// Every block span in the trace, ordered by `(desc, lblk)`.
    pub fn all_block_spans(&self) -> Vec<BlockSpan> {
        self.stitch(None).into_values().collect()
    }

    fn stitch(&self, only_desc: Option<u64>) -> BTreeMap<(u64, u64), BlockSpan> {
        let mut spans: BTreeMap<(u64, u64), BlockSpan> = BTreeMap::new();
        for r in self.trace.records() {
            let Some((desc, lblk)) = r.ev.splice_key() else {
                continue;
            };
            if only_desc.is_some_and(|d| d != desc) {
                continue;
            }
            let span = spans.entry((desc, lblk)).or_insert_with(|| BlockSpan {
                desc,
                lblk,
                ..BlockSpan::default()
            });
            let mark = PhaseMark {
                seq: r.seq,
                at: r.at,
            };
            let slot = match r.ev {
                TraceEvent::SpliceReadIssue { .. } => &mut span.read_issue,
                TraceEvent::SpliceReadDone { .. } => &mut span.read_done,
                TraceEvent::SpliceWriteIssue { .. } => &mut span.write_issue,
                TraceEvent::SpliceWriteDone { .. } => &mut span.write_done,
                _ => unreachable!("splice_key covers only the four phases"),
            };
            if slot.is_none() {
                *slot = Some(mark);
            }
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn wake(pid: u32) -> TraceEvent {
        TraceEvent::SchedWakeup { pid }
    }

    #[test]
    fn disabled_trace_skips_event_construction() {
        let mut tr = Trace::new(8);
        let mut called = false;
        tr.emit(SimTime::ZERO, || {
            called = true;
            wake(1)
        });
        assert!(!called);
        assert_eq!(tr.records().count(), 0);
        assert!(tr.is_empty());
    }

    #[test]
    fn enabled_trace_captures_in_order_with_seq() {
        let mut tr = Trace::new(8);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || wake(1));
        tr.emit(SimTime::ZERO + Dur::from_us(1), || wake(2));
        let recs: Vec<_> = tr.records().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
        assert_eq!(recs[1].ev, wake(2));
    }

    #[test]
    fn ring_drops_oldest_but_seq_keeps_counting() {
        let mut tr = Trace::new(2);
        tr.set_enabled(true);
        for i in 0..5 {
            tr.emit(SimTime::ZERO, move || wake(i));
        }
        let recs: Vec<_> = tr.records().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 3);
        assert_eq!(recs[1].seq, 4);
        assert_eq!(recs[1].ev, wake(4));
        assert_eq!(tr.emitted(), 5, "every emit counts");
        assert_eq!(tr.dropped(), 3, "every wrap-eviction counts");
        assert_eq!(tr.emitted() - tr.dropped(), tr.len() as u64);
    }

    #[test]
    fn unwrapped_ring_reports_zero_dropped() {
        let mut tr = Trace::new(8);
        tr.set_enabled(true);
        for i in 0..8 {
            tr.emit(SimTime::ZERO, move || wake(i));
        }
        assert_eq!(tr.emitted(), 8);
        assert_eq!(tr.dropped(), 0, "at-capacity without wrap drops nothing");
    }

    #[test]
    fn slo_alert_event_round_trips() {
        let mut tr = Trace::new(8);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || TraceEvent::SloAlert {
            burn_milli: 2500,
            window_viol: 5,
            window_req: 64,
        });
        let recs = tr.query().named("slo.alert");
        assert_eq!(recs.len(), 1);
        assert!(
            tr.dump()
                .contains("burn_milli=2500 window_viol=5 window_req=64"),
            "{}",
            tr.dump()
        );
        let doc = tr.to_chrome_json();
        let parsed = Json::parse(&doc.render()).expect("chrome json parses");
        assert_eq!(parsed, doc);
        // Lands on its own subsystem track, not the splice fallback.
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let alert = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("slo.alert"))
            .expect("alert instant event");
        assert_eq!(alert.get("tid").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn dump_renders_lines_without_per_line_alloc_path() {
        let mut tr = Trace::new(4);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || TraceEvent::SpliceReject {
            errno: "EINVAL",
        });
        let dump = tr.dump();
        assert!(dump.contains("splice.reject"), "{dump}");
        assert!(dump.contains("errno=EINVAL"), "{dump}");
        tr.clear();
        assert!(tr.dump().is_empty());
    }

    fn block_phases(tr: &mut Trace, desc: u64, lblk: u64, t0: u64) {
        let t = |us| SimTime::ZERO + Dur::from_us(us);
        tr.emit(t(t0), || TraceEvent::SpliceReadIssue { desc, lblk });
        tr.emit(t(t0 + 1), || TraceEvent::SpliceReadDone { desc, lblk });
        tr.emit(t(t0 + 2), || TraceEvent::SpliceWriteIssue { desc, lblk });
        tr.emit(t(t0 + 3), || TraceEvent::SpliceWriteDone { desc, lblk });
    }

    #[test]
    fn span_builder_stitches_block_phases() {
        let mut tr = Trace::new(64);
        tr.set_enabled(true);
        block_phases(&mut tr, 1, 0, 10);
        block_phases(&mut tr, 1, 1, 12);
        let q = tr.query();
        let s = q.span_of(1, 0).expect("span");
        assert!(s.complete() && s.ordered());
        assert_eq!(s.read_issue.unwrap().at, SimTime::ZERO + Dur::from_us(10));
        assert_eq!(q.block_spans(1).len(), 2);
        assert!(q.span_of(2, 0).is_none());
    }

    #[test]
    fn partial_span_is_incomplete_and_gap_is_unordered() {
        let mut tr = Trace::new(64);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || TraceEvent::SpliceReadIssue {
            desc: 1,
            lblk: 0,
        });
        tr.emit(SimTime::ZERO + Dur::from_us(1), || {
            TraceEvent::SpliceWriteDone { desc: 1, lblk: 0 }
        });
        let s = tr.query().span_of(1, 0).unwrap();
        assert!(!s.complete());
        assert!(!s.ordered(), "write_done without write_issue is a gap");
    }

    #[test]
    fn query_filters_and_ordering_assertions() {
        let mut tr = Trace::new(64);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || TraceEvent::SpliceStart {
            desc: 1,
            bytes: 8,
        });
        block_phases(&mut tr, 1, 0, 5);
        tr.emit(SimTime::ZERO + Dur::from_us(9), || {
            TraceEvent::SpliceComplete { desc: 1 }
        });
        let q = tr.query();
        assert_eq!(q.named("splice.start").len(), 1);
        assert_eq!(
            q.between(
                SimTime::ZERO + Dur::from_us(5),
                SimTime::ZERO + Dur::from_us(8)
            )
            .len(),
            4
        );
        q.assert_ordered(&[
            "splice.start",
            "splice.read_issue",
            "splice.read_done",
            "splice.write_issue",
            "splice.write_done",
            "splice.complete",
        ]);
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn assert_ordered_panics_on_inversion() {
        let mut tr = Trace::new(8);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || TraceEvent::SpliceComplete { desc: 1 });
        tr.emit(SimTime::ZERO, || TraceEvent::SpliceStart {
            desc: 1,
            bytes: 1,
        });
        tr.query()
            .assert_ordered(&["splice.start", "splice.complete"]);
    }

    #[test]
    fn chrome_export_parses_and_is_monotone_per_track() {
        let mut tr = Trace::new(64);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || TraceEvent::SchedWakeup { pid: 1 });
        // Two overlapping block spans, emitted in time order as the
        // simulator would (the clock never runs backwards).
        let t = |us| SimTime::ZERO + Dur::from_us(us);
        tr.emit(t(2), || TraceEvent::SpliceReadIssue { desc: 3, lblk: 0 });
        tr.emit(t(3), || TraceEvent::SpliceReadDone { desc: 3, lblk: 0 });
        tr.emit(t(4), || TraceEvent::SpliceWriteIssue { desc: 3, lblk: 0 });
        tr.emit(t(4), || TraceEvent::SpliceReadIssue { desc: 3, lblk: 1 });
        tr.emit(t(5), || TraceEvent::SpliceWriteDone { desc: 3, lblk: 0 });
        tr.emit(t(5), || TraceEvent::SpliceReadDone { desc: 3, lblk: 1 });
        tr.emit(t(6), || TraceEvent::SpliceWriteIssue { desc: 3, lblk: 1 });
        tr.emit(t(7), || TraceEvent::SpliceWriteDone { desc: 3, lblk: 1 });
        let doc = tr.to_chrome_json();
        let parsed = Json::parse(&doc.render()).expect("chrome json parses");
        assert_eq!(parsed, doc);
        let evs = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        assert!(!evs.is_empty());
        let mut last: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
        let mut blocks = 0;
        for e in evs {
            let pid = e.get("pid").and_then(Json::as_u64).unwrap();
            let tid = e.get("tid").and_then(Json::as_u64).unwrap();
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            let prev = last.entry((pid, tid)).or_insert(ts);
            assert!(ts >= *prev, "ts regressed on ({pid},{tid})");
            *prev = ts;
            if e.get("ph").and_then(Json::as_str) == Some("X") {
                blocks += 1;
                assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
            }
        }
        assert_eq!(blocks, 2, "one complete event per stitched block");
    }

    #[test]
    fn wrapped_ring_yields_partial_spans_without_panic() {
        // Capacity 6 holds only the newest 6 of 8 phase events: block 0
        // loses its read_issue/read_done to the wrap. The span builder
        // must degrade to a partial span, never panic.
        let mut tr = Trace::new(6);
        tr.set_enabled(true);
        block_phases(&mut tr, 1, 0, 10);
        block_phases(&mut tr, 1, 1, 20);
        assert_eq!(tr.len(), 6, "ring wrapped");
        let spans = tr.query().all_block_spans();
        assert_eq!(spans.len(), 2);
        let s0 = tr.query().span_of(1, 0).unwrap();
        assert!(!s0.complete(), "truncated block span must be partial");
        assert!(s0.read_issue.is_none() && s0.read_done.is_none());
        assert!(s0.write_issue.is_some() && s0.write_done.is_some());
        let s1 = tr.query().span_of(1, 1).unwrap();
        assert!(s1.complete() && s1.ordered(), "untruncated span survives");
    }

    #[test]
    fn wrapped_ring_chrome_export_skips_partial_spans() {
        let mut tr = Trace::new(5);
        tr.set_enabled(true);
        block_phases(&mut tr, 7, 0, 0);
        block_phases(&mut tr, 7, 1, 10);
        let doc = tr.to_chrome_json();
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let blocks = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .count();
        assert_eq!(blocks, 1, "only the fully-stitched block exports");
    }

    #[test]
    fn truncated_tail_span_is_unordered_gap() {
        // A span whose later phases were never emitted (run cut short):
        // incomplete but *ordered* — the observed prefix is causal.
        let mut tr = Trace::new(64);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || TraceEvent::SpliceReadIssue {
            desc: 9,
            lblk: 4,
        });
        tr.emit(SimTime::ZERO + Dur::from_us(1), || {
            TraceEvent::SpliceReadDone { desc: 9, lblk: 4 }
        });
        let s = tr.query().span_of(9, 4).unwrap();
        assert!(!s.complete());
        assert!(s.ordered(), "a causal prefix is not a gap");

        // Whereas a wrap that ate the *middle* phases leaves a gap.
        let mut tr2 = Trace::new(64);
        tr2.set_enabled(true);
        tr2.emit(SimTime::ZERO, || TraceEvent::SpliceReadIssue {
            desc: 9,
            lblk: 5,
        });
        tr2.emit(SimTime::ZERO + Dur::from_us(3), || {
            TraceEvent::SpliceWriteDone { desc: 9, lblk: 5 }
        });
        let s = tr2.query().span_of(9, 5).unwrap();
        assert!(!s.ordered(), "missing middle phase before a later one");
    }

    #[test]
    fn ring_sqe_wait_event_round_trips() {
        let mut tr = Trace::new(8);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || TraceEvent::RingSqeWait {
            ring: 3,
            wait_ns: 41_000,
        });
        let recs = tr.query().named("ring.sqe_wait");
        assert_eq!(recs.len(), 1);
        assert!(tr.dump().contains("ring=3 wait_ns=41000"), "{}", tr.dump());
        let doc = tr.to_chrome_json();
        let parsed = Json::parse(&doc.render()).expect("chrome json parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn counters_are_off_by_default_and_bounded_when_enabled() {
        let mut tr = Trace::new(8);
        tr.record_counter(SimTime::ZERO, "x", 1.0);
        assert_eq!(tr.counter_series().count(), 0, "off until capacity set");

        tr.set_counter_capacity(2);
        let t = |us| SimTime::ZERO + Dur::from_us(us);
        for i in 0..5u64 {
            tr.record_counter(t(i), "x", i as f64);
        }
        let (name, samples) = tr.counter_series().next().unwrap();
        assert_eq!(name, "x");
        assert_eq!(samples.len(), 2, "oldest samples dropped at capacity");
        assert_eq!(samples[0], (t(3), 3.0));
        assert_eq!(samples[1], (t(4), 4.0));
    }

    #[test]
    fn chrome_export_adds_counter_tracks_only_when_recorded() {
        let mut tr = Trace::new(8);
        tr.set_enabled(true);
        tr.emit(SimTime::ZERO, || wake(1));
        let before = tr.to_chrome_json().render();

        // Enabling counters without recording changes nothing.
        tr.set_counter_capacity(16);
        assert_eq!(tr.to_chrome_json().render(), before);

        let t = |us| SimTime::ZERO + Dur::from_us(us);
        tr.record_counter(t(1), "cache.resident", 10.0);
        tr.record_counter(t(2), "cache.resident", 12.0);
        tr.record_counter(t(2), "pid1.cpu_share", 0.5);
        let doc = tr.to_chrome_json();
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let counters: Vec<&Json> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 3);
        assert_eq!(
            counters[0].get("name").and_then(Json::as_str),
            Some("cache.resident")
        );
        assert_eq!(
            counters[0]
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64),
            Some(10.0)
        );
        // Each series has its own tid, monotone in time.
        let tids: Vec<u64> = counters
            .iter()
            .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(tids, vec![10, 10, 11]);
    }
}
