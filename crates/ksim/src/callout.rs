//! BSD-style callout list.
//!
//! The paper's write side is driven off the Ultrix callout list: the read
//! completion handler "schedules a write by placing a reference to the write
//! handler at the head of the system callout list" (§5.2.1). The callout
//! list is serviced by `softclock` at every hardware clock tick (HZ per
//! second), so an entry queued with zero delay runs at the *next* tick —
//! this tick-granular batching is what decouples the source and destination
//! device access periods, and it matters for reproducing the measured
//! throughput and CPU-availability numbers.
//!
//! This implementation keys entries by absolute tick number and hands back
//! everything due when the kernel calls [`Callout::expire`]. Within a tick,
//! entries run in insertion order except that `schedule_head` entries run
//! before `schedule` entries, mirroring head-of-list insertion.

use std::collections::BTreeMap;

/// Handle to a pending callout, usable with [`Callout::cancel`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CalloutId(u64);

struct Entry<C> {
    id: CalloutId,
    /// Sort key within the tick: head entries get descending negative keys,
    /// tail entries ascending positive keys.
    order: i64,
    payload: C,
}

/// The callout table: pending timer-driven kernel work, tick-granular.
pub struct Callout<C> {
    // Tick → entries due at that tick.
    table: BTreeMap<u64, Vec<Entry<C>>>,
    next_id: u64,
    next_order: i64,
    next_head_order: i64,
    pending: usize,
}

impl<C> Default for Callout<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> Callout<C> {
    /// Creates an empty callout table.
    pub fn new() -> Self {
        Callout {
            table: BTreeMap::new(),
            next_id: 0,
            next_order: 1,
            next_head_order: -1,
            pending: 0,
        }
    }

    fn insert(&mut self, due_tick: u64, order: i64, payload: C) -> CalloutId {
        let id = CalloutId(self.next_id);
        self.next_id += 1;
        self.table
            .entry(due_tick)
            .or_default()
            .push(Entry { id, order, payload });
        self.pending += 1;
        id
    }

    /// Queues `payload` to run `delay_ticks` ticks after `current_tick`
    /// (0 means the next `expire` call), at the tail of that tick's list.
    /// This is the classic `timeout()` entry point.
    pub fn schedule(&mut self, current_tick: u64, delay_ticks: u64, payload: C) -> CalloutId {
        let order = self.next_order;
        self.next_order += 1;
        self.insert(current_tick + delay_ticks, order, payload)
    }

    /// Queues `payload` at the *head* of the next tick's list, the way the
    /// splice read handler queues the write handler (§5.2.1).
    pub fn schedule_head(&mut self, current_tick: u64, payload: C) -> CalloutId {
        let order = self.next_head_order;
        self.next_head_order -= 1;
        self.insert(current_tick, order, payload)
    }

    /// Cancels a pending callout (`untimeout()`). Returns the payload if it
    /// had not yet expired.
    pub fn cancel(&mut self, id: CalloutId) -> Option<C> {
        for entries in self.table.values_mut() {
            if let Some(pos) = entries.iter().position(|e| e.id == id) {
                let entry = entries.remove(pos);
                self.pending -= 1;
                return Some(entry.payload);
            }
        }
        None
    }

    /// Removes and returns every payload due at or before `current_tick`,
    /// in service order. Called by `softclock` once per tick.
    pub fn expire(&mut self, current_tick: u64) -> Vec<C> {
        let mut due: Vec<Entry<C>> = Vec::new();
        let later = self.table.split_off(&(current_tick + 1));
        for (_, mut entries) in std::mem::replace(&mut self.table, later) {
            due.append(&mut entries);
        }
        self.pending -= due.len();
        due.sort_by_key(|e| e.order);
        due.into_iter().map(|e| e.payload).collect()
    }

    /// Number of pending callouts.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// The earliest tick with pending work, if any (lets the kernel skip
    /// idle ticks without simulating each one).
    pub fn next_due_tick(&self) -> Option<u64> {
        self.table
            .iter()
            .find(|(_, v)| !v.is_empty())
            .map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_in_tick_order() {
        let mut c = Callout::new();
        c.schedule(0, 2, "late");
        c.schedule(0, 0, "now");
        c.schedule(0, 1, "soon");
        assert_eq!(c.expire(0), vec!["now"]);
        assert_eq!(c.expire(1), vec!["soon"]);
        assert_eq!(c.expire(2), vec!["late"]);
        assert!(c.is_empty());
    }

    #[test]
    fn same_tick_fifo_order() {
        let mut c = Callout::new();
        c.schedule(0, 1, 1);
        c.schedule(0, 1, 2);
        c.schedule(0, 1, 3);
        assert_eq!(c.expire(1), vec![1, 2, 3]);
    }

    #[test]
    fn head_entries_run_first_lifo() {
        let mut c = Callout::new();
        c.schedule(0, 0, "tail1");
        c.schedule_head(0, "head1");
        c.schedule_head(0, "head2");
        c.schedule(0, 0, "tail2");
        // Head inserts are LIFO among themselves (list head insertion),
        // and all precede tail entries.
        assert_eq!(c.expire(0), vec!["head2", "head1", "tail1", "tail2"]);
    }

    #[test]
    fn expire_catches_up_missed_ticks() {
        let mut c = Callout::new();
        c.schedule(0, 1, "a");
        c.schedule(0, 3, "b");
        // Skipping directly to tick 5 delivers both, earliest tick first.
        assert_eq!(c.expire(5), vec!["a", "b"]);
    }

    #[test]
    fn cancel_removes_payload() {
        let mut c = Callout::new();
        let id = c.schedule(0, 1, "x");
        c.schedule(0, 1, "y");
        assert_eq!(c.cancel(id), Some("x"));
        assert_eq!(c.cancel(id), None);
        assert_eq!(c.expire(1), vec!["y"]);
    }

    #[test]
    fn next_due_tick_reports_earliest() {
        let mut c = Callout::new();
        assert_eq!(c.next_due_tick(), None);
        c.schedule(10, 5, ());
        c.schedule(10, 2, ());
        assert_eq!(c.next_due_tick(), Some(12));
    }

    #[test]
    fn len_tracks_pending() {
        let mut c = Callout::new();
        let a = c.schedule(0, 1, ());
        c.schedule(0, 2, ());
        assert_eq!(c.len(), 2);
        c.cancel(a);
        assert_eq!(c.len(), 1);
        c.expire(2);
        assert_eq!(c.len(), 0);
    }
}
