//! BSD-style callout list, backed by a hierarchical timing wheel.
//!
//! The paper's write side is driven off the Ultrix callout list: the read
//! completion handler "schedules a write by placing a reference to the write
//! handler at the head of the system callout list" (§5.2.1). The callout
//! list is serviced by `softclock` at every hardware clock tick (HZ per
//! second), so an entry queued with zero delay runs at the *next* tick —
//! this tick-granular batching is what decouples the source and destination
//! device access periods, and it matters for reproducing the measured
//! throughput and CPU-availability numbers.
//!
//! # Structure
//!
//! Entries live in a slab indexed by [`CalloutId`] (slot index plus a
//! generation tag, so a stale handle can never cancel a recycled slot).
//! Pending entries hang off a BSD `callwheel`-style hierarchical wheel:
//! [`LEVELS`] levels of [`BUCKETS`] buckets each, level `l` covering
//! `BUCKETS^(l+1)` ticks ahead of the wheel base, with entries past the
//! wheel horizon parked on a far list that is re-homed when the base
//! crosses a horizon boundary. Each bucket is an intrusive doubly-linked
//! list through the slab, and a per-level occupancy bitmap lets the wheel
//! skip empty buckets (and whole empty blocks) in O(1).
//!
//! This makes [`Callout::schedule`], [`Callout::schedule_head`] and
//! [`Callout::cancel`] O(1), and [`Callout::expire`] proportional to the
//! entries actually due (plus one bucket cascade per crossed boundary) —
//! the `untimeout()` full-table scan and the sort-every-tick `BTreeMap`
//! walk are gone.
//!
//! # Semantics (unchanged)
//!
//! Delivery order is identical to the original `BTreeMap` implementation,
//! which [`BTreeCallout`] preserves as an executable reference model:
//! every entry carries a signed order key (`schedule` counts up from 1,
//! `schedule_head` counts down from -1) and `expire` hands back *all* due
//! entries — across caught-up ticks — sorted by that key. Head entries
//! therefore run before tail entries (LIFO among themselves, mirroring
//! head-of-list insertion), tail entries run in global insertion order,
//! and `next_due_tick` still reports the earliest pending tick so the
//! kernel can skip idle ticks.

use std::collections::BTreeMap;

/// Handle to a pending callout, usable with [`Callout::cancel`].
///
/// Packs a slab slot index and a generation tag; handles to already-fired
/// or cancelled entries are recognized as stale in O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CalloutId(u64);

impl CalloutId {
    fn new(slot: u32, generation: u32) -> Self {
        CalloutId((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Buckets per wheel level (one 64-bit occupancy word per level).
const BUCKETS: usize = 64;
/// log2([`BUCKETS`]): bits of the due tick consumed per level.
const LEVEL_BITS: u32 = 6;
/// Wheel levels; together they cover `2^(LEVELS * LEVEL_BITS)` ticks.
const LEVELS: usize = 4;
/// Ticks covered by the wheel proper; entries further out go to the far list.
const HORIZON_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// Sentinel slab index: end of an intrusive list.
const NIL: u32 = u32::MAX;
/// `Slot::bucket` code: entry is on the far list.
const FAR: u32 = u32::MAX - 1;
/// `Slot::bucket` code: slot is free.
const FREE: u32 = u32::MAX - 2;

struct Slot<C> {
    generation: u32,
    /// `level * BUCKETS + index`, or [`FAR`] / [`FREE`].
    bucket: u32,
    prev: u32,
    next: u32,
    /// Actual due tick as requested (may lag the wheel base when a
    /// `schedule_head` lands on the tick currently being serviced).
    due: u64,
    /// Global delivery order key: negative for head entries, positive for
    /// tail entries.
    order: i64,
    payload: Option<C>,
}

/// The callout table: pending timer-driven kernel work, tick-granular.
pub struct Callout<C> {
    slots: Vec<Slot<C>>,
    free_head: u32,
    /// Intrusive list heads, `buckets[level][index]`.
    buckets: [[u32; BUCKETS]; LEVELS],
    /// Per-level occupancy bitmaps: bit `i` set iff `buckets[level][i]`
    /// is non-empty.
    occupancy: [u64; LEVELS],
    far_head: u32,
    /// Next tick to be serviced: every pending entry's *effective* due
    /// tick is `>= base`.
    base: u64,
    pending: usize,
    next_order: i64,
    next_head_order: i64,
    /// Reused by `expire` so steady-state expiry does not allocate.
    scratch: Vec<(i64, C)>,
}

impl<C> Default for Callout<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> Callout<C> {
    /// Creates an empty callout table.
    pub fn new() -> Self {
        Callout {
            slots: Vec::new(),
            free_head: NIL,
            buckets: [[NIL; BUCKETS]; LEVELS],
            occupancy: [0; LEVELS],
            far_head: NIL,
            base: 0,
            pending: 0,
            next_order: 1,
            next_head_order: -1,
            scratch: Vec::new(),
        }
    }

    /// Queues `payload` to run `delay_ticks` ticks after `current_tick`
    /// (0 means the next `expire` call), at the tail of that tick's list.
    /// This is the classic `timeout()` entry point.
    pub fn schedule(&mut self, current_tick: u64, delay_ticks: u64, payload: C) -> CalloutId {
        let order = self.next_order;
        self.next_order += 1;
        self.insert(current_tick + delay_ticks, order, payload)
    }

    /// Queues `payload` at the *head* of the next tick's list, the way the
    /// splice read handler queues the write handler (§5.2.1).
    pub fn schedule_head(&mut self, current_tick: u64, payload: C) -> CalloutId {
        let order = self.next_head_order;
        self.next_head_order -= 1;
        self.insert(current_tick, order, payload)
    }

    /// Cancels a pending callout (`untimeout()`). Returns the payload if it
    /// had not yet expired. O(1): slab lookup plus list unlink.
    pub fn cancel(&mut self, id: CalloutId) -> Option<C> {
        let slot = id.slot();
        if slot >= self.slots.len() {
            return None;
        }
        let s = &self.slots[slot];
        if s.generation != id.generation() || s.bucket == FREE {
            return None;
        }
        self.unlink(slot as u32);
        let payload = self.release(slot as u32);
        self.pending -= 1;
        payload
    }

    /// Removes and returns every payload due at or before `current_tick`,
    /// in service order. Called by `softclock` once per tick.
    pub fn expire(&mut self, current_tick: u64) -> Vec<C> {
        let mut out = Vec::new();
        self.expire_into(current_tick, &mut out);
        out
    }

    /// [`Callout::expire`] into a caller-owned vector (cleared first), so a
    /// hot loop can reuse one allocation across ticks.
    pub fn expire_into(&mut self, current_tick: u64, out: &mut Vec<C>) {
        out.clear();
        let target = current_tick + 1;
        if self.base >= target {
            return;
        }
        let mut due = std::mem::take(&mut self.scratch);
        self.advance(target, &mut due);
        due.sort_unstable_by_key(|&(order, _)| order);
        out.extend(due.drain(..).map(|(_, payload)| payload));
        self.scratch = due;
    }

    /// Number of pending callouts.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// The earliest tick with pending work, if any (lets the kernel skip
    /// idle ticks without simulating each one).
    pub fn next_due_tick(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        // The first non-empty bucket in effective-due order holds the
        // minimum actual due tick: entries whose actual due lags their
        // effective due were clamped to the then-current base, which is the
        // earliest effective position of all.
        let index = (self.base as usize) & (BUCKETS - 1);
        let live = self.occupancy[0] >> index;
        if live != 0 {
            let bucket = index + live.trailing_zeros() as usize;
            return Some(self.bucket_min_due(self.buckets[0][bucket]));
        }
        for level in 1..LEVELS {
            if self.occupancy[level] != 0 {
                let bucket = self.occupancy[level].trailing_zeros() as usize;
                return Some(self.bucket_min_due(self.buckets[level][bucket]));
            }
        }
        Some(self.bucket_min_due(self.far_head))
    }

    fn bucket_min_due(&self, head: u32) -> u64 {
        let mut min = u64::MAX;
        let mut cursor = head;
        while cursor != NIL {
            let s = &self.slots[cursor as usize];
            min = min.min(s.due);
            cursor = s.next;
        }
        min
    }

    /// Allocates a slab slot and links it into the wheel.
    fn insert(&mut self, due_tick: u64, order: i64, payload: C) -> CalloutId {
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            self.free_head = self.slots[slot as usize].next;
            let s = &mut self.slots[slot as usize];
            s.due = due_tick;
            s.order = order;
            s.payload = Some(payload);
            slot
        } else {
            assert!(self.slots.len() < FREE as usize, "callout slab exhausted");
            self.slots.push(Slot {
                generation: 0,
                bucket: FREE,
                prev: NIL,
                next: NIL,
                due: due_tick,
                order,
                payload: Some(payload),
            });
            (self.slots.len() - 1) as u32
        };
        self.link(slot, due_tick);
        self.pending += 1;
        CalloutId::new(slot, self.slots[slot as usize].generation)
    }

    /// Places `slot` into the bucket (or far list) for `due`, clamped to
    /// the wheel base.
    fn link(&mut self, slot: u32, due: u64) {
        let effective = due.max(self.base);
        let distance = effective ^ self.base;
        let head = if distance < (1 << HORIZON_BITS) {
            let level = if distance == 0 {
                0
            } else {
                ((63 - distance.leading_zeros()) / LEVEL_BITS) as usize
            };
            let index = ((effective >> (LEVEL_BITS * level as u32)) as usize) & (BUCKETS - 1);
            self.occupancy[level] |= 1 << index;
            self.slots[slot as usize].bucket = (level * BUCKETS + index) as u32;
            &mut self.buckets[level][index]
        } else {
            self.slots[slot as usize].bucket = FAR;
            &mut self.far_head
        };
        let old_head = *head;
        *head = slot;
        let s = &mut self.slots[slot as usize];
        s.prev = NIL;
        s.next = old_head;
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        }
    }

    /// Removes `slot` from its bucket list, clearing the occupancy bit if
    /// the bucket empties.
    fn unlink(&mut self, slot: u32) {
        let (bucket, prev, next) = {
            let s = &self.slots[slot as usize];
            (s.bucket, s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else if bucket == FAR {
            self.far_head = next;
        } else {
            let (level, index) = (bucket as usize / BUCKETS, bucket as usize % BUCKETS);
            self.buckets[level][index] = next;
            if next == NIL {
                self.occupancy[level] &= !(1 << index);
            }
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Frees `slot` back to the slab, invalidating outstanding handles.
    fn release(&mut self, slot: u32) -> Option<C> {
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        s.bucket = FREE;
        s.prev = NIL;
        s.next = self.free_head;
        self.free_head = slot;
        s.payload.take()
    }

    /// Advances the wheel base to `target`, draining every due entry into
    /// `due`. Work is proportional to entries delivered plus one cascade
    /// per crossed bucket boundary (empty 64-tick blocks are skipped
    /// whole via the occupancy bitmap).
    fn advance(&mut self, target: u64, due: &mut Vec<(i64, C)>) {
        loop {
            if self.pending == 0 {
                self.base = self.base.max(target);
                return;
            }
            if self.base >= target {
                return;
            }
            let block = self.base & !((BUCKETS as u64) - 1);
            let index = (self.base - block) as usize;
            let live = self.occupancy[0] >> index;
            if live != 0 {
                let tick = block + index as u64 + u64::from(live.trailing_zeros());
                if tick < target {
                    self.drain_level0(((tick as usize) & (BUCKETS - 1)) as u32, due);
                    self.step_base_to(tick + 1);
                    continue;
                }
            }
            // Nothing due in level 0 before `target` or the block boundary.
            self.step_base_to(target.min(block + BUCKETS as u64));
        }
    }

    /// Empties level-0 bucket `index` into `due`, freeing the slots.
    fn drain_level0(&mut self, index: u32, due: &mut Vec<(i64, C)>) {
        let mut cursor = self.buckets[0][index as usize];
        self.buckets[0][index as usize] = NIL;
        self.occupancy[0] &= !(1 << index);
        while cursor != NIL {
            let next = self.slots[cursor as usize].next;
            let order = self.slots[cursor as usize].order;
            if let Some(payload) = self.release(cursor) {
                due.push((order, payload));
            }
            self.pending -= 1;
            cursor = next;
        }
    }

    /// Moves the base forward to `new_base` (at most one block ahead),
    /// cascading higher-level buckets down at each crossed boundary.
    fn step_base_to(&mut self, new_base: u64) {
        let old = self.base;
        self.base = new_base;
        for level in 1..LEVELS {
            let shift = LEVEL_BITS * level as u32;
            if old >> shift == new_base >> shift {
                return;
            }
            let index = ((new_base >> shift) as usize) & (BUCKETS - 1);
            let mut cursor = self.buckets[level][index];
            self.buckets[level][index] = NIL;
            self.occupancy[level] &= !(1 << index);
            while cursor != NIL {
                let next = self.slots[cursor as usize].next;
                let entry_due = self.slots[cursor as usize].due;
                self.link(cursor, entry_due);
                cursor = next;
            }
        }
        if old >> HORIZON_BITS != new_base >> HORIZON_BITS {
            // Crossed a wheel-horizon boundary: re-home far entries that
            // are now within reach.
            let mut cursor = self.far_head;
            self.far_head = NIL;
            while cursor != NIL {
                let next = self.slots[cursor as usize].next;
                let entry_due = self.slots[cursor as usize].due;
                self.link(cursor, entry_due);
                cursor = next;
            }
        }
    }
}

/// The original `BTreeMap`-backed callout list, kept as the executable
/// reference model: the differential property suite drives [`Callout`] and
/// `BTreeCallout` through identical operation sequences and asserts
/// identical delivery, and the `simspeed` bench measures the wheel's
/// speedup against it. Not used on the simulator hot path.
pub struct BTreeCallout<C> {
    // Tick → entries due at that tick.
    table: BTreeMap<u64, Vec<(CalloutId, i64, C)>>,
    next_id: u64,
    next_order: i64,
    next_head_order: i64,
    pending: usize,
}

impl<C> Default for BTreeCallout<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> BTreeCallout<C> {
    /// Creates an empty reference callout table.
    pub fn new() -> Self {
        BTreeCallout {
            table: BTreeMap::new(),
            next_id: 0,
            next_order: 1,
            next_head_order: -1,
            pending: 0,
        }
    }

    fn insert(&mut self, due_tick: u64, order: i64, payload: C) -> CalloutId {
        let id = CalloutId(self.next_id);
        self.next_id += 1;
        self.table
            .entry(due_tick)
            .or_default()
            .push((id, order, payload));
        self.pending += 1;
        id
    }

    /// Reference [`Callout::schedule`].
    pub fn schedule(&mut self, current_tick: u64, delay_ticks: u64, payload: C) -> CalloutId {
        let order = self.next_order;
        self.next_order += 1;
        self.insert(current_tick + delay_ticks, order, payload)
    }

    /// Reference [`Callout::schedule_head`].
    pub fn schedule_head(&mut self, current_tick: u64, payload: C) -> CalloutId {
        let order = self.next_head_order;
        self.next_head_order -= 1;
        self.insert(current_tick, order, payload)
    }

    /// Reference [`Callout::cancel`]: the historical O(total-entries) scan.
    pub fn cancel(&mut self, id: CalloutId) -> Option<C> {
        for entries in self.table.values_mut() {
            if let Some(pos) = entries.iter().position(|e| e.0 == id) {
                let entry = entries.remove(pos);
                self.pending -= 1;
                return Some(entry.2);
            }
        }
        None
    }

    /// Reference [`Callout::expire`].
    pub fn expire(&mut self, current_tick: u64) -> Vec<C> {
        let mut due = Vec::new();
        let later = self.table.split_off(&(current_tick + 1));
        for (_, mut entries) in std::mem::replace(&mut self.table, later) {
            due.append(&mut entries);
        }
        self.pending -= due.len();
        due.sort_by_key(|e| e.1);
        due.into_iter().map(|e| e.2).collect()
    }

    /// Reference [`Callout::len`].
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Reference [`Callout::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Reference [`Callout::next_due_tick`].
    pub fn next_due_tick(&self) -> Option<u64> {
        self.table
            .iter()
            .find(|(_, v)| !v.is_empty())
            .map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_in_tick_order() {
        let mut c = Callout::new();
        c.schedule(0, 2, "late");
        c.schedule(0, 0, "now");
        c.schedule(0, 1, "soon");
        assert_eq!(c.expire(0), vec!["now"]);
        assert_eq!(c.expire(1), vec!["soon"]);
        assert_eq!(c.expire(2), vec!["late"]);
        assert!(c.is_empty());
    }

    #[test]
    fn same_tick_fifo_order() {
        let mut c = Callout::new();
        c.schedule(0, 1, 1);
        c.schedule(0, 1, 2);
        c.schedule(0, 1, 3);
        assert_eq!(c.expire(1), vec![1, 2, 3]);
    }

    #[test]
    fn head_entries_run_first_lifo() {
        let mut c = Callout::new();
        c.schedule(0, 0, "tail1");
        c.schedule_head(0, "head1");
        c.schedule_head(0, "head2");
        c.schedule(0, 0, "tail2");
        // Head inserts are LIFO among themselves (list head insertion),
        // and all precede tail entries.
        assert_eq!(c.expire(0), vec!["head2", "head1", "tail1", "tail2"]);
    }

    #[test]
    fn expire_catches_up_missed_ticks() {
        let mut c = Callout::new();
        c.schedule(0, 1, "a");
        c.schedule(0, 3, "b");
        // Skipping directly to tick 5 delivers both, earliest tick first.
        assert_eq!(c.expire(5), vec!["a", "b"]);
    }

    #[test]
    fn cancel_removes_payload() {
        let mut c = Callout::new();
        let id = c.schedule(0, 1, "x");
        c.schedule(0, 1, "y");
        assert_eq!(c.cancel(id), Some("x"));
        assert_eq!(c.cancel(id), None);
        assert_eq!(c.expire(1), vec!["y"]);
    }

    #[test]
    fn next_due_tick_reports_earliest() {
        let mut c = Callout::new();
        assert_eq!(c.next_due_tick(), None);
        c.schedule(10, 5, ());
        c.schedule(10, 2, ());
        assert_eq!(c.next_due_tick(), Some(12));
    }

    #[test]
    fn len_tracks_pending() {
        let mut c = Callout::new();
        let a = c.schedule(0, 1, ());
        c.schedule(0, 2, ());
        assert_eq!(c.len(), 2);
        c.cancel(a);
        assert_eq!(c.len(), 1);
        c.expire(2);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn stale_id_cannot_cancel_recycled_slot() {
        let mut c = Callout::new();
        let a = c.schedule(0, 1, "a");
        assert_eq!(c.expire(1), vec!["a"]);
        // The freed slot is recycled for "b"; the stale handle must miss.
        let b = c.schedule(1, 1, "b");
        assert_eq!(c.cancel(a), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.cancel(b), Some("b"));
    }

    #[test]
    fn far_future_entries_cascade_back() {
        let mut c = Callout::new();
        // Beyond the wheel horizon (2^24 ticks): parked on the far list.
        let far_delay = 1u64 << 26;
        c.schedule(0, far_delay, "far");
        c.schedule(0, 1, "near");
        assert_eq!(c.next_due_tick(), Some(1));
        assert_eq!(c.expire(1), vec!["near"]);
        assert_eq!(c.next_due_tick(), Some(far_delay));
        assert_eq!(c.expire(far_delay), vec!["far"]);
        assert!(c.is_empty());
    }

    #[test]
    fn multi_level_cascade_preserves_order() {
        let mut c = Callout::new();
        // One entry per wheel level, scheduled out of delivery order.
        c.schedule(0, 70_000, "l3");
        c.schedule(0, 5_000, "l2");
        c.schedule(0, 100, "l1");
        c.schedule(0, 3, "l0");
        let mut got = Vec::new();
        let mut tick = 0;
        while !c.is_empty() {
            tick = c.next_due_tick().expect("pending entries have a due tick");
            got.extend(c.expire(tick));
        }
        assert_eq!(got, vec!["l0", "l1", "l2", "l3"]);
        assert_eq!(tick, 70_000);
    }

    #[test]
    fn head_after_expire_lands_on_next_tick() {
        let mut c = Callout::new();
        assert!(c.expire(10).is_empty());
        // schedule_head targets the tick just serviced — the base has
        // already moved past it, so it must fire on the next expire and
        // next_due_tick must still report the requested (past) tick.
        c.schedule_head(10, "w");
        assert_eq!(c.next_due_tick(), Some(10));
        assert_eq!(c.expire(11), vec!["w"]);
    }

    #[test]
    fn cancel_is_constant_time_at_100k_entries() {
        // Satellite regression: the historical implementation scanned the
        // whole table per cancel (~5e9 slot visits for this loop, minutes
        // even in release builds). The wheel unlinks in O(1): the full
        // schedule + cancel cycle over 100k entries finishes in well under
        // a second even unoptimized.
        let start = std::time::Instant::now();
        let mut c = Callout::new();
        let ids: Vec<_> = (0..100_000u64)
            .map(|i| c.schedule(0, 1 + i % 512, i))
            .collect();
        // Cancel in an order uncorrelated with insertion order.
        for k in 0..ids.len() {
            let slot = (k * 7919) % ids.len();
            assert!(c.cancel(ids[slot]).is_some());
        }
        assert!(c.is_empty());
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "cancel at 100k pending took {:?}: not O(1)",
            start.elapsed()
        );
    }

    #[test]
    fn wheel_matches_reference_on_mixed_sequence() {
        let mut wheel = Callout::new();
        let mut model = BTreeCallout::new();
        let mut tick = 0u64;
        let mut live = Vec::new();
        // Deterministic mixed workload: schedules at varied distances
        // (including cross-level and far-list), head inserts, cancels, and
        // periodic expiry with occasional skipped ticks.
        let mut x = 0x9e3779b97f4a7c15u64;
        for step in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match x % 10 {
                0..=4 => {
                    let delay = (x >> 8) % [1, 7, 64, 900, 70_000][(x >> 32) as usize % 5];
                    live.push((
                        wheel.schedule(tick, delay, step),
                        model.schedule(tick, delay, step),
                    ));
                }
                5..=6 => {
                    live.push((
                        wheel.schedule_head(tick, step),
                        model.schedule_head(tick, step),
                    ));
                }
                7 => {
                    if !live.is_empty() {
                        let slot = (x >> 16) as usize % live.len();
                        let (wid, mid) = live.swap_remove(slot);
                        assert_eq!(wheel.cancel(wid), model.cancel(mid));
                    }
                }
                _ => {
                    tick += 1 + (x >> 24) % 3;
                    assert_eq!(wheel.expire(tick), model.expire(tick));
                    assert_eq!(wheel.next_due_tick(), model.next_due_tick());
                }
            }
            assert_eq!(wheel.len(), model.len());
        }
        tick += 1 << 20;
        assert_eq!(wheel.expire(tick), model.expire(tick));
        tick += 1 << 26;
        assert_eq!(wheel.expire(tick), model.expire(tick));
        assert_eq!(wheel.len(), model.len());
    }
}
