//! Property tests for the simulation engine: the event queue must agree
//! with a reference model, and the callout table must deliver everything
//! exactly once in tick order.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use proptest::prelude::*;

use ksim::{BTreeCallout, Callout, Dur, EventQueue, SimTime};

#[derive(Clone, Debug)]
enum QOp {
    /// Schedule at now + offset_us.
    Schedule(u64),
    /// Cancel the n-th still-tracked handle (modulo).
    Cancel(usize),
    /// Pop one event.
    Pop,
}

fn qop() -> impl Strategy<Value = QOp> {
    prop_oneof![
        3 => (0u64..10_000).prop_map(QOp::Schedule),
        1 => any::<usize>().prop_map(QOp::Cancel),
        2 => Just(QOp::Pop),
    ]
}

#[derive(Clone, Debug)]
enum COp {
    /// Schedule at now + delay ticks.
    Schedule(u64),
    /// Schedule at the head of the current tick.
    ScheduleHead,
    /// Cancel the n-th tracked handle (modulo), which may have fired.
    Cancel(usize),
    /// Advance the clock by this many ticks and expire.
    Expire(u64),
}

fn cop() -> impl Strategy<Value = COp> {
    // Delays and jumps deliberately straddle the wheel's level
    // boundaries (64, 64^2, 64^3 ticks) and its 2^24-tick horizon.
    let delay = prop_oneof![
        Just(0u64),
        1u64..64,
        64u64..4096,
        4096u64..262_144,
        262_144u64..(1u64 << 25),
    ];
    let step = prop_oneof![
        4 => 1u64..64,
        3 => 64u64..5000,
        1 => (1u64 << 20)..(1u64 << 21),
    ];
    prop_oneof![
        4 => delay.prop_map(COp::Schedule),
        1 => Just(COp::ScheduleHead),
        2 => any::<usize>().prop_map(COp::Cancel),
        3 => step.prop_map(COp::Expire),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_queue_matches_reference_model(ops in prop::collection::vec(qop(), 1..200)) {
        let mut q = EventQueue::new();
        // Model: list of (time, seq, id, alive).
        let mut model: Vec<(SimTime, u64, ksim::EventId, bool)> = Vec::new();
        let mut seq = 0u64;

        for op in ops {
            match op {
                QOp::Schedule(off) => {
                    let at = q.now() + Dur::from_us(off);
                    let id = q.schedule(at, seq);
                    model.push((at, seq, id, true));
                    seq += 1;
                }
                QOp::Cancel(n) => {
                    if model.is_empty() {
                        continue;
                    }
                    let idx = n % model.len();
                    let (_, _, id, alive) = model[idx];
                    let did = q.cancel(id);
                    prop_assert_eq!(did, alive, "cancel result must track liveness");
                    model[idx].3 = false;
                }
                QOp::Pop => {
                    // Expected: earliest (time, seq) among alive entries.
                    let expect = model
                        .iter()
                        .filter(|e| e.3)
                        .min_by_key(|e| (e.0, e.1))
                        .map(|e| (e.0, e.1));
                    let got = q.pop();
                    match (expect, got) {
                        (None, None) => {}
                        (Some((t, s)), Some((gt, gv))) => {
                            prop_assert_eq!(t, gt);
                            prop_assert_eq!(s, gv);
                            let idx = model.iter().position(|e| e.1 == s).unwrap();
                            model[idx].3 = false;
                        }
                        other => prop_assert!(false, "mismatch: {:?}", other),
                    }
                }
            }
            prop_assert_eq!(q.len(), model.iter().filter(|e| e.3).count());
        }
    }

    #[test]
    fn callout_delivers_everything_once_in_order(
        entries in prop::collection::vec((0u64..64, 0u32..1000), 1..100)
    ) {
        let mut co = Callout::new();
        for (delay, tag) in &entries {
            co.schedule(0, *delay, *tag);
        }
        let mut seen = Vec::new();
        let mut last_tick_of = std::collections::HashMap::new();
        for tick in 0..=64u64 {
            for tag in co.expire(tick) {
                seen.push(tag);
                last_tick_of.insert(tag, tick);
            }
        }
        prop_assert!(co.is_empty());
        // Every entry delivered exactly once (tags may repeat; compare as
        // multisets).
        let mut want: Vec<u32> = entries.iter().map(|(_, t)| *t).collect();
        let mut got = seen.clone();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(want, got);
    }

    #[test]
    fn wheel_agrees_with_btree_reference(ops in prop::collection::vec(cop(), 1..150)) {
        let mut wheel = Callout::new();
        let mut btree = BTreeCallout::new();
        let mut tick = 0u64;
        // Tracked handle pairs (ids are implementation-specific, so each
        // logical entry carries one id per implementation).
        let mut ids: Vec<(ksim::CalloutId, ksim::CalloutId)> = Vec::new();
        let mut tag = 0u32;

        for op in ops {
            match op {
                COp::Schedule(delay) => {
                    ids.push((
                        wheel.schedule(tick, delay, tag),
                        btree.schedule(tick, delay, tag),
                    ));
                    tag += 1;
                }
                COp::ScheduleHead => {
                    ids.push((
                        wheel.schedule_head(tick, tag),
                        btree.schedule_head(tick, tag),
                    ));
                    tag += 1;
                }
                COp::Cancel(n) => {
                    if ids.is_empty() {
                        continue;
                    }
                    // May pick an already-fired handle: both sides must
                    // then report the stale id as a no-op.
                    let (wi, bi) = ids.swap_remove(n % ids.len());
                    prop_assert_eq!(wheel.cancel(wi), btree.cancel(bi));
                }
                COp::Expire(step) => {
                    tick += step;
                    // Same payloads in the same order, including the
                    // head-before-tail rule and catch-up over skipped
                    // ticks.
                    prop_assert_eq!(wheel.expire(tick), btree.expire(tick));
                }
            }
            prop_assert_eq!(wheel.len(), btree.len());
            prop_assert_eq!(wheel.next_due_tick(), btree.next_due_tick());
        }
    }

    #[test]
    fn duration_bandwidth_roundtrip_is_monotone(
        a in 1u64..1_000_000, b in 1u64..1_000_000, bps in 1u64..100_000_000
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Dur::for_bytes(lo, bps) <= Dur::for_bytes(hi, bps));
        // At least the exact wire time.
        let d = Dur::for_bytes(hi, bps);
        prop_assert!(d.as_ns() as u128 * bps as u128 >= hi as u128 * 1_000_000_000u128);
    }
}
