//! Property tests for the simulation engine: the event queue must agree
//! with a reference model, and the callout table must deliver everything
//! exactly once in tick order.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use proptest::prelude::*;

use ksim::{Callout, Dur, EventQueue, SimTime};

#[derive(Clone, Debug)]
enum QOp {
    /// Schedule at now + offset_us.
    Schedule(u64),
    /// Cancel the n-th still-tracked handle (modulo).
    Cancel(usize),
    /// Pop one event.
    Pop,
}

fn qop() -> impl Strategy<Value = QOp> {
    prop_oneof![
        3 => (0u64..10_000).prop_map(QOp::Schedule),
        1 => any::<usize>().prop_map(QOp::Cancel),
        2 => Just(QOp::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_queue_matches_reference_model(ops in prop::collection::vec(qop(), 1..200)) {
        let mut q = EventQueue::new();
        // Model: list of (time, seq, id, alive).
        let mut model: Vec<(SimTime, u64, ksim::EventId, bool)> = Vec::new();
        let mut seq = 0u64;

        for op in ops {
            match op {
                QOp::Schedule(off) => {
                    let at = q.now() + Dur::from_us(off);
                    let id = q.schedule(at, seq);
                    model.push((at, seq, id, true));
                    seq += 1;
                }
                QOp::Cancel(n) => {
                    if model.is_empty() {
                        continue;
                    }
                    let idx = n % model.len();
                    let (_, _, id, alive) = model[idx];
                    let did = q.cancel(id);
                    prop_assert_eq!(did, alive, "cancel result must track liveness");
                    model[idx].3 = false;
                }
                QOp::Pop => {
                    // Expected: earliest (time, seq) among alive entries.
                    let expect = model
                        .iter()
                        .filter(|e| e.3)
                        .min_by_key(|e| (e.0, e.1))
                        .map(|e| (e.0, e.1));
                    let got = q.pop();
                    match (expect, got) {
                        (None, None) => {}
                        (Some((t, s)), Some((gt, gv))) => {
                            prop_assert_eq!(t, gt);
                            prop_assert_eq!(s, gv);
                            let idx = model.iter().position(|e| e.1 == s).unwrap();
                            model[idx].3 = false;
                        }
                        other => prop_assert!(false, "mismatch: {:?}", other),
                    }
                }
            }
            prop_assert_eq!(q.len(), model.iter().filter(|e| e.3).count());
        }
    }

    #[test]
    fn callout_delivers_everything_once_in_order(
        entries in prop::collection::vec((0u64..64, 0u32..1000), 1..100)
    ) {
        let mut co = Callout::new();
        for (delay, tag) in &entries {
            co.schedule(0, *delay, *tag);
        }
        let mut seen = Vec::new();
        let mut last_tick_of = std::collections::HashMap::new();
        for tick in 0..=64u64 {
            for tag in co.expire(tick) {
                seen.push(tag);
                last_tick_of.insert(tag, tick);
            }
        }
        prop_assert!(co.is_empty());
        // Every entry delivered exactly once (tags may repeat; compare as
        // multisets).
        let mut want: Vec<u32> = entries.iter().map(|(_, t)| *t).collect();
        let mut got = seen.clone();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(want, got);
    }

    #[test]
    fn duration_bandwidth_roundtrip_is_monotone(
        a in 1u64..1_000_000, b in 1u64..1_000_000, bps in 1u64..100_000_000
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Dur::for_bytes(lo, bps) <= Dur::for_bytes(hi, bps));
        // At least the exact wire time.
        let d = Dur::for_bytes(hi, bps);
        prop_assert!(d.as_ns() as u128 * bps as u128 >= hi as u128 * 1_000_000_000u128);
    }
}
